//! # sfo-scenario
//!
//! A declarative, serializable scenario layer over the whole workspace: the paper's
//! evaluation grid — {PA, CM, UCM, HAPA, DAPA, ...} × hard-cutoff settings × {flooding,
//! normalized flooding, random walks} × TTL sweeps — plus its churn extensions, expressed
//! as *data* instead of hand-wired Rust.
//!
//! The layer has three pieces:
//!
//! * **Specs** ([`spec`]): [`TopologySpec`] covers every generator family in `sfo-core`,
//!   [`SearchSpec`] every search algorithm in `sfo-search`, [`DynamicsSpec`] selects
//!   static snapshots, rate-driven churn, trace replay, or live protocol growth
//!   (`sfo-overlay`), and [`SweepSpec`] spans the `m × k_c × τ` grid. A top-level [`ScenarioSpec`] bundles them with a seed and a
//!   realization count, and round-trips through JSON files ([`json`]).
//! * **Runner** ([`runner`]): [`ScenarioRunner`] executes any spec end to end —
//!   generating realizations, freezing them to CSR snapshots, fanning
//!   `(curve, realization)` tasks across threads with the workspace's single
//!   `stream_rng` derivation, or routing dynamic specs into `sfo-sim`.
//! * **Report** ([`report`]): every run returns a [`ScenarioReport`] that embeds the
//!   originating spec for provenance and serializes deterministically, so a fixed seed
//!   reproduces a report byte for byte.
//!
//! The figure harness in `sfo-experiments` builds its paper reproductions on this layer,
//! and the `sfo scenario run <file.json>` binary in the facade crate executes spec files
//! directly (examples ship under `examples/*.json`).
//!
//! Topologies can also be built once and persisted: [`build_snapshot`] writes a spec's
//! realization-0 topology as a binary `SFOS` file (with provenance and an optional
//! shard manifest), and [`TopologySpec::Snapshot`] runs any later scenario against that
//! file with byte-identical results — the paper's reuse-the-same-realizations workflow,
//! served by `sfo snapshot build|inspect|verify` on the CLI.
//!
//! # Example
//!
//! ```
//! use sfo_scenario::{ScenarioRunner, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec};
//!
//! # fn main() -> Result<(), sfo_scenario::ScenarioError> {
//! // Fig. 6 in miniature: flooding on PA topologies across cutoffs.
//! let spec = ScenarioSpec::sweep(
//!     "fig6-pa-mini",
//!     TopologySpec::Pa { nodes: 400, m: 1, cutoff: None },
//!     SearchSpec::Flooding,
//!     SweepSpec::grid(vec![2], vec![Some(10), None], vec![1, 2, 4], 10),
//!     42,
//!     2,
//! );
//!
//! // Specs are data: they round-trip through JSON text...
//! let reparsed = ScenarioSpec::parse(&spec.to_json_string())?;
//! assert_eq!(reparsed, spec);
//!
//! // ...and one runner executes any of them.
//! let report = ScenarioRunner::new().run(&reparsed)?;
//! assert_eq!(report.sweep_curves().unwrap().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;

pub mod json;
pub mod metrics_json;
pub mod remote;
pub mod report;
pub mod runner;
pub mod snapshot_build;
pub mod spec;
pub mod workload;

pub use error::ScenarioError;
pub use remote::{RemoteSweepExecutor, RemoteSweepRequest};
pub use report::{
    ChurnRealization, DegreeBinPoint, DegreeCurve, LiveRealization, ScenarioReport, ScenarioResult,
    Stat, SweepCurve, SweepMetric, SweepPoint, TraceRealization,
};
pub use runner::ScenarioRunner;
pub use snapshot_build::build_snapshot;
pub use spec::{
    BuiltSearch, DynamicsSpec, MeasureSpec, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec,
};
pub use workload::{ArrivalSpec, WorkloadSpec};

/// Convenience result alias used throughout this crate.
pub type Result<T, E = ScenarioError> = std::result::Result<T, E>;
