//! The one execution engine behind every scenario spec.
//!
//! [`ScenarioRunner::run`] validates a [`ScenarioSpec`] and executes it end to end:
//!
//! * **Static sweeps** expand the spec's grid into labelled curves, fan every
//!   `(curve, realization)` pair across worker threads, generate the topology, freeze it
//!   to a CSR snapshot, and run the TTL sweep on the snapshot (build-once/query-many).
//! * **Churn scenarios** run independent `sfo-sim` simulations, one per realization.
//! * **Trace scenarios** generate one churn trace per realization and replay it.
//!
//! Determinism is absolute and thread-count independent: every task derives its RNG with
//! [`stream_rng`] from `(seed, stream family, realization)`, where a curve's stream
//! family is [`label_salt`] of its label and a dynamic scenario's is `label_salt` of the
//! scenario name. Trace streams use a fixed family, so scenarios sharing a seed and
//! trace configuration replay the *identical* churn no matter how their overlays differ
//! — the controlled comparison the paper's future work asks for.

use crate::remote::{RemoteSweepExecutor, RemoteSweepRequest};
use crate::report::{
    ChurnRealization, DegreeBinPoint, DegreeCurve, LiveRealization, ScenarioReport, ScenarioResult,
    Stat, SweepCurve, SweepPoint, TraceRealization,
};
use crate::spec::{
    BuiltSearch, DynamicsSpec, MeasureSpec, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec,
};
use crate::ScenarioError;
use rand::RngCore;
use sfo_analysis::histogram::log_binned_distribution;
use sfo_analysis::Summary;
use sfo_engine::{
    average_per_ttl, batched_rw_normalized_to_nf, batched_ttl_sweep, EngineConfig, ShardedCsr,
    WorkerPool,
};
use sfo_graph::snapshot::{Provenance, SnapshotError, SnapshotFile, SnapshotOrigin};
use sfo_graph::GraphView;
use sfo_obs::{PhaseTimer, Registry};
use sfo_search::experiment::{
    label_salt, rw_normalized_to_nf, stream_rng, ttl_sweep, AveragedOutcome,
};
use sfo_sim::churn::{generate_trace, ChurnTraceConfig};
use sfo_sim::simulation::{Simulation, SimulationConfig};
use sfo_sim::trace_runner::{run_trace, TraceRunConfig};
use std::sync::Arc;

/// Stream family of the per-realization churn traces. Deliberately independent of the
/// scenario name, so scenarios with the same seed and trace configuration see identical
/// event sequences even when their overlay policies differ.
const TRACE_STREAM_SALT: u64 = 0x5452_4143_4553_414c; // "TRACESAL"

/// Executes [`ScenarioSpec`]s (see the module docs for the execution model).
///
/// # Example
///
/// ```
/// use sfo_scenario::{ScenarioRunner, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec};
///
/// # fn main() -> Result<(), sfo_scenario::ScenarioError> {
/// let spec = ScenarioSpec::sweep(
///     "doc-example",
///     TopologySpec::Pa { nodes: 300, m: 2, cutoff: Some(10) },
///     SearchSpec::Flooding,
///     SweepSpec::single(vec![1, 2, 4], 5),
///     42,
///     2,
/// );
/// let report = ScenarioRunner::new().run(&spec)?;
/// let curves = report.sweep_curves().unwrap();
/// assert_eq!(curves.len(), 1);
/// assert_eq!(report.spec, spec); // provenance: the report embeds the spec
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct ScenarioRunner {
    /// Executes sweeps whose spec names remote workers; `None` (the default) makes such
    /// specs fail with a pointer at the `sfo` binary, which installs `sfo-net`'s
    /// dispatcher.
    remote: Option<Arc<dyn RemoteSweepExecutor>>,
    /// Memory-map snapshot topologies instead of reading them (`--mmap`). Reports are
    /// byte-identical either way; platforms without the mapping path read as usual.
    mmap: bool,
    /// Telemetry sink (`--metrics-out`): per-phase generate/freeze/sweep timings, the
    /// sharded store's boundary fraction, and — through
    /// [`WorkerPool::with_metrics`] — the engine's job/steal/batch counters. Purely
    /// observational: a metered run's report is byte-identical to an unmetered one
    /// (enforced by `tests/metrics_invariance.rs`).
    metrics: Option<Arc<Registry>>,
}

impl std::fmt::Debug for ScenarioRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRunner")
            .field("remote", &self.remote.is_some())
            .field("mmap", &self.mmap)
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl ScenarioRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        ScenarioRunner::default()
    }

    /// Returns a runner that hands specs with a non-empty `sweep.workers` list to the
    /// given executor (`sfo-net`'s `RemoteDispatcher`, or a fake in tests). Specs
    /// without workers are unaffected.
    pub fn with_remote(mut self, executor: Arc<dyn RemoteSweepExecutor>) -> Self {
        self.remote = Some(executor);
        self
    }

    /// Returns a runner that memory-maps snapshot topologies in place of reading them
    /// into owned buffers. The file is checksum-verified once either way and every
    /// report stays byte-identical; on platforms without the mapping path this is a
    /// no-op. Only snapshot-backed scenarios are affected — inline generation never
    /// touches a file.
    pub fn with_mmap(mut self, mmap: bool) -> Self {
        self.mmap = mmap;
        self
    }

    /// Returns a runner that records telemetry into `registry`: the
    /// `scenario.generate_micros` / `scenario.freeze_micros` / `scenario.sweep_micros`
    /// phase histograms, the per-realization `scenario.boundary_fraction_ppm` of the
    /// sharded store, and the engine pool's own counters (batched sweeps build their
    /// [`WorkerPool`] with this registry). Telemetry never touches an RNG stream and
    /// never reorders work, so every report stays byte-identical to an unmetered run.
    pub fn with_metrics(mut self, registry: Arc<Registry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Validates and executes a spec, returning the report that embeds it.
    ///
    /// # Errors
    ///
    /// Returns the validation errors of [`ScenarioSpec::validate`], plus
    /// [`ScenarioError::Topology`]/[`ScenarioError::Sim`] when generation or simulation
    /// fails at run time (e.g. an attempt budget exhausted by a tight cutoff).
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        spec.validate()?;
        let result = match (&spec.dynamics, spec.measure) {
            (DynamicsSpec::Static, MeasureSpec::SearchSweep) => self.run_sweep(spec)?,
            (DynamicsSpec::Static, MeasureSpec::DegreeDistribution { bins_per_decade }) => {
                self.run_degree(spec, bins_per_decade)?
            }
            (DynamicsSpec::Churn { sim }, _) => self.run_churn(spec, sim)?,
            (DynamicsSpec::Trace { trace, run }, _) => self.run_traces(spec, trace, run)?,
            (DynamicsSpec::Live { live, snapshot }, _) => self.run_live(spec, live, snapshot)?,
        };
        Ok(ScenarioReport {
            spec: spec.clone(),
            result,
        })
    }

    /// Builds the batched-sweep engine pool, sharing the runner's metrics registry when
    /// one is installed so engine counters land beside the scenario phase timings.
    fn pool(&self, threads: usize) -> WorkerPool {
        match &self.metrics {
            Some(registry) => {
                WorkerPool::with_metrics(EngineConfig::with_workers(threads), Arc::clone(registry))
            }
            None => WorkerPool::new(EngineConfig::with_workers(threads)),
        }
    }

    fn run_sweep(&self, spec: &ScenarioSpec) -> Result<ScenarioResult, ScenarioError> {
        let sweep = spec.sweep.as_ref().expect("validated static spec");
        let search = spec.search.as_ref().expect("validated static spec");
        if let Some(TopologySpec::Snapshot { path }) = &spec.topology {
            return self.run_snapshot_sweep(path, search, sweep);
        }
        let curves = spec.expanded_topologies();
        let labels = curve_labels(spec, &curves);
        let realizations = spec.realizations;

        let task_count = curves.len() * realizations;
        let outcomes = if sweep.batch {
            // Engine-batched execution: the (curve, realization) tasks run in order, and
            // the parallelism lives *inside* each realization — every TTL sweep becomes
            // one query batch fanned across a persistent worker pool, which is what
            // serves the interactive single-realization case. Per-job RNG streams make
            // the results independent of the worker and shard counts.
            let pool = self.pool(sweep.threads);
            (0..task_count)
                .map(|t| {
                    let c = t / realizations;
                    run_batched_sweep_task(
                        &pool,
                        &curves[c],
                        &labels[c],
                        search,
                        sweep,
                        spec.seed,
                        t % realizations,
                        self.metrics.as_deref(),
                    )
                })
                .collect::<Result<Vec<_>, ScenarioError>>()?
        } else {
            // One task per (curve, realization); tasks are independent and individually
            // seeded, so the fan-out below cannot change any result.
            run_tasks(
                task_count,
                effective_threads(sweep.threads, task_count),
                |t| {
                    let c = t / realizations;
                    let realization = t % realizations;
                    run_sweep_task(
                        &curves[c],
                        &labels[c],
                        search,
                        sweep,
                        spec.seed,
                        realization,
                        self.metrics.as_deref(),
                    )
                },
            )?
        };

        // Fold the per-realization outcomes into per-TTL statistics, in stream order.
        let mut report_curves = Vec::with_capacity(curves.len());
        for (c, _curve) in curves.iter().enumerate() {
            let mut hits: Vec<Summary> = vec![Summary::new(); sweep.ttls.len()];
            let mut messages: Vec<Summary> = vec![Summary::new(); sweep.ttls.len()];
            for r in 0..realizations {
                let points = &outcomes[c * realizations + r];
                debug_assert_eq!(points.len(), sweep.ttls.len());
                for (i, point) in points.iter().enumerate() {
                    hits[i].add(point.mean_hits);
                    messages[i].add(point.mean_messages);
                }
            }
            let points = sweep
                .ttls
                .iter()
                .enumerate()
                .map(|(i, &ttl)| SweepPoint {
                    ttl,
                    hits: Stat::from_summary(&hits[i]),
                    messages: Stat::from_summary(&messages[i]),
                })
                .collect();
            report_curves.push(SweepCurve {
                label: labels[c].clone(),
                points,
            });
        }
        Ok(ScenarioResult::Sweep {
            curves: report_curves,
        })
    }

    /// Executes a degree-distribution scenario: one `(curve, realization)` task per
    /// topology draw, each returning its degree sequence; the per-curve samples are then
    /// concatenated and log-binned — exactly the methodology (and, because curve labels
    /// salt the streams, exactly the streams) of the `P(k)` figure harness.
    fn run_degree(
        &self,
        spec: &ScenarioSpec,
        bins_per_decade: usize,
    ) -> Result<ScenarioResult, ScenarioError> {
        if let Some(TopologySpec::Snapshot { path }) = &spec.topology {
            // The file *is* the realization: its degrees are the degrees the inline
            // generator drew at build time, so the binned curve is byte-identical.
            let (file, provenance) = load_snapshot_with_provenance(path, self.mmap)?;
            let degrees = GraphView::degrees(&file.csr);
            let points = log_binned_distribution(&degrees, bins_per_decade)
                .iter()
                .map(|bin| DegreeBinPoint {
                    k: bin.center,
                    density: bin.density,
                    count: bin.count,
                })
                .collect();
            return Ok(ScenarioResult::DegreeDistribution {
                curves: vec![DegreeCurve {
                    label: provenance.label,
                    points,
                }],
            });
        }
        let curves = spec.expanded_topologies();
        let labels = curve_labels(spec, &curves);
        let realizations = spec.realizations;
        let threads = spec.sweep.as_ref().map_or(0, |s| s.threads);
        let task_count = curves.len() * realizations;
        let samples = run_tasks(task_count, effective_threads(threads, task_count), |t| {
            let c = t / realizations;
            let mut rng = stream_rng(spec.seed, label_salt(&labels[c]), t % realizations);
            let graph = curves[c].build()?.generate(&mut rng)?;
            Ok(graph.degrees())
        })?;

        let mut report_curves = Vec::with_capacity(curves.len());
        for c in 0..curves.len() {
            let mut degrees = Vec::new();
            for r in 0..realizations {
                degrees.extend_from_slice(&samples[c * realizations + r]);
            }
            let points = log_binned_distribution(&degrees, bins_per_decade)
                .iter()
                .map(|bin| DegreeBinPoint {
                    k: bin.center,
                    density: bin.density,
                    count: bin.count,
                })
                .collect();
            report_curves.push(DegreeCurve {
                label: labels[c].clone(),
                points,
            });
        }
        Ok(ScenarioResult::DegreeDistribution {
            curves: report_curves,
        })
    }

    fn run_churn(
        &self,
        spec: &ScenarioSpec,
        sim: &SimulationConfig,
    ) -> Result<ScenarioResult, ScenarioError> {
        let salt = label_salt(&spec.name);
        let sim = *sim;
        let realizations = run_tasks(
            spec.realizations,
            effective_threads(0, spec.realizations),
            |r| {
                let mut rng = stream_rng(spec.seed, salt, r);
                let report = Simulation::new(sim)?.run(&mut rng)?;
                Ok(ChurnRealization {
                    realization: r,
                    queries_issued: report.queries_issued,
                    queries_successful: report.queries_successful,
                    query_messages: report.query_messages,
                    success_rate: report.success_rate(),
                    mean_query_messages: report.mean_query_messages(),
                    mean_hops_to_find: report.mean_hops_to_find(),
                    joins: report.joins,
                    leaves: report.leaves,
                    crashes: report.crashes,
                    mean_churn_messages: report.mean_churn_messages(),
                    final_peers: report.final_peers,
                    samples: report.samples,
                })
            },
        )?;
        Ok(ScenarioResult::Churn { realizations })
    }

    fn run_traces(
        &self,
        spec: &ScenarioSpec,
        trace_config: &ChurnTraceConfig,
        run_config: &TraceRunConfig,
    ) -> Result<ScenarioResult, ScenarioError> {
        let salt = label_salt(&spec.name);
        let realizations = run_tasks(
            spec.realizations,
            effective_threads(0, spec.realizations),
            |r| {
                let mut trace_rng = stream_rng(spec.seed, TRACE_STREAM_SALT, r);
                let trace = generate_trace(trace_config, &mut trace_rng)?;
                let mut run_rng = stream_rng(spec.seed, salt, r);
                let report = run_trace(run_config, &trace, &mut run_rng)?;
                Ok(TraceRealization {
                    realization: r,
                    arrivals_applied: report.arrivals_applied,
                    leaves_applied: report.leaves_applied,
                    crashes_applied: report.crashes_applied,
                    departures_skipped: report.departures_skipped,
                    queries_issued: report.queries_issued,
                    queries_successful: report.queries_successful,
                    success_rate: report.success_rate(),
                    query_messages: report.query_messages,
                    control_messages: report.control_messages,
                    final_peers: report.final_peers,
                    worst_connectivity: report.worst_connectivity(),
                    samples: report.samples,
                })
            },
        )?;
        Ok(ScenarioResult::Trace { realizations })
    }

    /// Grows one overlay through the live membership protocol and freezes it into a
    /// provenance-tagged snapshot file at the spec's `snapshot` path.
    ///
    /// The written file is a first-class topology snapshot: its provenance records the
    /// live curve label, `m` = `attach_walks`, `cutoff` = `active_cap`, the scenario
    /// seed, and the master stream's post-growth `sweep_seed` — exactly the contract of
    /// `sfo snapshot build` — plus a [`SnapshotOrigin::LiveOverlay`] tag naming the
    /// protocol parameters. Everything downstream (`sfo run` against the snapshot,
    /// `sfo snapshot inspect`/`verify`, distributed serving) consumes it unchanged.
    fn run_live(
        &self,
        spec: &ScenarioSpec,
        live: &sfo_overlay::sim::LiveConfig,
        snapshot: &str,
    ) -> Result<ScenarioResult, ScenarioError> {
        let overlay_metrics = self
            .metrics
            .as_deref()
            .map(sfo_overlay::protocol::OverlayMetrics::register);
        let grow_timer = PhaseTimer::start();
        let outcome = sfo_overlay::sim::grow_metered(live, spec.seed, overlay_metrics)?;
        observe_phase(
            self.metrics.as_deref(),
            "scenario.generate_micros",
            grow_timer,
        );
        let params = format!(
            "peers={}, k_c={}, walks={}, ttl={}",
            live.peers,
            live.protocol.active_cap,
            live.protocol.attach_walks,
            live.protocol.forward_ttl
        );
        let mut file = SnapshotFile::plain(outcome.graph.freeze());
        file.provenance = Some(Provenance {
            label: live.label(),
            m: u64::from(live.protocol.attach_walks),
            cutoff: Some(live.protocol.active_cap as u64),
            seed: spec.seed,
            realization: 0,
            sweep_seed: outcome.sweep_seed,
            origin: Some(SnapshotOrigin::LiveOverlay { params }),
        });
        file.save(snapshot)?;
        let realization = LiveRealization {
            realization: 0,
            arrivals: outcome.stats.arrivals,
            leaves: outcome.stats.leaves,
            crashes: outcome.stats.crashes,
            final_peers: outcome.stats.final_peers,
            edges: outcome.stats.edges,
            max_degree: outcome.stats.max_degree,
            messages: usize::try_from(outcome.stats.messages).unwrap_or(usize::MAX),
            snapshot: snapshot.to_string(),
            identity: sfo_graph::snapshot::read_identity(snapshot)?,
        };
        Ok(ScenarioResult::Live {
            realizations: vec![realization],
        })
    }

    /// The whole sweep of a snapshot-backed scenario: load the file, shard its arrays,
    /// and hand the TTL grid to the engine as one query batch seeded with the file's
    /// stored `sweep_seed` — or, when the spec names remote workers, ship contiguous
    /// slices of the same grid to `sfo serve` processes through the installed
    /// [`RemoteSweepExecutor`].
    ///
    /// That seed is the `next_u64()` the generation stream produced right after the
    /// topology was drawn — exactly the batch seed [`run_batched_sweep_task`] derives on
    /// the inline path — and the curve label is the generating spec's label from the
    /// provenance record, so the resulting [`SweepCurve`] is byte-identical to an inline
    /// run of the same scenario (enforced by `tests/snapshot_roundtrip.rs`), and a
    /// remote run is byte-identical to both for any worker count and job split
    /// (enforced by `tests/remote_equivalence.rs`). Validation has already pinned
    /// snapshot sweeps to `batch: true`, one curve, one realization.
    fn run_snapshot_sweep(
        &self,
        path: &str,
        search: &SearchSpec,
        sweep: &SweepSpec,
    ) -> Result<ScenarioResult, ScenarioError> {
        if !sweep.workers.is_empty() {
            return self.run_remote_sweep(path, search, sweep);
        }
        let freeze_timer = PhaseTimer::start();
        let (file, provenance) = load_snapshot_with_provenance(path, self.mmap)?;
        let sharded = Arc::new(ShardedCsr::from_csr_owned(
            file.csr,
            sweep.shard_count.max(1),
        ));
        observe_phase(
            self.metrics.as_deref(),
            "scenario.freeze_micros",
            freeze_timer,
        );
        record_boundary_fraction(self.metrics.as_deref(), sharded.boundary_fraction());
        let pool = self.pool(sweep.threads);
        let m = usize::try_from(provenance.m).unwrap_or(usize::MAX);
        let sweep_timer = PhaseTimer::start();
        let outcomes = match search.build_for::<ShardedCsr>(m)? {
            BuiltSearch::Algorithm(algorithm) => batched_ttl_sweep(
                &pool,
                &sharded,
                algorithm,
                &sweep.ttls,
                sweep.searches_per_point,
                provenance.sweep_seed,
            ),
            BuiltSearch::RwNormalizedToNf { k_min } => batched_rw_normalized_to_nf(
                &pool,
                &sharded,
                k_min,
                &sweep.ttls,
                sweep.searches_per_point,
                provenance.sweep_seed,
            ),
        };
        observe_phase(
            self.metrics.as_deref(),
            "scenario.sweep_micros",
            sweep_timer,
        );
        Ok(fold_snapshot_sweep(provenance.label, sweep, &outcomes))
    }

    /// The distributed variant of a snapshot sweep: build one [`RemoteSweepRequest`]
    /// describing the whole job grid and hand it to the installed executor, then fold
    /// the merged outcomes exactly like the local path.
    ///
    /// The runner never opens a socket itself — but it *does* read the snapshot's
    /// meta locally, both for the provenance (seed, m, label) and for the identity
    /// hash the dispatcher requires every worker to echo.
    fn run_remote_sweep(
        &self,
        path: &str,
        search: &SearchSpec,
        sweep: &SweepSpec,
    ) -> Result<ScenarioResult, ScenarioError> {
        let Some(executor) = &self.remote else {
            return Err(ScenarioError::remote(
                "this runner has no remote dispatcher installed; run the spec through \
                 the `sfo` binary (which wires up sfo-net) or clear \"workers\"",
            ));
        };
        let (header, provenance) = sfo_graph::snapshot::read_meta(path)?;
        let provenance = provenance.ok_or(SnapshotError::MissingSection {
            section: "provenance",
        })?;
        if header.node_count == 0 {
            return Err(ScenarioError::invalid(format!(
                "topology snapshot: {path} holds an empty topology"
            )));
        }
        let request = RemoteSweepRequest {
            workers: sweep.workers.clone(),
            identity: sfo_graph::snapshot::read_identity(path)?,
            seed: provenance.sweep_seed,
            ttls: sweep.ttls.clone(),
            searches_per_point: sweep.searches_per_point,
            search: search.clone(),
            m: usize::try_from(provenance.m).unwrap_or(usize::MAX),
            placed: sweep.placed,
            snapshot_path: path.to_string(),
        };
        let outcomes = executor.run_sweep(&request)?;
        if outcomes.len() != request.job_count() {
            return Err(ScenarioError::remote(format!(
                "dispatcher returned {} outcomes for a grid of {} jobs",
                outcomes.len(),
                request.job_count()
            )));
        }
        let averaged = average_per_ttl(&sweep.ttls, sweep.searches_per_point, &outcomes);
        Ok(fold_snapshot_sweep(provenance.label, sweep, &averaged))
    }
}

/// Resolves the report/stream label of every expanded curve: the spec's `curve_label`
/// override (validation has pinned it to single-curve scenarios) or each topology's own
/// label.
fn curve_labels(spec: &ScenarioSpec, curves: &[TopologySpec]) -> Vec<String> {
    match &spec.curve_label {
        Some(label) => vec![label.clone()],
        None => curves.iter().map(TopologySpec::label).collect(),
    }
}

/// Loads a snapshot file (mapped or read) and unwraps the provenance record scenario
/// runs require.
fn load_snapshot_with_provenance(
    path: &str,
    mmap: bool,
) -> Result<(SnapshotFile, Provenance), ScenarioError> {
    let mut file = if mmap {
        SnapshotFile::load_mmap(path)?
    } else {
        SnapshotFile::load(path)?
    };
    let provenance = file
        .provenance
        .take()
        .ok_or(SnapshotError::MissingSection {
            section: "provenance",
        })?;
    Ok((file, provenance))
}

/// Folds the averaged per-TTL points of a one-realization snapshot sweep into its
/// single labelled curve — identical folding to the inline path with one realization,
/// shared by the local and remote branches so they cannot drift.
fn fold_snapshot_sweep(
    label: String,
    sweep: &SweepSpec,
    outcomes: &[sfo_search::experiment::AveragedOutcome],
) -> ScenarioResult {
    let points = sweep
        .ttls
        .iter()
        .zip(outcomes)
        .map(|(&ttl, outcome)| {
            let mut hits = Summary::new();
            let mut messages = Summary::new();
            hits.add(outcome.mean_hits);
            messages.add(outcome.mean_messages);
            SweepPoint {
                ttl,
                hits: Stat::from_summary(&hits),
                messages: Stat::from_summary(&messages),
            }
        })
        .collect();
    ScenarioResult::Sweep {
        curves: vec![SweepCurve { label, points }],
    }
}

/// One `(curve, realization)` task of a static sweep: generate, freeze, sweep.
///
/// This reproduces the stream discipline the figure harness has always used — the
/// per-realization RNG is `stream_rng(seed, label_salt(curve label), realization)`, the
/// topology is drawn first, and the TTL sweep continues on the same stream — so a curve
/// produces bit-identical data whether it runs here or ran in the old bespoke loops.
/// With `shard_count > 1` the sweep runs on a [`ShardedCsr`] store instead of the plain
/// snapshot; the sharded store reports identical neighbor slices, so even that does not
/// change a single byte of the output.
fn run_sweep_task(
    curve: &TopologySpec,
    label: &str,
    search: &SearchSpec,
    sweep: &SweepSpec,
    seed: u64,
    realization: usize,
    metrics: Option<&Registry>,
) -> Result<Vec<AveragedOutcome>, ScenarioError> {
    let mut rng = stream_rng(seed, label_salt(label), realization);
    let generate_timer = PhaseTimer::start();
    let generator = curve.build()?;
    let graph = generator.generate(&mut rng)?;
    observe_phase(metrics, "scenario.generate_micros", generate_timer);
    let freeze_timer = PhaseTimer::start();
    if sweep.shard_count > 1 {
        let sharded = ShardedCsr::from_graph(&graph, sweep.shard_count);
        observe_phase(metrics, "scenario.freeze_micros", freeze_timer);
        record_boundary_fraction(metrics, sharded.boundary_fraction());
        let sweep_timer = PhaseTimer::start();
        let outcomes = serial_sweep_on(&sharded, curve, search, sweep, &mut rng);
        observe_phase(metrics, "scenario.sweep_micros", sweep_timer);
        outcomes
    } else {
        let frozen = graph.freeze();
        observe_phase(metrics, "scenario.freeze_micros", freeze_timer);
        let sweep_timer = PhaseTimer::start();
        let outcomes = serial_sweep_on(&frozen, curve, search, sweep, &mut rng);
        observe_phase(metrics, "scenario.sweep_micros", sweep_timer);
        outcomes
    }
}

/// The serial TTL sweep over any frozen backend (plain or sharded CSR).
fn serial_sweep_on<G: GraphView + Sync>(
    frozen: &G,
    curve: &TopologySpec,
    search: &SearchSpec,
    sweep: &SweepSpec,
    rng: &mut rand::rngs::StdRng,
) -> Result<Vec<AveragedOutcome>, ScenarioError> {
    Ok(match search.build_for::<G>(curve.m())? {
        BuiltSearch::Algorithm(algorithm) => ttl_sweep(
            frozen,
            algorithm.as_ref(),
            &sweep.ttls,
            sweep.searches_per_point,
            rng,
        ),
        BuiltSearch::RwNormalizedToNf { k_min } => {
            rw_normalized_to_nf(frozen, k_min, &sweep.ttls, sweep.searches_per_point, rng)
        }
    })
}

/// One `(curve, realization)` task of an engine-batched sweep: generate on the
/// realization stream, shard the snapshot, then hand the whole TTL grid to the engine as
/// one query batch.
///
/// The batch seed is the next draw of the realization stream, so it inherits the
/// workspace's `stream_rng(seed, label_salt(label), realization)` discipline; inside the
/// batch every job derives its own stream from `(batch seed, job index)`, making the
/// outcome independent of the pool's worker count and the store's shard count.
#[allow(clippy::too_many_arguments)]
fn run_batched_sweep_task(
    pool: &WorkerPool,
    curve: &TopologySpec,
    label: &str,
    search: &SearchSpec,
    sweep: &SweepSpec,
    seed: u64,
    realization: usize,
    metrics: Option<&Registry>,
) -> Result<Vec<AveragedOutcome>, ScenarioError> {
    let mut rng = stream_rng(seed, label_salt(label), realization);
    let generate_timer = PhaseTimer::start();
    let generator = curve.build()?;
    let graph = generator.generate(&mut rng)?;
    observe_phase(metrics, "scenario.generate_micros", generate_timer);
    let batch_seed = rng.next_u64();
    let freeze_timer = PhaseTimer::start();
    let sharded = Arc::new(ShardedCsr::from_graph(&graph, sweep.shard_count.max(1)));
    observe_phase(metrics, "scenario.freeze_micros", freeze_timer);
    record_boundary_fraction(metrics, sharded.boundary_fraction());
    let sweep_timer = PhaseTimer::start();
    let outcomes = match search.build_for::<ShardedCsr>(curve.m())? {
        BuiltSearch::Algorithm(algorithm) => batched_ttl_sweep(
            pool,
            &sharded,
            algorithm,
            &sweep.ttls,
            sweep.searches_per_point,
            batch_seed,
        ),
        BuiltSearch::RwNormalizedToNf { k_min } => batched_rw_normalized_to_nf(
            pool,
            &sharded,
            k_min,
            &sweep.ttls,
            sweep.searches_per_point,
            batch_seed,
        ),
    };
    observe_phase(metrics, "scenario.sweep_micros", sweep_timer);
    Ok(outcomes)
}

/// Records the elapsed time of a finished phase into `metrics` (when installed) under
/// the given histogram name. A pure clock observation: no RNG stream is touched and no
/// work is reordered, per the workspace's telemetry rules.
fn observe_phase(metrics: Option<&Registry>, name: &str, timer: PhaseTimer) {
    if let Some(registry) = metrics {
        timer.observe(&registry.histogram(name));
    }
}

/// Records a sharded store's boundary fraction — the cross-shard share of its edge
/// endpoints, a pure function of the frozen topology and the shard count — as parts
/// per million in the `scenario.boundary_fraction_ppm` histogram.
fn record_boundary_fraction(metrics: Option<&Registry>, fraction: f64) {
    if let Some(registry) = metrics {
        let ppm = (fraction * 1_000_000.0).round() as u64;
        registry
            .histogram("scenario.boundary_fraction_ppm")
            .record(ppm);
    }
}

fn effective_threads(requested: usize, tasks: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, tasks.max(1))
}

/// Runs `count` independent tasks on `threads` workers and returns their results in task
/// order. The first failure cancels the remaining work: every worker checks a shared
/// flag before starting its next task, so a misconfigured curve aborts a large grid in
/// roughly one task-length instead of burning the whole sweep. Among the failures that
/// did run, the lowest-indexed error is returned.
fn run_tasks<T, F>(count: usize, threads: usize, task: F) -> Result<Vec<T>, ScenarioError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ScenarioError> + Sync,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    if threads <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let mut slots: Vec<Option<Result<T, ScenarioError>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let failed = AtomicBool::new(false);

    let chunks = std::thread::scope(|scope| {
        let task = &task;
        let failed = &failed;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut results = Vec::new();
                    for t in (w..count).step_by(threads) {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let result = task(t);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        results.push((t, result));
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario worker panicked"))
            .collect::<Vec<_>>()
    });
    for chunk in chunks {
        for (t, result) in chunk {
            slots[t] = Some(result);
        }
    }
    let mut first_error: Option<ScenarioError> = None;
    let mut results = Vec::with_capacity(count);
    for slot in slots {
        match slot {
            Some(Ok(value)) => results.push(value),
            Some(Err(e)) => {
                first_error.get_or_insert(e);
                break;
            }
            // A `None` slot means the task was cancelled after an earlier failure; the
            // error that caused the cancellation sits in a lower or later slot.
            None => continue,
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => {
            assert_eq!(
                results.len(),
                count,
                "every task must have run when none failed"
            );
            Ok(results)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::DegreeCutoff;
    use sfo_sim::churn::SessionModel;
    use sfo_sim::overlay::{JoinStrategy, OverlayConfig};

    fn pa_spec(threads: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::sweep(
            "runner-test",
            TopologySpec::Pa {
                nodes: 300,
                m: 1,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::grid(vec![1, 2], vec![Some(10), None], vec![1, 2, 4], 6),
            11,
            2,
        );
        spec.sweep.as_mut().unwrap().threads = threads;
        spec
    }

    #[test]
    fn sweep_produces_one_curve_per_grid_point() {
        let report = ScenarioRunner::new().run(&pa_spec(1)).unwrap();
        let curves = report.sweep_curves().unwrap();
        assert_eq!(curves.len(), 4);
        assert_eq!(curves[0].label, "PA, m=1, k_c=10");
        for curve in curves {
            assert_eq!(curve.points.len(), 3);
            for point in &curve.points {
                assert_eq!(point.hits.realizations, 2);
                assert!(point.hits.mean > 0.0);
                assert!(point.messages.mean >= point.hits.mean - 1e-12);
            }
            // Flooding hits do not shrink with TTL.
            assert!(curve.points[2].hits.mean >= curve.points[0].hits.mean);
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let sequential = ScenarioRunner::new().run(&pa_spec(1)).unwrap();
        let parallel = ScenarioRunner::new().run(&pa_spec(4)).unwrap();
        // The thread knob is part of the spec, so compare results, not whole reports.
        assert_eq!(sequential.result, parallel.result);
    }

    #[test]
    fn sharding_the_store_does_not_change_serial_results() {
        // shard_count without batch swaps the backend under the legacy sweep; the
        // sharded store reports identical neighbor slices, so the results must be
        // byte-identical, including for shard counts that do not divide N.
        let reference = ScenarioRunner::new().run(&pa_spec(2)).unwrap();
        for shards in [2usize, 7, 64] {
            let mut spec = pa_spec(2);
            spec.sweep.as_mut().unwrap().shard_count = shards;
            let sharded = ScenarioRunner::new().run(&spec).unwrap();
            assert_eq!(sharded.result, reference.result, "{shards} shards");
        }
    }

    #[test]
    fn batched_results_are_thread_and_shard_independent() {
        let mut base = pa_spec(1);
        base.sweep.as_mut().unwrap().batch = true;
        let reference = ScenarioRunner::new().run(&base).unwrap();
        for (threads, shards) in [(2usize, 1usize), (3, 4), (4, 7), (0, 2)] {
            let mut spec = pa_spec(threads);
            let sweep = spec.sweep.as_mut().unwrap();
            sweep.batch = true;
            sweep.shard_count = shards;
            let report = ScenarioRunner::new().run(&spec).unwrap();
            assert_eq!(
                report.result, reference.result,
                "threads={threads} shards={shards}"
            );
        }
    }

    #[test]
    fn batched_sweeps_produce_sane_curves() {
        let mut spec = pa_spec(3);
        spec.sweep.as_mut().unwrap().batch = true;
        spec.sweep.as_mut().unwrap().shard_count = 4;
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let curves = report.sweep_curves().unwrap();
        assert_eq!(curves.len(), 4);
        for curve in curves {
            assert_eq!(curve.points.len(), 3);
            for point in &curve.points {
                assert_eq!(point.hits.realizations, 2);
                assert!(point.hits.mean > 0.0);
                assert!(point.messages.mean >= point.hits.mean - 1e-12);
            }
            assert!(curve.points[2].hits.mean >= curve.points[0].hits.mean);
        }
        // The batched RW/NF normalization path also runs end to end.
        let mut rw = spec.clone();
        rw.search = Some(SearchSpec::RwNormalizedToNf { k_min: None });
        let rw_report = ScenarioRunner::new().run(&rw).unwrap();
        for curve in rw_report.sweep_curves().unwrap() {
            for point in &curve.points {
                assert!(point.hits.mean <= point.messages.mean + 1e-9);
            }
        }
    }

    #[test]
    fn degree_scenarios_follow_the_figure_stream_discipline() {
        let topology = TopologySpec::Pa {
            nodes: 500,
            m: 2,
            cutoff: Some(12),
        };
        let spec = ScenarioSpec::degree_distribution("deg", topology.clone(), None, 8, 5, 2);
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let curves = report.degree_curves().unwrap();
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].label, topology.label());

        // Reproduce by hand with the workspace stream rule: the runner must use
        // stream_rng(seed, label_salt(label), realization) and concatenate degrees, the
        // exact methodology of the P(k) figure harness.
        let mut samples = Vec::new();
        for r in 0..2 {
            let mut rng = stream_rng(5, label_salt(&topology.label()), r);
            let graph = topology.build().unwrap().generate(&mut rng).unwrap();
            samples.extend(sfo_graph::GraphView::degrees(&graph));
        }
        let expected = log_binned_distribution(&samples, 8);
        assert_eq!(curves[0].points.len(), expected.len());
        for (point, bin) in curves[0].points.iter().zip(&expected) {
            assert_eq!(point.k, bin.center);
            assert_eq!(point.density, bin.density);
            assert_eq!(point.count, bin.count);
        }
        // The hard cutoff bounds the support (one log bin of slack for the bin center).
        assert!(curves[0].points.iter().all(|p| p.k <= 12.0 * 1.4));
        // Sample count: every node of every realization lands in some bin.
        let counted: usize = curves[0].points.iter().map(|p| p.count).sum();
        assert_eq!(counted, 2 * 500);
    }

    #[test]
    fn degree_scenarios_expand_grids_and_rerun_identically() {
        let spec = ScenarioSpec::degree_distribution(
            "deg-grid",
            TopologySpec::Pa {
                nodes: 300,
                m: 1,
                cutoff: None,
            },
            Some(SweepSpec::axes(vec![1, 3], vec![Some(10), None])),
            8,
            9,
            2,
        );
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let curves = report.degree_curves().unwrap();
        let labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "PA, m=1, k_c=10",
                "PA, m=1, no k_c",
                "PA, m=3, k_c=10",
                "PA, m=3, no k_c",
            ]
        );
        // Capped curves stop near the cutoff; uncapped ones reach further.
        let max_k = |label: &str| {
            curves
                .iter()
                .find(|c| c.label == label)
                .unwrap()
                .points
                .last()
                .unwrap()
                .k
        };
        assert!(max_k("PA, m=3, no k_c") > max_k("PA, m=3, k_c=10"));
        // Deterministic rerun, byte-identical JSON.
        let again = ScenarioRunner::new().run(&spec).unwrap();
        assert_eq!(again, report);
        assert_eq!(again.to_json_string(), report.to_json_string());
        // P(k) series conversion carries the realization count.
        let series = report.degree_series();
        assert_eq!(series.len(), 4);
        assert!(series[0].points.iter().all(|p| p.realizations == 2));
    }

    #[test]
    fn rw_normalized_sweep_runs() {
        let mut spec = pa_spec(2);
        spec.search = Some(SearchSpec::RwNormalizedToNf { k_min: None });
        let report = ScenarioRunner::new().run(&spec).unwrap();
        for curve in report.sweep_curves().unwrap() {
            for point in &curve.points {
                assert!(point.hits.mean <= point.messages.mean + 1e-9);
            }
        }
    }

    #[test]
    fn churn_scenarios_report_per_realization_runs() {
        let spec = ScenarioSpec::churn(
            "runner-churn",
            sfo_sim::simulation::SimulationConfig::small(),
            5,
            2,
        );
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let runs = report.churn_realizations().unwrap();
        assert_eq!(runs.len(), 2);
        for (r, run) in runs.iter().enumerate() {
            assert_eq!(run.realization, r);
            assert!(run.queries_issued > 0);
            assert!(run.success_rate > 0.0);
            assert!(!run.samples.is_empty());
        }
        // Different realizations use different streams.
        assert_ne!(runs[0].queries_issued, runs[1].queries_issued);
    }

    #[test]
    fn trace_scenarios_share_churn_across_overlay_policies() {
        let trace_config = ChurnTraceConfig {
            duration: 200,
            arrival_rate: 0.4,
            sessions: SessionModel::Exponential { mean: 60.0 },
            crash_fraction: 0.25,
        };
        let mut tight = TraceRunConfig::small();
        tight.bootstrap_peers = 80;
        tight.overlay = OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(8),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut loose = tight.clone();
        loose.overlay.cutoff = DegreeCutoff::Unbounded;

        let runner = ScenarioRunner::new();
        let report_tight = runner
            .run(&ScenarioSpec::trace("tight", trace_config, tight, 3, 2))
            .unwrap();
        let report_loose = runner
            .run(&ScenarioSpec::trace("loose", trace_config, loose, 3, 2))
            .unwrap();
        let tight_runs = report_tight.trace_realizations().unwrap();
        let loose_runs = report_loose.trace_realizations().unwrap();
        for (a, b) in tight_runs.iter().zip(loose_runs) {
            // Identical churn: the same arrivals were applied in both scenarios...
            assert_eq!(a.arrivals_applied, b.arrivals_applied);
            assert!(a.arrivals_applied > 0);
            // ...but the cutoff bounds only the tight overlay's degrees.
            assert!(a.samples.iter().all(|s| s.max_degree <= 8));
        }
        assert!(loose_runs
            .iter()
            .flat_map(|r| &r.samples)
            .any(|s| s.max_degree > 8));
    }

    #[test]
    fn metered_runs_record_phases_without_changing_results() {
        let mut spec = pa_spec(2);
        spec.sweep.as_mut().unwrap().batch = true;
        let plain = ScenarioRunner::new().run(&spec).unwrap();
        let registry = Arc::new(Registry::new());
        let metered = ScenarioRunner::new()
            .with_metrics(Arc::clone(&registry))
            .run(&spec)
            .unwrap();
        // Telemetry is pure observation: identical report, identical JSON bytes.
        assert_eq!(metered, plain);
        assert_eq!(metered.to_json_string(), plain.to_json_string());
        // 4 curves × 2 realizations = 8 tasks, each recording all three phases plus
        // its sharded store's boundary fraction.
        let snapshot = registry.snapshot();
        for phase in [
            "scenario.generate_micros",
            "scenario.freeze_micros",
            "scenario.sweep_micros",
            "scenario.boundary_fraction_ppm",
        ] {
            assert_eq!(snapshot.histogram(phase).unwrap().count, 8, "{phase}");
        }
        // The engine pool shares the registry: one batch per task, many jobs.
        assert_eq!(snapshot.counter("engine.batches"), Some(8));
        assert!(snapshot.counter("engine.jobs").unwrap() > 0);

        // The legacy (non-batch) path records the same phases.
        let legacy = Arc::new(Registry::new());
        let legacy_spec = pa_spec(2);
        let metered_legacy = ScenarioRunner::new()
            .with_metrics(Arc::clone(&legacy))
            .run(&legacy_spec)
            .unwrap();
        assert_eq!(
            metered_legacy,
            ScenarioRunner::new().run(&legacy_spec).unwrap()
        );
        let snapshot = legacy.snapshot();
        assert_eq!(
            snapshot
                .histogram("scenario.generate_micros")
                .unwrap()
                .count,
            8
        );
        assert_eq!(
            snapshot.histogram("scenario.sweep_micros").unwrap().count,
            8
        );
    }

    #[test]
    fn runner_is_deterministic() {
        let spec = pa_spec(3);
        let a = ScenarioRunner::new().run(&spec).unwrap();
        let b = ScenarioRunner::new().run(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn run_tasks_preserves_order_and_cancels_after_a_failure() {
        let ok = run_tasks(8, 3, |t| Ok::<usize, ScenarioError>(t * 2)).unwrap();
        assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);

        let result: Result<Vec<usize>, ScenarioError> = run_tasks(64, 4, |t| {
            if t == 3 {
                Err(ScenarioError::invalid("boom"))
            } else {
                Ok(t)
            }
        });
        assert!(matches!(result, Err(ScenarioError::InvalidSpec { .. })));
    }

    #[test]
    fn invalid_specs_fail_before_any_work() {
        let mut spec = pa_spec(1);
        spec.realizations = 0;
        assert!(matches!(
            ScenarioRunner::new().run(&spec),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn curve_label_overrides_legend_and_streams() {
        // A spec whose override equals another topology's natural label must reproduce
        // that topology's curve byte for byte: the label *is* the stream family.
        let topology = TopologySpec::Pa {
            nodes: 300,
            m: 2,
            cutoff: Some(10),
        };
        let natural = ScenarioSpec::degree_distribution("nat", topology.clone(), None, 8, 5, 2);
        let mut overridden =
            ScenarioSpec::degree_distribution("ovr", topology.clone(), None, 8, 5, 2);
        overridden.curve_label = Some(topology.label());
        let a = ScenarioRunner::new().run(&natural).unwrap();
        let b = ScenarioRunner::new().run(&overridden).unwrap();
        assert_eq!(a.result, b.result);

        // A different override produces a different stream family (and legend).
        let mut renamed = overridden.clone();
        renamed.curve_label = Some("m=2".to_string());
        let c = ScenarioRunner::new().run(&renamed).unwrap();
        assert_eq!(c.degree_curves().unwrap()[0].label, "m=2");
        assert_ne!(c.result, b.result);

        // The override survives a JSON round trip.
        let reparsed = ScenarioSpec::parse(&renamed.to_json_string()).unwrap();
        assert_eq!(reparsed, renamed);
        // And applies to search sweeps identically.
        let mut sweep_spec = pa_spec(1);
        sweep_spec.sweep.as_mut().unwrap().stubs = vec![];
        sweep_spec.sweep.as_mut().unwrap().cutoffs = vec![];
        sweep_spec.curve_label = Some("renamed sweep".to_string());
        let report = ScenarioRunner::new().run(&sweep_spec).unwrap();
        assert_eq!(report.sweep_curves().unwrap()[0].label, "renamed sweep");
    }

    #[test]
    fn curve_label_rejects_grids_and_dynamic_scenarios() {
        let mut grid = pa_spec(1);
        grid.curve_label = Some("one label, four curves".to_string());
        assert!(matches!(
            grid.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
        let mut churn = ScenarioSpec::churn(
            "churn",
            sfo_sim::simulation::SimulationConfig::small(),
            1,
            1,
        );
        churn.curve_label = Some("nope".to_string());
        assert!(matches!(
            churn.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn live_scenarios_grow_deterministic_provenance_tagged_snapshots() {
        use sfo_overlay::sim::LiveConfig;
        let dir = std::env::temp_dir().join(format!("sfo-runner-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grown.sfos");
        let spec = ScenarioSpec::live(
            "live-test",
            LiveConfig::small(),
            path.display().to_string(),
            11,
        );
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let grown = &report.live_realizations().unwrap()[0];
        assert_eq!(grown.realization, 0);
        assert_eq!(grown.arrivals, LiveConfig::small().peers);
        assert!(grown.edges > 0);
        assert!(grown.max_degree <= LiveConfig::small().protocol.active_cap);
        assert!(grown.identity != 0);
        let first = std::fs::read(&path).unwrap();

        // Reports round-trip through JSON like every other kind.
        let reparsed = ScenarioReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(reparsed, report);

        // The same spec grows a byte-identical file and report.
        let again = ScenarioRunner::new().run(&spec).unwrap();
        assert_eq!(again, report);
        assert_eq!(std::fs::read(&path).unwrap(), first);

        // The provenance names the live curve and carries the protocol parameters.
        let (_, provenance) = sfo_graph::snapshot::read_meta(path.to_str().unwrap()).unwrap();
        let provenance = provenance.unwrap();
        assert_eq!(provenance.label, "live, m=2, k_c=8");
        assert_eq!(provenance.m, 2);
        assert_eq!(provenance.cutoff, Some(8));
        assert_eq!(
            provenance.origin,
            Some(SnapshotOrigin::LiveOverlay {
                params: "peers=48, k_c=8, walks=2, ttl=8".to_string()
            })
        );

        // The grown file is a first-class snapshot: a sweep consumes it unchanged.
        let mut sweep = ScenarioSpec::sweep(
            "live-sweep",
            TopologySpec::Snapshot {
                path: path.display().to_string(),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2], 4),
            11,
            1,
        );
        sweep.sweep.as_mut().unwrap().batch = true;
        let swept = ScenarioRunner::new().run(&sweep).unwrap();
        assert_eq!(swept.sweep_curves().unwrap()[0].label, "live, m=2, k_c=8");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn workers_require_a_snapshot_topology_and_a_dispatcher() {
        // Workers on an inline topology: rejected at validation time.
        let mut spec = pa_spec(1);
        {
            let sweep = spec.sweep.as_mut().unwrap();
            sweep.batch = true;
            sweep.workers = vec!["127.0.0.1:4000".to_string()];
        }
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::InvalidSpec { .. })
        ));

        // Workers on a snapshot topology but no installed dispatcher: a Remote error
        // pointing at the binary, raised only at run time.
        let dir = std::env::temp_dir().join(format!("sfo-runner-remote-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workers.sfos");
        let mut build = ScenarioSpec::sweep(
            "remote-test",
            TopologySpec::Pa {
                nodes: 200,
                m: 2,
                cutoff: Some(10),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2], 4),
            9,
            1,
        );
        build.sweep.as_mut().unwrap().batch = true;
        crate::build_snapshot(&build, 0)
            .unwrap()
            .save(&path)
            .unwrap();
        let mut remote = build.clone();
        remote.topology = Some(TopologySpec::Snapshot {
            path: path.display().to_string(),
        });
        remote.sweep.as_mut().unwrap().workers = vec!["127.0.0.1:4000".to_string()];
        remote.validate().unwrap();
        assert!(matches!(
            ScenarioRunner::new().run(&remote),
            Err(ScenarioError::Remote { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn installed_executors_get_the_grid_and_their_outcomes_fold_like_local_runs() {
        use crate::remote::{RemoteSweepExecutor, RemoteSweepRequest};
        use sfo_search::SearchOutcome;

        /// A "remote" worker that runs the whole grid in-process through the engine's
        /// serial oracle — if the runner's remote plumbing is faithful, the report must
        /// equal the genuinely local run.
        struct Inline(std::path::PathBuf);
        impl RemoteSweepExecutor for Inline {
            fn run_sweep(
                &self,
                request: &RemoteSweepRequest,
            ) -> Result<Vec<SearchOutcome>, ScenarioError> {
                let pool = WorkerPool::new(EngineConfig::with_workers(2));
                // The executor sees everything it needs to reconstruct the jobs.
                assert!(request.identity != 0);
                assert_eq!(request.workers, vec!["fake:1".to_string()]);
                let graph = Arc::new(ShardedCsr::from_csr_owned(
                    SnapshotFile::load(&self.0).unwrap().csr,
                    1,
                ));
                match request.search.build_for::<ShardedCsr>(request.m)? {
                    BuiltSearch::Algorithm(algorithm) => Ok(sfo_engine::batched_ttl_sweep_range(
                        &pool,
                        &graph,
                        algorithm,
                        &request.ttls,
                        request.searches_per_point,
                        request.seed,
                        0,
                        request.job_count(),
                    )),
                    BuiltSearch::RwNormalizedToNf { .. } => unreachable!("flooding spec"),
                }
            }
        }

        let mut build = ScenarioSpec::sweep(
            "remote-fold",
            TopologySpec::Pa {
                nodes: 250,
                m: 2,
                cutoff: Some(12),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2, 3], 6),
            17,
            1,
        );
        build.sweep.as_mut().unwrap().batch = true;
        let dir = std::env::temp_dir().join(format!("sfo-runner-fold-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inline_executor_test.sfos");
        crate::build_snapshot(&build, 0)
            .unwrap()
            .save(&path)
            .unwrap();
        let mut spec = build.clone();
        spec.topology = Some(TopologySpec::Snapshot {
            path: path.display().to_string(),
        });
        let local = ScenarioRunner::new().run(&spec).unwrap();
        spec.sweep.as_mut().unwrap().workers = vec!["fake:1".to_string()];
        let remote = ScenarioRunner::new()
            .with_remote(Arc::new(Inline(path.clone())))
            .run(&spec)
            .unwrap();
        assert_eq!(remote.result, local.result);
        std::fs::remove_file(&path).unwrap();
    }
}
