//! The one execution engine behind every scenario spec.
//!
//! [`ScenarioRunner::run`] validates a [`ScenarioSpec`] and executes it end to end:
//!
//! * **Static sweeps** expand the spec's grid into labelled curves, fan every
//!   `(curve, realization)` pair across worker threads, generate the topology, freeze it
//!   to a CSR snapshot, and run the TTL sweep on the snapshot (build-once/query-many).
//! * **Churn scenarios** run independent `sfo-sim` simulations, one per realization.
//! * **Trace scenarios** generate one churn trace per realization and replay it.
//!
//! Determinism is absolute and thread-count independent: every task derives its RNG with
//! [`stream_rng`] from `(seed, stream family, realization)`, where a curve's stream
//! family is [`label_salt`] of its label and a dynamic scenario's is `label_salt` of the
//! scenario name. Trace streams use a fixed family, so scenarios sharing a seed and
//! trace configuration replay the *identical* churn no matter how their overlays differ
//! — the controlled comparison the paper's future work asks for.

use crate::report::{
    ChurnRealization, ScenarioReport, ScenarioResult, Stat, SweepCurve, SweepPoint,
    TraceRealization,
};
use crate::spec::{BuiltSearch, DynamicsSpec, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec};
use crate::ScenarioError;
use sfo_analysis::Summary;
use sfo_search::experiment::{
    label_salt, rw_normalized_to_nf, stream_rng, ttl_sweep, AveragedOutcome,
};
use sfo_sim::churn::{generate_trace, ChurnTraceConfig};
use sfo_sim::simulation::{Simulation, SimulationConfig};
use sfo_sim::trace_runner::{run_trace, TraceRunConfig};

/// Stream family of the per-realization churn traces. Deliberately independent of the
/// scenario name, so scenarios with the same seed and trace configuration see identical
/// event sequences even when their overlay policies differ.
const TRACE_STREAM_SALT: u64 = 0x5452_4143_4553_414c; // "TRACESAL"

/// Executes [`ScenarioSpec`]s (see the module docs for the execution model).
///
/// # Example
///
/// ```
/// use sfo_scenario::{ScenarioRunner, ScenarioSpec, SearchSpec, SweepSpec, TopologySpec};
///
/// # fn main() -> Result<(), sfo_scenario::ScenarioError> {
/// let spec = ScenarioSpec::sweep(
///     "doc-example",
///     TopologySpec::Pa { nodes: 300, m: 2, cutoff: Some(10) },
///     SearchSpec::Flooding,
///     SweepSpec::single(vec![1, 2, 4], 5),
///     42,
///     2,
/// );
/// let report = ScenarioRunner::new().run(&spec)?;
/// let curves = report.sweep_curves().unwrap();
/// assert_eq!(curves.len(), 1);
/// assert_eq!(report.spec, spec); // provenance: the report embeds the spec
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioRunner {
    _private: (),
}

impl ScenarioRunner {
    /// Creates a runner.
    pub fn new() -> Self {
        ScenarioRunner::default()
    }

    /// Validates and executes a spec, returning the report that embeds it.
    ///
    /// # Errors
    ///
    /// Returns the validation errors of [`ScenarioSpec::validate`], plus
    /// [`ScenarioError::Topology`]/[`ScenarioError::Sim`] when generation or simulation
    /// fails at run time (e.g. an attempt budget exhausted by a tight cutoff).
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
        spec.validate()?;
        let result = match &spec.dynamics {
            DynamicsSpec::Static => self.run_sweep(spec)?,
            DynamicsSpec::Churn { sim } => self.run_churn(spec, sim)?,
            DynamicsSpec::Trace { trace, run } => self.run_traces(spec, trace, run)?,
        };
        Ok(ScenarioReport {
            spec: spec.clone(),
            result,
        })
    }

    fn run_sweep(&self, spec: &ScenarioSpec) -> Result<ScenarioResult, ScenarioError> {
        let sweep = spec.sweep.as_ref().expect("validated static spec");
        let search = spec.search.as_ref().expect("validated static spec");
        let curves = spec.expanded_topologies();
        let realizations = spec.realizations;

        // One task per (curve, realization); tasks are independent and individually
        // seeded, so the fan-out below cannot change any result.
        let task_count = curves.len() * realizations;
        let outcomes = run_tasks(
            task_count,
            effective_threads(sweep.threads, task_count),
            |t| {
                let curve = &curves[t / realizations];
                let realization = t % realizations;
                run_sweep_task(curve, search, sweep, spec.seed, realization)
            },
        )?;

        // Fold the per-realization outcomes into per-TTL statistics, in stream order.
        let mut report_curves = Vec::with_capacity(curves.len());
        for (c, curve) in curves.iter().enumerate() {
            let mut hits: Vec<Summary> = vec![Summary::new(); sweep.ttls.len()];
            let mut messages: Vec<Summary> = vec![Summary::new(); sweep.ttls.len()];
            for r in 0..realizations {
                let points = &outcomes[c * realizations + r];
                debug_assert_eq!(points.len(), sweep.ttls.len());
                for (i, point) in points.iter().enumerate() {
                    hits[i].add(point.mean_hits);
                    messages[i].add(point.mean_messages);
                }
            }
            let points = sweep
                .ttls
                .iter()
                .enumerate()
                .map(|(i, &ttl)| SweepPoint {
                    ttl,
                    hits: Stat::from_summary(&hits[i]),
                    messages: Stat::from_summary(&messages[i]),
                })
                .collect();
            report_curves.push(SweepCurve {
                label: curve.label(),
                points,
            });
        }
        Ok(ScenarioResult::Sweep {
            curves: report_curves,
        })
    }

    fn run_churn(
        &self,
        spec: &ScenarioSpec,
        sim: &SimulationConfig,
    ) -> Result<ScenarioResult, ScenarioError> {
        let salt = label_salt(&spec.name);
        let sim = *sim;
        let realizations = run_tasks(
            spec.realizations,
            effective_threads(0, spec.realizations),
            |r| {
                let mut rng = stream_rng(spec.seed, salt, r);
                let report = Simulation::new(sim)?.run(&mut rng)?;
                Ok(ChurnRealization {
                    realization: r,
                    queries_issued: report.queries_issued,
                    queries_successful: report.queries_successful,
                    query_messages: report.query_messages,
                    success_rate: report.success_rate(),
                    mean_query_messages: report.mean_query_messages(),
                    mean_hops_to_find: report.mean_hops_to_find(),
                    joins: report.joins,
                    leaves: report.leaves,
                    crashes: report.crashes,
                    mean_churn_messages: report.mean_churn_messages(),
                    final_peers: report.final_peers,
                    samples: report.samples,
                })
            },
        )?;
        Ok(ScenarioResult::Churn { realizations })
    }

    fn run_traces(
        &self,
        spec: &ScenarioSpec,
        trace_config: &ChurnTraceConfig,
        run_config: &TraceRunConfig,
    ) -> Result<ScenarioResult, ScenarioError> {
        let salt = label_salt(&spec.name);
        let realizations = run_tasks(
            spec.realizations,
            effective_threads(0, spec.realizations),
            |r| {
                let mut trace_rng = stream_rng(spec.seed, TRACE_STREAM_SALT, r);
                let trace = generate_trace(trace_config, &mut trace_rng)?;
                let mut run_rng = stream_rng(spec.seed, salt, r);
                let report = run_trace(run_config, &trace, &mut run_rng)?;
                Ok(TraceRealization {
                    realization: r,
                    arrivals_applied: report.arrivals_applied,
                    leaves_applied: report.leaves_applied,
                    crashes_applied: report.crashes_applied,
                    departures_skipped: report.departures_skipped,
                    queries_issued: report.queries_issued,
                    queries_successful: report.queries_successful,
                    success_rate: report.success_rate(),
                    query_messages: report.query_messages,
                    control_messages: report.control_messages,
                    final_peers: report.final_peers,
                    worst_connectivity: report.worst_connectivity(),
                    samples: report.samples,
                })
            },
        )?;
        Ok(ScenarioResult::Trace { realizations })
    }
}

/// One `(curve, realization)` task of a static sweep: generate, freeze, sweep.
///
/// This reproduces the stream discipline the figure harness has always used — the
/// per-realization RNG is `stream_rng(seed, label_salt(curve label), realization)`, the
/// topology is drawn first, and the TTL sweep continues on the same stream — so a curve
/// produces bit-identical data whether it runs here or ran in the old bespoke loops.
fn run_sweep_task(
    curve: &TopologySpec,
    search: &SearchSpec,
    sweep: &SweepSpec,
    seed: u64,
    realization: usize,
) -> Result<Vec<AveragedOutcome>, ScenarioError> {
    let mut rng = stream_rng(seed, label_salt(&curve.label()), realization);
    let generator = curve.build()?;
    let frozen = generator.generate(&mut rng)?.freeze();
    Ok(match search.build(curve.m())? {
        BuiltSearch::Algorithm(algorithm) => ttl_sweep(
            &frozen,
            algorithm.as_ref(),
            &sweep.ttls,
            sweep.searches_per_point,
            &mut rng,
        ),
        BuiltSearch::RwNormalizedToNf { k_min } => rw_normalized_to_nf(
            &frozen,
            k_min,
            &sweep.ttls,
            sweep.searches_per_point,
            &mut rng,
        ),
    })
}

fn effective_threads(requested: usize, tasks: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.clamp(1, tasks.max(1))
}

/// Runs `count` independent tasks on `threads` workers and returns their results in task
/// order. The first failure cancels the remaining work: every worker checks a shared
/// flag before starting its next task, so a misconfigured curve aborts a large grid in
/// roughly one task-length instead of burning the whole sweep. Among the failures that
/// did run, the lowest-indexed error is returned.
fn run_tasks<T, F>(count: usize, threads: usize, task: F) -> Result<Vec<T>, ScenarioError>
where
    T: Send,
    F: Fn(usize) -> Result<T, ScenarioError> + Sync,
{
    use std::sync::atomic::{AtomicBool, Ordering};

    if threads <= 1 || count <= 1 {
        return (0..count).map(task).collect();
    }
    let mut slots: Vec<Option<Result<T, ScenarioError>>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let failed = AtomicBool::new(false);

    let chunks = std::thread::scope(|scope| {
        let task = &task;
        let failed = &failed;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut results = Vec::new();
                    for t in (w..count).step_by(threads) {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let result = task(t);
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        results.push((t, result));
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario worker panicked"))
            .collect::<Vec<_>>()
    });
    for chunk in chunks {
        for (t, result) in chunk {
            slots[t] = Some(result);
        }
    }
    let mut first_error: Option<ScenarioError> = None;
    let mut results = Vec::with_capacity(count);
    for slot in slots {
        match slot {
            Some(Ok(value)) => results.push(value),
            Some(Err(e)) => {
                first_error.get_or_insert(e);
                break;
            }
            // A `None` slot means the task was cancelled after an earlier failure; the
            // error that caused the cancellation sits in a lower or later slot.
            None => continue,
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => {
            assert_eq!(
                results.len(),
                count,
                "every task must have run when none failed"
            );
            Ok(results)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::DegreeCutoff;
    use sfo_sim::churn::SessionModel;
    use sfo_sim::overlay::{JoinStrategy, OverlayConfig};

    fn pa_spec(threads: usize) -> ScenarioSpec {
        let mut spec = ScenarioSpec::sweep(
            "runner-test",
            TopologySpec::Pa {
                nodes: 300,
                m: 1,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::grid(vec![1, 2], vec![Some(10), None], vec![1, 2, 4], 6),
            11,
            2,
        );
        spec.sweep.as_mut().unwrap().threads = threads;
        spec
    }

    #[test]
    fn sweep_produces_one_curve_per_grid_point() {
        let report = ScenarioRunner::new().run(&pa_spec(1)).unwrap();
        let curves = report.sweep_curves().unwrap();
        assert_eq!(curves.len(), 4);
        assert_eq!(curves[0].label, "PA, m=1, k_c=10");
        for curve in curves {
            assert_eq!(curve.points.len(), 3);
            for point in &curve.points {
                assert_eq!(point.hits.realizations, 2);
                assert!(point.hits.mean > 0.0);
                assert!(point.messages.mean >= point.hits.mean - 1e-12);
            }
            // Flooding hits do not shrink with TTL.
            assert!(curve.points[2].hits.mean >= curve.points[0].hits.mean);
        }
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let sequential = ScenarioRunner::new().run(&pa_spec(1)).unwrap();
        let parallel = ScenarioRunner::new().run(&pa_spec(4)).unwrap();
        // The thread knob is part of the spec, so compare results, not whole reports.
        assert_eq!(sequential.result, parallel.result);
    }

    #[test]
    fn rw_normalized_sweep_runs() {
        let mut spec = pa_spec(2);
        spec.search = Some(SearchSpec::RwNormalizedToNf { k_min: None });
        let report = ScenarioRunner::new().run(&spec).unwrap();
        for curve in report.sweep_curves().unwrap() {
            for point in &curve.points {
                assert!(point.hits.mean <= point.messages.mean + 1e-9);
            }
        }
    }

    #[test]
    fn churn_scenarios_report_per_realization_runs() {
        let spec = ScenarioSpec::churn(
            "runner-churn",
            sfo_sim::simulation::SimulationConfig::small(),
            5,
            2,
        );
        let report = ScenarioRunner::new().run(&spec).unwrap();
        let runs = report.churn_realizations().unwrap();
        assert_eq!(runs.len(), 2);
        for (r, run) in runs.iter().enumerate() {
            assert_eq!(run.realization, r);
            assert!(run.queries_issued > 0);
            assert!(run.success_rate > 0.0);
            assert!(!run.samples.is_empty());
        }
        // Different realizations use different streams.
        assert_ne!(runs[0].queries_issued, runs[1].queries_issued);
    }

    #[test]
    fn trace_scenarios_share_churn_across_overlay_policies() {
        let trace_config = ChurnTraceConfig {
            duration: 200,
            arrival_rate: 0.4,
            sessions: SessionModel::Exponential { mean: 60.0 },
            crash_fraction: 0.25,
        };
        let mut tight = TraceRunConfig::small();
        tight.bootstrap_peers = 80;
        tight.overlay = OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(8),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut loose = tight.clone();
        loose.overlay.cutoff = DegreeCutoff::Unbounded;

        let runner = ScenarioRunner::new();
        let report_tight = runner
            .run(&ScenarioSpec::trace("tight", trace_config, tight, 3, 2))
            .unwrap();
        let report_loose = runner
            .run(&ScenarioSpec::trace("loose", trace_config, loose, 3, 2))
            .unwrap();
        let tight_runs = report_tight.trace_realizations().unwrap();
        let loose_runs = report_loose.trace_realizations().unwrap();
        for (a, b) in tight_runs.iter().zip(loose_runs) {
            // Identical churn: the same arrivals were applied in both scenarios...
            assert_eq!(a.arrivals_applied, b.arrivals_applied);
            assert!(a.arrivals_applied > 0);
            // ...but the cutoff bounds only the tight overlay's degrees.
            assert!(a.samples.iter().all(|s| s.max_degree <= 8));
        }
        assert!(loose_runs
            .iter()
            .flat_map(|r| &r.samples)
            .any(|s| s.max_degree > 8));
    }

    #[test]
    fn runner_is_deterministic() {
        let spec = pa_spec(3);
        let a = ScenarioRunner::new().run(&spec).unwrap();
        let b = ScenarioRunner::new().run(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn run_tasks_preserves_order_and_cancels_after_a_failure() {
        let ok = run_tasks(8, 3, |t| Ok::<usize, ScenarioError>(t * 2)).unwrap();
        assert_eq!(ok, vec![0, 2, 4, 6, 8, 10, 12, 14]);

        let result: Result<Vec<usize>, ScenarioError> = run_tasks(64, 4, |t| {
            if t == 3 {
                Err(ScenarioError::invalid("boom"))
            } else {
                Ok(t)
            }
        });
        assert!(matches!(result, Err(ScenarioError::InvalidSpec { .. })));
    }

    #[test]
    fn invalid_specs_fail_before_any_work() {
        let mut spec = pa_spec(1);
        spec.realizations = 0;
        assert!(matches!(
            ScenarioRunner::new().run(&spec),
            Err(ScenarioError::InvalidSpec { .. })
        ));
    }
}
