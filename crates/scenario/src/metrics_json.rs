//! JSON serialization of `sfo-obs` metrics snapshots.
//!
//! `sfo-obs` is deliberately std-only, so its [`MetricsSnapshot`] learns the
//! workspace's hand-rolled JSON dialect here, where the [`ToJson`]/[`FromJson`] traits
//! live. The shape is two name-keyed objects:
//!
//! ```json
//! {
//!   "counters": { "engine.jobs": 1200, "net.connections": 3 },
//!   "histograms": {
//!     "net.request_micros": {
//!       "count": 40, "sum": 81920, "max": 4100,
//!       "p50": 2047, "p95": 4095, "p99": 4100,
//!       "buckets": [[11, 30], [12, 10]]
//!     }
//!   }
//! }
//! ```
//!
//! The `p50`/`p95`/`p99` members are *derived* — written for human readers of a
//! `--metrics-out` file, recomputable from the buckets — so the reader accepts and
//! discards them rather than trusting them. Everything else is strict in the house
//! style: unknown fields, bucket indices at or past `BUCKET_COUNT`, and buckets out of
//! ascending order are errors, so a canonical snapshot round-trips and a corrupted one
//! is refused, never silently reinterpreted.

use crate::codec::{check_fields, req, req_u64};
use crate::json::{FromJson, JsonValue, ToJson};
use crate::ScenarioError;
use sfo_obs::{HistogramSnapshot, MetricsSnapshot, BUCKET_COUNT};

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), JsonValue::from_u64(*value)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram_to_json(histogram)))
            .collect();
        JsonValue::Object(vec![
            ("counters".to_string(), JsonValue::Object(counters)),
            ("histograms".to_string(), JsonValue::Object(histograms)),
        ])
    }
}

fn histogram_to_json(histogram: &HistogramSnapshot) -> JsonValue {
    let buckets = histogram
        .buckets
        .iter()
        .map(|&(bucket, samples)| {
            JsonValue::Array(vec![
                JsonValue::from_u64(u64::from(bucket)),
                JsonValue::from_u64(samples),
            ])
        })
        .collect();
    JsonValue::Object(vec![
        ("count".to_string(), JsonValue::from_u64(histogram.count)),
        ("sum".to_string(), JsonValue::from_u64(histogram.sum)),
        ("max".to_string(), JsonValue::from_u64(histogram.max)),
        ("p50".to_string(), JsonValue::from_u64(histogram.p50())),
        ("p95".to_string(), JsonValue::from_u64(histogram.p95())),
        ("p99".to_string(), JsonValue::from_u64(histogram.p99())),
        ("buckets".to_string(), JsonValue::Array(buckets)),
    ])
}

impl FromJson for MetricsSnapshot {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "metrics snapshot";
        check_fields(value, CTX, &["counters", "histograms"])?;
        let counters = req(value, "counters", CTX)?
            .as_object()
            .ok_or_else(|| {
                ScenarioError::invalid("metrics snapshot: \"counters\" must be an object")
            })?
            .iter()
            .map(|(name, v)| {
                let value = v.as_u64().ok_or_else(|| {
                    ScenarioError::invalid(format!(
                        "metrics snapshot: counter \"{name}\" must be a non-negative integer"
                    ))
                })?;
                Ok((name.clone(), value))
            })
            .collect::<Result<Vec<(String, u64)>, ScenarioError>>()?;
        let histograms = req(value, "histograms", CTX)?
            .as_object()
            .ok_or_else(|| {
                ScenarioError::invalid("metrics snapshot: \"histograms\" must be an object")
            })?
            .iter()
            .map(|(name, v)| Ok((name.clone(), histogram_from_json(name, v)?)))
            .collect::<Result<Vec<(String, HistogramSnapshot)>, ScenarioError>>()?;
        Ok(MetricsSnapshot {
            counters,
            histograms,
        })
    }
}

fn histogram_from_json(name: &str, value: &JsonValue) -> Result<HistogramSnapshot, ScenarioError> {
    let ctx = format!("histogram \"{name}\"");
    // p50/p95/p99 are derived from the buckets; accepted for round-tripping, ignored.
    check_fields(
        value,
        &ctx,
        &["count", "sum", "max", "p50", "p95", "p99", "buckets"],
    )?;
    let mut buckets = Vec::new();
    for entry in req(value, "buckets", &ctx)?
        .as_array()
        .ok_or_else(|| ScenarioError::invalid(format!("{ctx}: \"buckets\" must be an array")))?
    {
        let pair = entry
            .as_array()
            .filter(|pair| pair.len() == 2)
            .ok_or_else(|| {
                ScenarioError::invalid(format!("{ctx}: each bucket must be an [index, count] pair"))
            })?;
        let bucket = pair[0]
            .as_u64()
            .filter(|&b| (b as usize) < BUCKET_COUNT)
            .ok_or_else(|| {
                ScenarioError::invalid(format!(
                    "{ctx}: bucket index must be an integer below {BUCKET_COUNT}"
                ))
            })? as u8;
        let samples = pair[1].as_u64().ok_or_else(|| {
            ScenarioError::invalid(format!(
                "{ctx}: bucket count must be a non-negative integer"
            ))
        })?;
        if buckets.last().is_some_and(|&(last, _)| last >= bucket) {
            return Err(ScenarioError::invalid(format!(
                "{ctx}: bucket indices must be strictly ascending"
            )));
        }
        buckets.push((bucket, samples));
    }
    Ok(HistogramSnapshot {
        count: req_u64(value, "count", &ctx)?,
        sum: req_u64(value, "sum", &ctx)?,
        max: req_u64(value, "max", &ctx)?,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_obs::Registry;

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = Registry::new();
        registry.counter("engine.jobs").add(1200);
        registry.counter("net.connections").add(3);
        let histogram = registry.histogram("net.request_micros");
        for v in [100, 900, 2000, 4100] {
            histogram.record(v);
        }
        registry.snapshot()
    }

    #[test]
    fn snapshots_round_trip_through_json() {
        let snapshot = sample_snapshot();
        let text = snapshot.to_json().to_pretty_string();
        let reparsed = MetricsSnapshot::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(reparsed.counters, snapshot.counters);
        assert_eq!(reparsed.histograms, snapshot.histograms);
        // The derived quantiles survive the trip because they are recomputed, not stored.
        assert_eq!(
            reparsed.histogram("net.request_micros").unwrap().p99(),
            snapshot.histogram("net.request_micros").unwrap().p99()
        );
    }

    #[test]
    fn empty_snapshots_serialize_to_empty_objects() {
        let text = Registry::new().snapshot().to_json().to_pretty_string();
        let reparsed = MetricsSnapshot::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert!(reparsed.is_empty());
    }

    #[test]
    fn readers_reject_malformed_histograms() {
        for bad in [
            // Bucket index past the fixed bucket array.
            r#"{"counters": {}, "histograms": {"h": {"count": 1, "sum": 1, "max": 1, "buckets": [[65, 1]]}}}"#,
            // Buckets out of ascending order.
            r#"{"counters": {}, "histograms": {"h": {"count": 2, "sum": 2, "max": 1, "buckets": [[3, 1], [2, 1]]}}}"#,
            // A bucket that is not a pair.
            r#"{"counters": {}, "histograms": {"h": {"count": 1, "sum": 1, "max": 1, "buckets": [[2]]}}}"#,
            // Unknown field.
            r#"{"counters": {}, "histograms": {"h": {"count": 0, "sum": 0, "max": 0, "mean": 0, "buckets": []}}}"#,
            // Negative counter.
            r#"{"counters": {"c": -4}, "histograms": {}}"#,
        ] {
            let value = JsonValue::parse(bad).unwrap();
            assert!(MetricsSnapshot::from_json(&value).is_err(), "{bad}");
        }
    }

    #[test]
    fn derived_quantiles_are_written_and_ignored_on_read() {
        let json = sample_snapshot().to_json();
        let histogram = json.get("histograms").unwrap().get("net.request_micros");
        let histogram = histogram.unwrap();
        assert!(histogram.get("p50").unwrap().as_u64().is_some());
        // Lying quantiles do not survive: the reader recomputes from the buckets.
        let lied = r#"{"counters": {}, "histograms": {"h": {"count": 1, "sum": 8, "max": 8, "p50": 999999, "p95": 999999, "p99": 999999, "buckets": [[4, 1]]}}}"#;
        let reparsed = MetricsSnapshot::from_json(&JsonValue::parse(lied).unwrap()).unwrap();
        assert_eq!(reparsed.histogram("h").unwrap().p50(), 8);
    }
}
