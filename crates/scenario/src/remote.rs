//! The seam between the scenario runner and remote execution.
//!
//! `sfo-scenario` knows *what* a distributed snapshot sweep is — which jobs exist, which
//! streams they run on, and how the outcomes fold into a report — but deliberately not
//! *how* bytes move between processes; that transport lives above it in `sfo-net`. This
//! module is the seam: [`ScenarioRunner`](crate::ScenarioRunner) turns a spec whose
//! [`SweepSpec::workers`](crate::SweepSpec::workers) list is non-empty into one
//! [`RemoteSweepRequest`] and hands it to whatever [`RemoteSweepExecutor`] was installed
//! with [`ScenarioRunner::with_remote`](crate::ScenarioRunner::with_remote) (the `sfo`
//! binary installs `sfo-net`'s dispatcher; tests may install fakes).
//!
//! The contract is exact: the executor must return one [`SearchOutcome`] per job of the
//! sweep grid, in global job-index order, each byte-identical to what
//! `sfo_engine::batched_ttl_sweep_range` produces for that index — which is what a
//! compliant worker runs. The runner then folds them through the same averaging as a
//! local run, so the report cannot reveal whether (or how) the sweep was distributed.

use crate::spec::SearchSpec;
use crate::ScenarioError;
use sfo_search::SearchOutcome;

/// Everything a dispatcher needs to split one snapshot-backed TTL sweep across worker
/// processes and merge the results.
///
/// The job grid is `ttls.len() * searches_per_point` jobs (job `t * searches + s` is
/// search `s` of `ttls[t]`), every job seeded from `(seed, global job index)` by the
/// engine's stream rule — so *any* contiguous partition of the grid across workers
/// merges, in index order, to the local result.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteSweepRequest {
    /// Worker addresses, verbatim from [`SweepSpec::workers`](crate::SweepSpec::workers)
    /// (`host:port` for TCP, `unix:/path` for Unix sockets).
    pub workers: Vec<String>,
    /// Identity hash of the snapshot the scenario names
    /// ([`sfo_graph::snapshot::read_identity`]); every worker must echo the same value
    /// in its `Hello` or the dispatcher refuses to send it work.
    pub identity: u64,
    /// The batch seed: the snapshot provenance's `sweep_seed`.
    pub seed: u64,
    /// The TTL grid of the sweep.
    pub ttls: Vec<u32>,
    /// Searches (random sources) per TTL.
    pub searches_per_point: usize,
    /// The search to run, resolved by each worker against `m`.
    pub search: SearchSpec,
    /// Stub count `m` of the generating topology (resolves `k_min: None` searches).
    pub m: usize,
    /// Placed execution (`sweep.placed`): instead of one whole-snapshot range per
    /// worker, worker `i` holds shard `i` of `workers.len()` and every search hops
    /// between workers as a forwarded frontier — still byte-identical to the local
    /// run.
    pub placed: bool,
    /// The `.sfos` file the sweep runs on, as named by the spec — a placed dispatcher
    /// reads it to cut the per-worker shard shipments.
    pub snapshot_path: String,
}

impl RemoteSweepRequest {
    /// Total number of jobs in the sweep grid.
    pub fn job_count(&self) -> usize {
        self.ttls.len() * self.searches_per_point
    }
}

/// Executes [`RemoteSweepRequest`]s — implemented by `sfo-net`'s `RemoteDispatcher`,
/// installed into a runner with
/// [`ScenarioRunner::with_remote`](crate::ScenarioRunner::with_remote).
pub trait RemoteSweepExecutor: Send + Sync {
    /// Runs the whole sweep grid across the request's workers and returns one outcome
    /// per job, in global job-index order.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Remote`] when a worker cannot be reached, serves a
    /// snapshot with the wrong identity, or violates the protocol.
    fn run_sweep(&self, request: &RemoteSweepRequest) -> Result<Vec<SearchOutcome>, ScenarioError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_count_is_the_grid_size() {
        let request = RemoteSweepRequest {
            workers: vec!["127.0.0.1:9000".to_string()],
            identity: 7,
            seed: 3,
            ttls: vec![1, 2, 4],
            searches_per_point: 10,
            search: SearchSpec::Flooding,
            m: 2,
            placed: false,
            snapshot_path: "pa.sfos".to_string(),
        };
        assert_eq!(request.job_count(), 30);
    }

    #[test]
    fn trait_is_object_safe() {
        fn assert_object_safe(_: Option<&dyn RemoteSweepExecutor>) {}
        assert_object_safe(None);
    }
}
