//! Open-loop load-test workloads: the spec behind `sfo loadtest`.
//!
//! A [`WorkloadSpec`] describes traffic against a serving worker the same way every
//! other spec in this crate describes an experiment: as data, derived from seeded
//! streams, round-tripping through JSON. It names an arrival process
//! ([`ArrivalSpec`] — Poisson, or bursty on/off with Pareto-distributed period
//! lengths, the classical self-similar-traffic construction), an offered rate and
//! duration, a job mix (search algorithm, TTL, jobs per request), and a connection
//! fan-out.
//!
//! Two derived streams make a workload reproducible *and* observationally safe:
//!
//! * **Arrival times** come from the workload's own stream family
//!   ([`WorkloadSpec::schedule`]) — same seed, same schedule, byte for byte.
//! * **Query sources** come from a per-request stream
//!   ([`WorkloadSpec::request_sources`]), and request `i`'s jobs carry the global
//!   index offset `i * jobs_per_request` — the workspace's `(batch seed, global job
//!   index)` rule. A worker therefore answers request `i` with byte-identical
//!   `BatchResult` payloads whether the run is idle or saturated, and no matter
//!   which *other* requests were shed: load testing observes the serving path, it
//!   never perturbs results (determinism rule 6).

use crate::codec::{check_fields, req, req_f64, req_str, req_u32, req_u64, req_usize};
use crate::json::{FromJson, JsonValue, ToJson};
use crate::spec::SearchSpec;
use crate::ScenarioError;
use rand::Rng;
use sfo_search::experiment::{label_salt, stream_rng};

/// Stream-family label of the arrival-time schedule.
const ARRIVAL_STREAM_LABEL: &str = "sfo-scenario/workload-arrivals";
/// Stream-family label of per-request query sources.
const SOURCE_STREAM_LABEL: &str = "sfo-scenario/workload-sources";

/// Hard cap on the arrivals one schedule may generate: an offered rate times a
/// duration above this is almost certainly a spec typo, and refusing it beats
/// allocating gigabytes of schedule.
const MAX_ARRIVALS: f64 = 5_000_000.0;

/// The arrival process of a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_hz`.
    Poisson {
        /// Offered request rate, in requests per second.
        rate_hz: f64,
    },
    /// Bursty on/off arrivals, the classical self-similar-traffic construction:
    /// alternating on- and off-periods with heavy-tailed (Pareto) lengths, Poisson
    /// arrivals at `rate_hz` inside on-periods and silence in between. The long-run
    /// offered rate is `rate_hz * mean_on / (mean_on + mean_off)`.
    Bursty {
        /// Request rate inside an on-period, in requests per second.
        rate_hz: f64,
        /// Pareto tail exponent of the period lengths; must exceed 1 so the means
        /// exist (1 < shape ≤ 2 gives the heavy tails that produce self-similarity).
        shape: f64,
        /// Mean on-period length, in seconds.
        mean_on_secs: f64,
        /// Mean off-period length, in seconds.
        mean_off_secs: f64,
    },
}

impl ArrivalSpec {
    /// The rate arrivals are generated at while the source is active.
    fn burst_rate(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_hz } | ArrivalSpec::Bursty { rate_hz, .. } => rate_hz,
        }
    }

    /// The long-run offered request rate in requests per second.
    pub fn offered_rate_hz(&self) -> f64 {
        match *self {
            ArrivalSpec::Poisson { rate_hz } => rate_hz,
            ArrivalSpec::Bursty {
                rate_hz,
                mean_on_secs,
                mean_off_secs,
                ..
            } => rate_hz * mean_on_secs / (mean_on_secs + mean_off_secs),
        }
    }
}

/// One open-loop load test: arrival process, duration, job mix, and fan-out.
///
/// See the [module docs](self) for the derivation rules that make a workload both
/// reproducible and incapable of perturbing batch results.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Label of the workload; salts its derived streams and names its bench rows.
    pub name: String,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// How long the schedule runs, in seconds.
    pub duration_secs: f64,
    /// Concurrent connections *per worker* the driver spreads requests over.
    pub connections: usize,
    /// Query jobs bundled into each request's batch.
    pub jobs_per_request: usize,
    /// The search every job runs (any table algorithm of [`SearchSpec`]).
    pub search: SearchSpec,
    /// TTL of every job.
    pub ttl: u32,
    /// Seed of the workload's streams — and the batch seed of every request, so a
    /// request's results depend only on `(seed, global job index)`.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Checks every bound the schedule and the driver rely on.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidSpec`] naming the offending field: empty
    /// name, non-positive or non-finite rate/duration/period means, a Pareto shape
    /// at or below 1, zero connections or jobs, a zero TTL, or an offered
    /// `rate × duration` above the schedule cap.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        const CTX: &str = "workload spec";
        let positive = |value: f64, what: &str| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ScenarioError::invalid(format!(
                    "{CTX}: {what} must be positive and finite, got {value}"
                )))
            }
        };
        if self.name.is_empty() {
            return Err(ScenarioError::invalid(format!(
                "{CTX}: the name must not be empty (it salts the workload's streams)"
            )));
        }
        positive(self.duration_secs, "duration_secs")?;
        match self.arrivals {
            ArrivalSpec::Poisson { rate_hz } => positive(rate_hz, "rate_hz")?,
            ArrivalSpec::Bursty {
                rate_hz,
                shape,
                mean_on_secs,
                mean_off_secs,
            } => {
                positive(rate_hz, "rate_hz")?;
                positive(mean_on_secs, "mean_on_secs")?;
                positive(mean_off_secs, "mean_off_secs")?;
                if !shape.is_finite() || shape <= 1.0 {
                    return Err(ScenarioError::invalid(format!(
                        "{CTX}: the Pareto shape must exceed 1 so period means exist, \
                         got {shape}"
                    )));
                }
            }
        }
        if self.connections == 0 {
            return Err(ScenarioError::invalid(format!(
                "{CTX}: connections must be at least 1"
            )));
        }
        if self.jobs_per_request == 0 {
            return Err(ScenarioError::invalid(format!(
                "{CTX}: jobs_per_request must be at least 1"
            )));
        }
        if self.ttl == 0 {
            return Err(ScenarioError::invalid(format!(
                "{CTX}: ttl must be at least 1"
            )));
        }
        // The *burst* rate bounds the worst case for both processes.
        let worst_case = self.arrivals.burst_rate() * self.duration_secs;
        if worst_case > MAX_ARRIVALS {
            return Err(ScenarioError::invalid(format!(
                "{CTX}: rate_hz × duration_secs ≈ {worst_case:.0} arrivals exceeds the \
                 {MAX_ARRIVALS:.0}-arrival schedule cap"
            )));
        }
        Ok(())
    }

    /// Derives the arrival schedule: send offsets in microseconds from the start of
    /// the run, strictly derived from `(seed, name)` — the same spec always yields
    /// the same schedule, byte for byte, on any host.
    ///
    /// # Errors
    ///
    /// Everything [`WorkloadSpec::validate`] refuses.
    pub fn schedule(&self) -> Result<Vec<u64>, ScenarioError> {
        self.validate()?;
        let mut rng = stream_rng(
            self.seed,
            label_salt(&self.name) ^ label_salt(ARRIVAL_STREAM_LABEL),
            0,
        );
        let duration = self.duration_secs;
        let mut arrivals = Vec::new();
        let exp = |rng: &mut rand::rngs::StdRng, rate: f64| {
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            -u.ln() / rate
        };
        match self.arrivals {
            ArrivalSpec::Poisson { rate_hz } => {
                let mut t = 0f64;
                loop {
                    t += exp(&mut rng, rate_hz);
                    if t >= duration {
                        break;
                    }
                    arrivals.push((t * 1e6) as u64);
                }
            }
            ArrivalSpec::Bursty {
                rate_hz,
                shape,
                mean_on_secs,
                mean_off_secs,
            } => {
                // Pareto with mean m and tail exponent a has minimum m (a - 1) / a.
                let pareto = |rng: &mut rand::rngs::StdRng, mean: f64| {
                    let minimum = mean * (shape - 1.0) / shape;
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    minimum / u.powf(1.0 / shape)
                };
                let mut period_start = 0f64;
                while period_start < duration {
                    let on_end = period_start + pareto(&mut rng, mean_on_secs);
                    let mut t = period_start;
                    loop {
                        t += exp(&mut rng, rate_hz);
                        if t >= on_end || t >= duration {
                            break;
                        }
                        arrivals.push((t * 1e6) as u64);
                    }
                    period_start = on_end + pareto(&mut rng, mean_off_secs);
                }
            }
        }
        Ok(arrivals)
    }

    /// Derives request `request_index`'s query sources: `jobs_per_request` node ids,
    /// uniform over `0..node_count`, from the request's own stream. The draw depends
    /// only on `(seed, name, request_index)` — never on timing, shedding, or which
    /// connection carries the request.
    pub fn request_sources(&self, request_index: u64, node_count: u64) -> Vec<u64> {
        let mut rng = stream_rng(
            self.seed,
            label_salt(&self.name) ^ label_salt(SOURCE_STREAM_LABEL),
            usize::try_from(request_index).unwrap_or(usize::MAX),
        );
        (0..self.jobs_per_request)
            .map(|_| rng.gen_range(0..node_count))
            .collect()
    }

    /// Serializes the spec as pretty-printed JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a spec from JSON text (tolerating `//` line comments) and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] for malformed JSON and
    /// [`ScenarioError::InvalidSpec`] for unknown fields, type errors, or bounds
    /// [`WorkloadSpec::validate`] refuses.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let spec = WorkloadSpec::from_json(&JsonValue::parse(text)?)?;
        spec.validate()?;
        Ok(spec)
    }
}

impl ToJson for ArrivalSpec {
    fn to_json(&self) -> JsonValue {
        match *self {
            ArrivalSpec::Poisson { rate_hz } => JsonValue::Object(vec![
                ("process".to_string(), JsonValue::from_str_value("poisson")),
                ("rate_hz".to_string(), JsonValue::from_f64(rate_hz)),
            ]),
            ArrivalSpec::Bursty {
                rate_hz,
                shape,
                mean_on_secs,
                mean_off_secs,
            } => JsonValue::Object(vec![
                ("process".to_string(), JsonValue::from_str_value("bursty")),
                ("rate_hz".to_string(), JsonValue::from_f64(rate_hz)),
                ("shape".to_string(), JsonValue::from_f64(shape)),
                (
                    "mean_on_secs".to_string(),
                    JsonValue::from_f64(mean_on_secs),
                ),
                (
                    "mean_off_secs".to_string(),
                    JsonValue::from_f64(mean_off_secs),
                ),
            ]),
        }
    }
}

impl FromJson for ArrivalSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "arrival spec";
        match req_str(value, "process", CTX)? {
            "poisson" => {
                check_fields(value, CTX, &["process", "rate_hz"])?;
                Ok(ArrivalSpec::Poisson {
                    rate_hz: req_f64(value, "rate_hz", CTX)?,
                })
            }
            "bursty" => {
                check_fields(
                    value,
                    CTX,
                    &[
                        "process",
                        "rate_hz",
                        "shape",
                        "mean_on_secs",
                        "mean_off_secs",
                    ],
                )?;
                Ok(ArrivalSpec::Bursty {
                    rate_hz: req_f64(value, "rate_hz", CTX)?,
                    shape: req_f64(value, "shape", CTX)?,
                    mean_on_secs: req_f64(value, "mean_on_secs", CTX)?,
                    mean_off_secs: req_f64(value, "mean_off_secs", CTX)?,
                })
            }
            other => Err(ScenarioError::invalid(format!(
                "{CTX}: unknown process \"{other}\" (expected poisson or bursty)"
            ))),
        }
    }
}

impl ToJson for WorkloadSpec {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("name".to_string(), JsonValue::from_str_value(&self.name)),
            ("arrivals".to_string(), self.arrivals.to_json()),
            (
                "duration_secs".to_string(),
                JsonValue::from_f64(self.duration_secs),
            ),
            (
                "connections".to_string(),
                JsonValue::from_usize(self.connections),
            ),
            (
                "jobs_per_request".to_string(),
                JsonValue::from_usize(self.jobs_per_request),
            ),
            ("search".to_string(), self.search.to_json()),
            ("ttl".to_string(), JsonValue::from_u64(u64::from(self.ttl))),
            ("seed".to_string(), JsonValue::from_u64(self.seed)),
        ])
    }
}

impl FromJson for WorkloadSpec {
    fn from_json(value: &JsonValue) -> Result<Self, ScenarioError> {
        const CTX: &str = "workload spec";
        check_fields(
            value,
            CTX,
            &[
                "name",
                "arrivals",
                "duration_secs",
                "connections",
                "jobs_per_request",
                "search",
                "ttl",
                "seed",
            ],
        )?;
        Ok(WorkloadSpec {
            name: req_str(value, "name", CTX)?.to_string(),
            arrivals: ArrivalSpec::from_json(req(value, "arrivals", CTX)?)?,
            duration_secs: req_f64(value, "duration_secs", CTX)?,
            connections: req_usize(value, "connections", CTX)?,
            jobs_per_request: req_usize(value, "jobs_per_request", CTX)?,
            search: SearchSpec::from_json(req(value, "search", CTX)?)?,
            ttl: req_u32(value, "ttl", CTX)?,
            seed: req_u64(value, "seed", CTX)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "smoke".to_string(),
            arrivals: ArrivalSpec::Poisson { rate_hz: 200.0 },
            duration_secs: 2.0,
            connections: 2,
            jobs_per_request: 4,
            search: SearchSpec::Flooding,
            ttl: 4,
            seed: 42,
        }
    }

    fn bursty_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "bursts".to_string(),
            arrivals: ArrivalSpec::Bursty {
                rate_hz: 500.0,
                shape: 1.5,
                mean_on_secs: 0.2,
                mean_off_secs: 0.3,
            },
            ..poisson_spec()
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [poisson_spec(), bursty_spec()] {
            let text = spec.to_json_string();
            let back = WorkloadSpec::parse(&text).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn schedules_are_seed_deterministic_and_ordered() {
        for spec in [poisson_spec(), bursty_spec()] {
            let first = spec.schedule().unwrap();
            let second = spec.schedule().unwrap();
            assert_eq!(first, second, "same seed must replay the same schedule");
            assert!(!first.is_empty());
            assert!(first.windows(2).all(|w| w[0] <= w[1]));
            assert!(*first.last().unwrap() < 2_000_000);
            let mut reseeded = spec.clone();
            reseeded.seed ^= 1;
            assert_ne!(reseeded.schedule().unwrap(), first);
        }
    }

    #[test]
    fn poisson_schedules_track_the_offered_rate() {
        let spec = poisson_spec();
        let n = spec.schedule().unwrap().len() as f64;
        let expected = spec.arrivals.offered_rate_hz() * spec.duration_secs;
        assert!(
            (n - expected).abs() < expected * 0.25,
            "got {n} arrivals, expected about {expected}"
        );
    }

    #[test]
    fn request_sources_depend_only_on_the_request_index() {
        let spec = poisson_spec();
        let a = spec.request_sources(7, 1000);
        assert_eq!(a.len(), spec.jobs_per_request);
        assert_eq!(a, spec.request_sources(7, 1000));
        assert_ne!(a, spec.request_sources(8, 1000));
        assert!(a.iter().all(|&s| s < 1000));
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: Vec<(WorkloadSpec, &str)> = vec![
            (
                WorkloadSpec {
                    name: String::new(),
                    ..poisson_spec()
                },
                "name",
            ),
            (
                WorkloadSpec {
                    arrivals: ArrivalSpec::Poisson { rate_hz: 0.0 },
                    ..poisson_spec()
                },
                "rate_hz",
            ),
            (
                WorkloadSpec {
                    duration_secs: -1.0,
                    ..poisson_spec()
                },
                "duration_secs",
            ),
            (
                WorkloadSpec {
                    connections: 0,
                    ..poisson_spec()
                },
                "connections",
            ),
            (
                WorkloadSpec {
                    jobs_per_request: 0,
                    ..poisson_spec()
                },
                "jobs_per_request",
            ),
            (
                WorkloadSpec {
                    ttl: 0,
                    ..poisson_spec()
                },
                "ttl",
            ),
            (
                WorkloadSpec {
                    arrivals: ArrivalSpec::Bursty {
                        rate_hz: 10.0,
                        shape: 1.0,
                        mean_on_secs: 1.0,
                        mean_off_secs: 1.0,
                    },
                    ..poisson_spec()
                },
                "shape",
            ),
            (
                WorkloadSpec {
                    arrivals: ArrivalSpec::Poisson { rate_hz: 1e9 },
                    ..poisson_spec()
                },
                "cap",
            ),
        ];
        for (spec, what) in cases {
            let err = spec.validate().unwrap_err().to_string();
            assert!(err.contains(what), "error for {what} was: {err}");
        }
    }

    #[test]
    fn unknown_fields_and_processes_are_typed_errors() {
        assert!(WorkloadSpec::parse("{\"nope\": 1}").is_err());
        let mut text = poisson_spec().to_json_string();
        text = text.replace("poisson", "teleport");
        let err = WorkloadSpec::parse(&text).unwrap_err().to_string();
        assert!(err.contains("teleport"), "got: {err}");
    }
}
