//! Error type of the wire protocol and its endpoints.

use std::error::Error;
use std::fmt;

/// Errors produced while framing, decoding, serving, or dispatching.
///
/// Mirrors the philosophy of `sfo_graph::snapshot::SnapshotError`: a frame is either
/// exactly what was written or it is rejected with a typed error — malformed network
/// input can never panic an endpoint or decode to a silently wrong message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The underlying socket or file operation failed.
    Io {
        /// What was being done (`"connect 127.0.0.1:9000"`, `"read frame"`, ...).
        context: String,
        /// The operating-system error message.
        message: String,
    },
    /// The frame does not start with the `SFNF` magic — the peer is not speaking this
    /// protocol (or the stream lost sync).
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The peer speaks a protocol version this build does not understand.
    UnsupportedVersion {
        /// The version stored in the frame header.
        found: u16,
    },
    /// The frame header names a frame type this build does not know.
    UnknownFrameType {
        /// The type tag actually found.
        found: u16,
    },
    /// The frame header declares a payload larger than the protocol allows. Raised
    /// *before* any allocation, so a corrupt or malicious length field cannot request
    /// gigabytes of memory.
    Oversized {
        /// The declared payload length.
        declared: u64,
        /// The maximum this build accepts ([`crate::frame::MAX_PAYLOAD_LEN`]).
        max: u64,
    },
    /// The stream ended before the section being decoded was complete.
    Truncated {
        /// The section that could not be read in full.
        section: &'static str,
    },
    /// The frame trailer checksum does not match the frame contents.
    ChecksumMismatch {
        /// The checksum stored in the trailer.
        stored: u64,
        /// The checksum computed over the frame.
        computed: u64,
    },
    /// The frame decodes but violates a payload invariant (an inner length lying about
    /// the payload size, invalid UTF-8, an unknown request kind, ...).
    Corrupt {
        /// The violated invariant.
        reason: String,
    },
    /// The peer answered with an `Error` frame; this carries its message.
    Remote {
        /// The error text the peer reported.
        message: String,
    },
    /// A worker serves a different snapshot than the one the dispatcher needs.
    IdentityMismatch {
        /// The worker's address.
        worker: String,
        /// The identity hash of the snapshot the scenario names.
        expected: u64,
        /// The identity hash the worker echoed in its `Hello`.
        found: u64,
    },
    /// The conversation is well-framed but semantically wrong (an unexpected reply
    /// kind, a request the endpoint cannot serve, a job range out of bounds, ...).
    Protocol {
        /// What went wrong.
        reason: String,
    },
    /// The worker shed this request: its per-connection pending-batch queue was full
    /// when the request arrived. The request was *not* executed; retrying later (or at
    /// a lower offered rate) is safe, and the connection stays usable. The loadtest
    /// driver counts these instead of dying on them.
    Overloaded {
        /// How many batches were already pending on the connection.
        queued: u32,
        /// The worker's configured queue bound (`sfo serve --queue-bound`).
        limit: u32,
    },
}

impl NetError {
    /// Builds an [`NetError::Io`] from an OS error and what was being attempted.
    pub fn io(context: impl Into<String>, error: &std::io::Error) -> Self {
        NetError::Io {
            context: context.into(),
            message: error.to_string(),
        }
    }

    /// Builds a [`NetError::Corrupt`] from anything stringly.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        NetError::Corrupt {
            reason: reason.into(),
        }
    }

    /// Builds a [`NetError::Protocol`] from anything stringly.
    pub fn protocol(reason: impl Into<String>) -> Self {
        NetError::Protocol {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, message } => write!(f, "net io error ({context}): {message}"),
            NetError::BadMagic { found } => {
                write!(f, "not an sfo-net frame: expected magic \"SFNF\", found {found:?}")
            }
            NetError::UnsupportedVersion { found } => write!(
                f,
                "unsupported protocol version {found} (this build speaks version {})",
                crate::frame::PROTOCOL_VERSION
            ),
            NetError::UnknownFrameType { found } => {
                write!(f, "unknown frame type {found}")
            }
            NetError::Oversized { declared, max } => write!(
                f,
                "frame declares a {declared}-byte payload, above the {max}-byte limit"
            ),
            NetError::Truncated { section } => {
                write!(f, "stream ended inside the {section} section")
            }
            NetError::ChecksumMismatch { stored, computed } => write!(
                f,
                "frame checksum mismatch: trailer says {stored:#018x}, contents hash to {computed:#018x}"
            ),
            NetError::Corrupt { reason } => write!(f, "corrupt frame: {reason}"),
            NetError::Remote { message } => write!(f, "peer reported an error: {message}"),
            NetError::IdentityMismatch {
                worker,
                expected,
                found,
            } => write!(
                f,
                "worker {worker} serves snapshot {found:#018x}, but the scenario needs \
                 {expected:#018x}; point it at the same .sfos file"
            ),
            NetError::Protocol { reason } => write!(f, "protocol violation: {reason}"),
            NetError::Overloaded { queued, limit } => write!(
                f,
                "worker shed the request: {queued} batches already pending (queue bound {limit})"
            ),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(NetError::BadMagic { found: *b"HTTP" }
            .to_string()
            .contains("SFNF"));
        assert!(NetError::Oversized {
            declared: 1 << 40,
            max: 1 << 26
        }
        .to_string()
        .contains("limit"));
        assert!(NetError::IdentityMismatch {
            worker: "w:1".to_string(),
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("w:1"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NetError>();
    }
}
