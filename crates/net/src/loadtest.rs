//! The open-loop load driver behind `sfo loadtest`.
//!
//! [`run_loadtest`] replays a [`WorkloadSpec`]'s derived arrival schedule against one
//! or many `sfo serve` workers: requests go out at their scheduled times whether or
//! not earlier replies have returned (*open loop* — the arrival process never slows
//! down to match the server, which is what makes tail latency measurable), spread
//! round-robin over `workers × connections` pipelined connections. Each connection is
//! a sender/receiver thread pair over one duplicated socket; because the worker
//! answers strictly in arrival order, the receiver matches replies to send times with
//! a plain FIFO.
//!
//! The driver records client-side service time into a `loadtest.latency_micros`
//! histogram and the in-flight depth at each send into `loadtest.inflight`, and it
//! *counts* the worker's typed [`Message::Overloaded`] sheds instead of dying on
//! them — driving a worker past saturation is the point, not a failure.
//!
//! Load testing is observational by construction: request `i` carries the batch seed
//! and the global index offset `i × jobs_per_request`, so every job's RNG stream —
//! and therefore every `BatchResult` payload — is byte-identical to an unloaded run
//! no matter how saturated the worker was or which other requests were shed
//! (determinism rule 6).

use crate::message::{recv_message, send_message, BatchRequest, Hello, Message};
use crate::stream::NetStream;
use crate::NetError;
use sfo_engine::QueryBatch;
use sfo_graph::NodeId;
use sfo_obs::{Counter, Histogram, HistogramSnapshot};
use sfo_scenario::WorkloadSpec;
use sfo_search::SearchOutcome;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One load-test run: the workload plus where to aim it.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// The workload to replay.
    pub spec: WorkloadSpec,
    /// Worker addresses (`host:port` or `unix:/path`); the driver opens
    /// [`WorkloadSpec::connections`] connections to each and requires every worker
    /// to announce the same snapshot identity.
    pub workers: Vec<String>,
    /// Keep every completed request's outcomes for verification. Costs memory
    /// proportional to the schedule; the byte-identity tests use it, benches don't.
    pub record_outcomes: bool,
}

/// What a load-test run measured.
///
/// The counter identity `sent == completed + shed + errors` holds whenever
/// `decode_errors` is 0 (a decode error abandons its connection's remaining
/// replies).
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Requests the schedule offered (its arrival count).
    pub offered: u64,
    /// Requests actually written to a socket.
    pub sent: u64,
    /// Requests answered with a `BatchResult`.
    pub completed: u64,
    /// Requests the worker shed with a typed `Overloaded` reply.
    pub shed: u64,
    /// Requests refused with a typed `Error` reply.
    pub errors: u64,
    /// Replies that failed to decode (these abort their connection).
    pub decode_errors: u64,
    /// Wall-clock run length, first send to last reply.
    pub elapsed_secs: f64,
    /// The spec's long-run offered rate, in requests per second.
    pub offered_rate_hz: f64,
    /// Completed requests per second of elapsed time.
    pub achieved_rate_hz: f64,
    /// Client-side request latency in microseconds (completed requests only).
    pub latency: HistogramSnapshot,
    /// Exact smallest completed-request latency in microseconds (the log-bucketed
    /// histogram keeps `max` exactly but not `min`).
    pub min_latency_micros: u64,
    /// In-flight request depth sampled at each send.
    pub inflight: HistogramSnapshot,
    /// Per-request outcomes, indexed by request index, when
    /// [`LoadtestConfig::record_outcomes`] was set; `None` marks requests that were
    /// shed, refused, or never sent.
    pub outcomes: Vec<Option<Vec<SearchOutcome>>>,
}

/// Everything the per-connection threads share.
struct Shared {
    sent: Counter,
    completed: Counter,
    shed: Counter,
    errors: Counter,
    decode_errors: Counter,
    latency: Histogram,
    inflight_hist: Histogram,
    inflight: AtomicU64,
    min_latency: AtomicU64,
    outcomes: Option<Mutex<Vec<Option<Vec<SearchOutcome>>>>>,
}

/// One connection's send plan: `(request index, send offset in µs)`.
type Plan = Vec<(u64, u64)>;

/// Replays the workload against the configured workers and reports what happened.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] when the spec does not validate or the workers
/// disagree about the snapshot they serve, and [`NetError::Io`] when a connection
/// cannot be established. Overload, refused requests, and reply decode failures are
/// *not* errors — they are counted in the report.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, NetError> {
    let spec = &config.spec;
    let schedule = spec
        .schedule()
        .map_err(|e| NetError::protocol(format!("workload does not validate: {e}")))?;
    if config.workers.is_empty() {
        return Err(NetError::protocol("loadtest needs at least one worker"));
    }

    // Dial every connection up front; the run starts with all lanes open.
    let mut connections: Vec<(NetStream, Hello)> = Vec::new();
    for addr in &config.workers {
        for _ in 0..spec.connections {
            let mut stream = NetStream::connect(addr)?;
            let hello = match recv_message(&mut stream)? {
                Message::Hello(hello) => hello,
                other => {
                    return Err(NetError::protocol(format!(
                        "expected a Hello from {addr}, got {other:?}"
                    )))
                }
            };
            connections.push((stream, hello));
        }
    }
    let identity = connections[0].1.identity;
    let node_count = connections[0].1.node_count;
    for (i, (_, hello)) in connections.iter().enumerate() {
        if hello.identity != identity {
            return Err(NetError::protocol(format!(
                "workers disagree about the snapshot: connection {i} announces \
                 {:#018x}, connection 0 announces {identity:#018x}",
                hello.identity
            )));
        }
    }

    // Round-robin the schedule over connections; each lane keeps its own FIFO plan.
    let lanes = connections.len();
    let mut plans: Vec<Plan> = vec![Vec::new(); lanes];
    for (index, &offset) in schedule.iter().enumerate() {
        plans[index % lanes].push((index as u64, offset));
    }

    let shared = Arc::new(Shared {
        sent: Counter::new(),
        completed: Counter::new(),
        shed: Counter::new(),
        errors: Counter::new(),
        decode_errors: Counter::new(),
        latency: Histogram::new(),
        inflight_hist: Histogram::new(),
        inflight: AtomicU64::new(0),
        min_latency: AtomicU64::new(u64::MAX),
        outcomes: config
            .record_outcomes
            .then(|| Mutex::new(vec![None; schedule.len()])),
    });

    let start = Instant::now();
    let mut pairs = Vec::new();
    for ((stream, _), plan) in connections.into_iter().zip(plans) {
        pairs.push(spawn_lane(stream, plan, spec, node_count, &shared, start)?);
    }
    for (sender, receiver) in pairs {
        let _ = sender.join();
        let _ = receiver.join();
    }
    let elapsed_secs = start.elapsed().as_secs_f64();

    let completed = shared.completed.get();
    let outcomes = match &shared.outcomes {
        Some(lock) => std::mem::take(&mut *lock.lock().expect("outcomes lock")),
        None => Vec::new(),
    };
    Ok(LoadtestReport {
        offered: schedule.len() as u64,
        sent: shared.sent.get(),
        completed,
        shed: shared.shed.get(),
        errors: shared.errors.get(),
        decode_errors: shared.decode_errors.get(),
        elapsed_secs,
        offered_rate_hz: spec.arrivals.offered_rate_hz(),
        achieved_rate_hz: if elapsed_secs > 0.0 {
            completed as f64 / elapsed_secs
        } else {
            0.0
        },
        latency: shared.latency.snapshot(),
        min_latency_micros: match shared.min_latency.load(Ordering::SeqCst) {
            u64::MAX => 0,
            min => min,
        },
        inflight: shared.inflight_hist.snapshot(),
        outcomes,
    })
}

/// Builds request `index` of the workload: the job mix is derived purely from
/// `(seed, name, index)`, and the batch carries `index × jobs_per_request` as its
/// global index offset — the same `(batch seed, global job index)` streams a local
/// or dispatcher run would use.
fn build_request(spec: &WorkloadSpec, index: u64, node_count: u64) -> Message {
    let mut batch = QueryBatch::new();
    for source in spec.request_sources(index, node_count) {
        batch.push(NodeId::new(source as usize), 0, spec.ttl);
    }
    Message::SubmitBatch(BatchRequest::Queries {
        seed: spec.seed,
        index_offset: index * spec.jobs_per_request as u64,
        algorithms: vec![spec.search.clone()],
        batch,
    })
}

type LaneThreads = (std::thread::JoinHandle<()>, std::thread::JoinHandle<()>);

/// Spawns one connection's sender/receiver pair.
fn spawn_lane(
    stream: NetStream,
    plan: Plan,
    spec: &WorkloadSpec,
    node_count: u64,
    shared: &Arc<Shared>,
    start: Instant,
) -> Result<LaneThreads, NetError> {
    let mut write_half = stream.try_clone()?;
    let mut read_half = stream;
    // Send instants in send order; the worker replies strictly in arrival order, so
    // the receiver pops the front to pair a reply with its request.
    let pending: Arc<Mutex<VecDeque<(u64, Instant)>>> = Arc::new(Mutex::new(VecDeque::new()));
    // How many requests this lane actually wrote, and whether it is done writing —
    // the receiver drains exactly that many replies.
    let lane_sent = Arc::new(AtomicU64::new(0));
    let sender_done = Arc::new(AtomicU64::new(0));

    let sender = {
        let spec = spec.clone();
        let shared = Arc::clone(shared);
        let pending = Arc::clone(&pending);
        let lane_sent = Arc::clone(&lane_sent);
        let sender_done = Arc::clone(&sender_done);
        std::thread::Builder::new()
            .name("sfo-loadtest-send".to_string())
            .spawn(move || {
                for (index, offset) in plan {
                    // Open loop: wait for the *schedule*, never for replies.
                    let deadline = start + Duration::from_micros(offset);
                    if let Some(wait) = deadline.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let request = build_request(&spec, index, node_count);
                    let sent_at = Instant::now();
                    pending
                        .lock()
                        .expect("pending lock")
                        .push_back((index, sent_at));
                    if send_message(&mut write_half, &request).is_err() {
                        // The connection is gone; the receiver sees the same death.
                        pending.lock().expect("pending lock").pop_back();
                        break;
                    }
                    shared.sent.inc();
                    lane_sent.fetch_add(1, Ordering::SeqCst);
                    let depth = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
                    shared.inflight_hist.record(depth);
                }
                sender_done.store(1, Ordering::SeqCst);
            })
            .map_err(|e| NetError::protocol(format!("cannot spawn a sender thread: {e}")))?
    };

    let receiver = {
        let shared = Arc::clone(shared);
        let pending = Arc::clone(&pending);
        let lane_sent = Arc::clone(&lane_sent);
        let sender_done = Arc::clone(&sender_done);
        std::thread::Builder::new()
            .name("sfo-loadtest-recv".to_string())
            .spawn(move || {
                let mut received = 0u64;
                loop {
                    if received >= lane_sent.load(Ordering::SeqCst) {
                        if sender_done.load(Ordering::SeqCst) == 1
                            && received >= lane_sent.load(Ordering::SeqCst)
                        {
                            return;
                        }
                        // The sender is still pacing the schedule; yield briefly.
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    let reply = match recv_message(&mut read_half) {
                        Ok(reply) => reply,
                        Err(_) => {
                            shared.decode_errors.inc();
                            return;
                        }
                    };
                    received += 1;
                    let (index, sent_at) = pending
                        .lock()
                        .expect("pending lock")
                        .pop_front()
                        .expect("a reply implies a pending request");
                    shared.inflight.fetch_sub(1, Ordering::SeqCst);
                    match reply {
                        Message::BatchResult { outcomes } => {
                            let micros = sent_at.elapsed().as_micros().min(u64::MAX as u128) as u64;
                            shared.latency.record(micros);
                            shared.min_latency.fetch_min(micros, Ordering::SeqCst);
                            shared.completed.inc();
                            if let Some(lock) = &shared.outcomes {
                                lock.lock().expect("outcomes lock")[index as usize] =
                                    Some(outcomes);
                            }
                        }
                        Message::Overloaded { .. } => shared.shed.inc(),
                        Message::Error { .. } => shared.errors.inc(),
                        _ => {
                            shared.decode_errors.inc();
                            return;
                        }
                    }
                }
            })
            .map_err(|e| NetError::protocol(format!("cannot spawn a receiver thread: {e}")))?
    };
    Ok((sender, receiver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_scenario::ArrivalSpec;

    #[test]
    fn requests_are_pure_functions_of_the_index() {
        let spec = WorkloadSpec {
            name: "pure".to_string(),
            arrivals: ArrivalSpec::Poisson { rate_hz: 10.0 },
            duration_secs: 1.0,
            connections: 1,
            jobs_per_request: 3,
            search: sfo_scenario::SearchSpec::Flooding,
            ttl: 2,
            seed: 9,
        };
        let a = build_request(&spec, 5, 100);
        let b = build_request(&spec, 5, 100);
        assert_eq!(a, b, "a request must not depend on timing or call order");
        let (ty_a, bytes_a) = a.encode();
        let (ty_b, bytes_b) = b.encode();
        assert_eq!((ty_a, bytes_a), (ty_b, bytes_b));
        let Message::SubmitBatch(BatchRequest::Queries { index_offset, .. }) = &a else {
            panic!("loadtest requests are explicit query batches");
        };
        assert_eq!(*index_offset, 15, "request 5 × 3 jobs starts at job 15");
    }

    #[test]
    fn an_unreachable_worker_is_a_typed_error() {
        let config = LoadtestConfig {
            spec: WorkloadSpec {
                name: "dead".to_string(),
                arrivals: ArrivalSpec::Poisson { rate_hz: 10.0 },
                duration_secs: 0.1,
                connections: 1,
                jobs_per_request: 1,
                search: sfo_scenario::SearchSpec::Flooding,
                ttl: 1,
                seed: 1,
            },
            workers: vec!["127.0.0.1:1".to_string()],
            record_outcomes: false,
        };
        assert!(matches!(run_loadtest(&config), Err(NetError::Io { .. })));
    }
}
