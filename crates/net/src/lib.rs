//! # sfo-net
//!
//! The transport/process half of distributed scenario execution: a framed wire
//! protocol, a snapshot-serving worker daemon, and the dispatcher that splits one
//! scenario's work across worker processes — the layer between
//! `sfo-engine`/`sfo-scenario` and the `sfo` binary's `serve`/`dispatch` commands.
//!
//! The serialization half already existed: `.sfos` snapshot files ship frozen
//! realizations between processes, a `ScenarioSpec` is the wire unit for a whole
//! experiment, and a `QueryBatch` for work against a shared snapshot. This crate adds
//! the missing pieces:
//!
//! * [`frame`] — a versioned, length-prefixed, FNV-checksummed frame codec over TCP or
//!   Unix sockets, hand-rolled in the same style as `sfo_graph::snapshot` (byte layout
//!   in `docs/FORMATS.md`). Strict readers: corrupt frames are typed [`NetError`]s,
//!   never panics, and declared lengths are bounded before allocation.
//! * [`message`] — the worker vocabulary: `Hello` / `LoadSnapshot` / `SubmitBatch` /
//!   `BatchResult` / `Error`, plus the observability pair `StatsRequest` /
//!   `StatsReport` carrying a worker's `sfo-obs` [`MetricsSnapshot`](sfo_obs::MetricsSnapshot).
//! * [`server`] — [`WorkerServer`], the `sfo serve` daemon: loads one `.sfos` snapshot
//!   into a sharded store and serves query batches from any number of clients over one
//!   persistent engine pool.
//! * [`client`] / [`dispatcher`] — [`WorkerClient`] for one connection, and
//!   [`RemoteDispatcher`], which implements the scenario layer's
//!   [`RemoteSweepExecutor`](sfo_scenario::RemoteSweepExecutor) seam: it splits a
//!   snapshot sweep's job grid into contiguous ranges, one per worker, and merges the
//!   outcomes in global job order.
//! * [`overlay`] — [`OverlayNode`], the `sfo overlay` daemon: one `sfo-overlay` peer
//!   over real sockets, with the five membership messages carried one-to-one on their
//!   own frame types.
//! * [`placed`] — real shard placement: the canonical shard partition
//!   ([`placed::shard_range`]/[`placed::shard_of`]), `LoadShard` shipments that give
//!   worker `i` exactly shard `i`'s rows, and the dispatcher loop that routes every
//!   search to the owner of the row it needs next, hopping between hosts as
//!   `ForwardFrontier`/`FrontierResult` frames (`sweep.placed`, `sfo serve --shard`).
//! * [`loadtest`] — the open-loop load driver behind `sfo loadtest`: replays a
//!   [`WorkloadSpec`](sfo_scenario::WorkloadSpec) arrival schedule against one or
//!   many workers over concurrent pipelined connections, recording client-side
//!   latency percentiles, in-flight depth, and achieved-vs-offered rate into
//!   `sfo-obs` histograms while counting the worker's typed [`Message::Overloaded`]
//!   sheds instead of dying on them.
//!
//! **The headline invariant is byte-identity.** Every job of a batch derives its RNG
//! from `(batch seed, global job index)` — the workspace's single stream rule — so
//! where a job runs (which worker, which process, which host) is invisible in the
//! results: a `ScenarioSpec` with `workers: [...]` produces a `ScenarioReport.result`
//! byte-identical to the same spec run locally, for any worker count and any job
//! split. The dispatcher's own machinery is therefore pure refusal logic: workers echo
//! the identity hash of the snapshot they serve in `Hello`, and a dispatcher refuses
//! to send work to one serving the wrong realization. Placed runs keep the same
//! invariant by a stronger mechanism: a forwarded frontier carries the search's exact
//! serial state (visited delta, queue, raw RNG words), so cross-host traversal is a
//! pure partition of the serial oracle's work — byte-identical for any shard count,
//! placement, and interleaving.
//!
//! # Example
//!
//! Serve a snapshot on a loopback port and run one sweep slice against it:
//!
//! ```no_run
//! use sfo_net::{ServeConfig, WorkerServer, WorkerClient};
//! use sfo_net::message::BatchRequest;
//! use sfo_scenario::SearchSpec;
//!
//! # fn main() -> Result<(), sfo_net::NetError> {
//! let server = WorkerServer::bind(&ServeConfig {
//!     snapshot_path: "pa.sfos".to_string(),
//!     listen: "127.0.0.1:0".to_string(),
//!     engine_workers: 0,
//!     shard_count: 4,
//!     shard_index: None,
//!     mmap: false,
//!     queue_bound: 0,
//! })?;
//! let addr = server.local_addr();
//! let handle = server.spawn();
//!
//! let mut client = WorkerClient::connect(&addr)?;
//! let outcomes = client.submit(&BatchRequest::SweepRange {
//!     seed: client.hello().identity, // illustrative; a sweep uses the stored sweep_seed
//!     start: 0,
//!     end: 30,
//!     searches_per_point: 10,
//!     ttls: vec![1, 2, 4],
//!     search: SearchSpec::Flooding,
//! })?;
//! assert_eq!(outcomes.len(), 30);
//! handle.stop();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod client;
pub mod dispatcher;
pub mod frame;
pub mod loadtest;
pub mod message;
pub mod overlay;
pub mod placed;
pub mod server;
pub mod stream;

pub use client::WorkerClient;
pub use dispatcher::{
    dispatch_queries, dispatch_sweep, remote_runner, remote_runner_with_metrics, RemoteDispatcher,
};
pub use error::NetError;
pub use loadtest::{run_loadtest, LoadtestConfig, LoadtestReport};
pub use message::{BatchRequest, Hello, Message};
pub use overlay::{OverlayNode, OverlayNodeConfig, OverlayNodeHandle};
pub use server::{ServeConfig, WorkerServer, WorkerServerHandle, DEFAULT_QUEUE_BOUND};
pub use stream::{NetListener, NetStream};
