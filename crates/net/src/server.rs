//! The snapshot-serving worker daemon behind `sfo serve`.
//!
//! A [`WorkerServer`] loads one `.sfos` snapshot into a sharded store, spins up a
//! persistent [`WorkerPool`], and serves [`BatchRequest`]s from any number of client
//! connections concurrently — each connection gets its own handler thread, and the
//! engine's per-batch queues let their submissions interleave on one pool instead of
//! serializing. The worker is deterministic by construction: every job it runs derives
//! its RNG from `(batch seed, global job index)` exactly like a local run, so *where*
//! a job runs is invisible in the results.
//!
//! On connect the worker announces a [`Hello`] carrying the identity hash of the file
//! it serves ([`sfo_graph::snapshot::read_identity`]); a dispatcher that needs a
//! different realization refuses it instead of silently measuring the wrong topology.
//! `LoadSnapshot` swaps the served file (answering with a fresh `Hello`), and every
//! failure — unknown request kinds, out-of-range jobs, unloadable files — comes back
//! as a typed `Error` frame on a connection that stays usable.

use crate::message::{
    recv_message_counted, send_message, send_message_counted, BatchRequest, Hello, Message,
};
use crate::stream::{NetListener, NetStream};
use crate::NetError;
use sfo_engine::{
    batched_rw_normalized_to_nf_range, batched_ttl_sweep_range, run_queries_offset, AlgorithmTable,
    EngineConfig, ShardedCsr, WorkerPool,
};
use sfo_graph::snapshot::{read_identity, Provenance, SnapshotFile};
use sfo_obs::{PhaseTimer, Registry};
use sfo_scenario::spec::BuiltSearch;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The `.sfos` file to serve (must carry a provenance record).
    pub snapshot_path: String,
    /// Listen address: `host:port` (port 0 picks a free one) or `unix:/path`.
    pub listen: String,
    /// Engine pool worker threads (0 = all available cores).
    pub engine_workers: usize,
    /// Shards the loaded store is partitioned into (0 or 1 = unsharded). Sharding
    /// never changes results.
    pub shard_count: usize,
    /// Memory-map the snapshot's topology arrays instead of reading them into owned
    /// buffers (`sfo serve --mmap`). The file is checksum-verified once either way,
    /// and a mapped store answers every request byte-identically to a read one; on
    /// platforms without the mapping path this silently falls back to reading.
    pub mmap: bool,
}

/// One loaded snapshot: the store plus what `Hello` announces about it.
struct Store {
    graph: Arc<ShardedCsr>,
    provenance: Provenance,
    identity: u64,
}

impl Store {
    fn load(path: &str, shard_count: usize, mmap: bool) -> Result<Store, NetError> {
        let file = if mmap {
            SnapshotFile::load_mmap(path)
        } else {
            SnapshotFile::load(path)
        }
        .map_err(|e| NetError::protocol(format!("cannot serve {path}: {e}")))?;
        let provenance = file.provenance.ok_or_else(|| {
            NetError::protocol(format!(
                "cannot serve {path}: no provenance record — scenario jobs need the \
                 stored m and stream state; build the file with `sfo snapshot build`"
            ))
        })?;
        if file.csr.node_count() == 0 {
            return Err(NetError::protocol(format!(
                "cannot serve {path}: the topology is empty"
            )));
        }
        let identity = read_identity(path)
            .map_err(|e| NetError::protocol(format!("cannot serve {path}: {e}")))?;
        Ok(Store {
            graph: Arc::new(ShardedCsr::from_csr_owned(file.csr, shard_count.max(1))),
            provenance,
            identity,
        })
    }

    fn hello(&self, engine_workers: u32) -> Hello {
        Hello {
            identity: self.identity,
            node_count: self.graph.node_count() as u64,
            edge_count: self.graph.edge_count() as u64,
            shard_count: self.graph.shard_count() as u32,
            engine_workers,
        }
    }
}

struct ServerState {
    pool: WorkerPool,
    store: RwLock<Arc<Store>>,
    shard_count: usize,
    mmap: bool,
    stop: AtomicBool,
    /// The daemon's one telemetry registry: the engine pool records into it, the
    /// connection handlers count frames/bytes and request service times, and a
    /// `StatsRequest` answers with its snapshot. Pure observation — nothing in it
    /// feeds an RNG stream or reorders work.
    metrics: Arc<Registry>,
}

/// A bound, snapshot-loaded worker daemon; [`WorkerServer::run`] serves until stopped.
pub struct WorkerServer {
    listener: NetListener,
    state: Arc<ServerState>,
}

impl WorkerServer {
    /// Loads the configured snapshot (fully verified), spawns the engine pool, and
    /// binds the listen address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] when the snapshot cannot be served (unreadable,
    /// corrupt, empty, or provenance-less) and [`NetError::Io`] when the bind fails.
    pub fn bind(config: &ServeConfig) -> Result<Self, NetError> {
        let store = Store::load(&config.snapshot_path, config.shard_count, config.mmap)?;
        let listener = NetListener::bind(&config.listen)?;
        let metrics = Arc::new(Registry::new());
        Ok(WorkerServer {
            listener,
            state: Arc::new(ServerState {
                pool: WorkerPool::with_metrics(
                    EngineConfig::with_workers(config.engine_workers),
                    Arc::clone(&metrics),
                ),
                store: RwLock::new(Arc::new(store)),
                shard_count: config.shard_count,
                mmap: config.mmap,
                stop: AtomicBool::new(false),
                metrics,
            }),
        })
    }

    /// The daemon's telemetry registry — engine pool counters plus the wire-side
    /// frame/byte/service-time metrics. A `StatsRequest` frame (or `sfo stats` on the
    /// CLI) fetches its snapshot remotely.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.state.metrics
    }

    /// The bound address, dialable by [`crate::WorkerClient::connect`] — how callers
    /// learn the real port after binding `host:0`.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// The `Hello` this server currently announces.
    pub fn hello(&self) -> Hello {
        let store = self.state.store.read().expect("store lock").clone();
        store.hello(self.state.pool.workers() as u32)
    }

    /// Serves connections until [`WorkerServerHandle::stop`] is called (or forever, for
    /// a daemon run from the CLI). Each connection is handled on its own thread; accept
    /// errors on a live listener are logged to stderr and survived.
    pub fn run(&self) {
        loop {
            match self.listener.accept_peer() {
                Ok((stream, peer)) => {
                    if self.state.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    self.state.metrics.counter("net.connections").inc();
                    let state = Arc::clone(&self.state);
                    // Handlers are detached: they exit when their client hangs up, and
                    // an OS process exit reaps any that remain.
                    let _ = std::thread::Builder::new()
                        .name("sfo-net-conn".to_string())
                        .spawn(move || handle_connection(stream, &state, &peer));
                }
                Err(_) if self.state.stop.load(Ordering::SeqCst) => return,
                Err(e) => eprintln!("sfo serve: accept failed: {e}"),
            }
        }
    }

    /// Moves the server onto a background thread and returns a stop handle — the shape
    /// the in-process tests and the CI smoke use.
    pub fn spawn(self) -> WorkerServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let join = std::thread::Builder::new()
            .name("sfo-net-accept".to_string())
            .spawn(move || self.run())
            .expect("spawning accept thread");
        WorkerServerHandle { addr, state, join }
    }
}

/// Stop handle of a [`WorkerServer::spawn`]ed daemon.
pub struct WorkerServerHandle {
    addr: String,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<()>,
}

impl WorkerServerHandle {
    /// The served address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already established
    /// drain on their own threads when their clients hang up.
    pub fn stop(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection. If the dial fails
        // (e.g. a unix socket file someone unlinked or rebound), the accept loop may
        // never observe the flag — leak the thread rather than deadlock the caller;
        // it holds no work and dies with the process.
        if NetStream::connect(&self.addr).is_ok() {
            let _ = self.join.join();
        }
    }
}

/// One client conversation: `Hello`, then request/reply until the peer hangs up.
fn handle_connection(mut stream: NetStream, state: &ServerState, peer: &str) {
    // The store is pinned per connection: every batch on this connection runs against
    // exactly the snapshot its Hello announced, even if another client swaps the
    // server's default with LoadSnapshot in between. The identity handshake is a
    // promise about *this* conversation, and the `Arc` keeps a swapped-out store
    // alive until its last pinned connection drains.
    let metrics = &state.metrics;
    let mut pinned = state.store.read().expect("store lock").clone();
    let announce = Message::Hello(pinned.hello(state.pool.workers() as u32));
    match send_message_counted(&mut stream, &announce) {
        Ok(bytes) => record_sent(metrics, &announce, bytes),
        Err(_) => return,
    }
    loop {
        let request = match recv_message_counted(&mut stream) {
            Ok((message, bytes)) => {
                metrics
                    .counter(&format!("net.frames_in.{}", kind(&message)))
                    .inc();
                metrics.counter("net.bytes_in").add(bytes);
                message
            }
            // A clean hang-up between frames is the normal end of a conversation.
            Err(NetError::Truncated { section: "header" }) => return,
            Err(e) => {
                // The stream may be desynchronized; answer once and drop it — loudly,
                // so an operator can trace a misbehaving client by its address.
                eprintln!("sfo serve: {peer}: request does not decode, dropping connection: {e}");
                metrics.counter("net.decode_errors").inc();
                let _ = send_message(
                    &mut stream,
                    &Message::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let request_kind = kind(&request);
        let timer = PhaseTimer::start();
        let reply = match request {
            Message::LoadSnapshot { path } => {
                match Store::load(&path, state.shard_count, state.mmap) {
                    Ok(store) => {
                        let store = Arc::new(store);
                        let hello = store.hello(state.pool.workers() as u32);
                        // New connections see the new store; this connection repins.
                        *state.store.write().expect("store lock") = Arc::clone(&store);
                        pinned = store;
                        Message::Hello(hello)
                    }
                    Err(e) => Message::Error {
                        message: e.to_string(),
                    },
                }
            }
            Message::SubmitBatch(request) => match execute_request(state, &pinned, &request) {
                Ok(outcomes) => Message::BatchResult { outcomes },
                Err(e) => Message::Error {
                    message: e.to_string(),
                },
            },
            // The snapshot is taken before this request's own service time is
            // recorded, so the reported histograms describe completed requests only.
            Message::StatsRequest => Message::StatsReport(metrics.snapshot()),
            other => Message::Error {
                message: format!(
                    "unexpected message {:?} on a worker connection",
                    kind(&other)
                ),
            },
        };
        let micros = timer.elapsed_micros();
        metrics.histogram("net.request_micros").record(micros);
        metrics
            .histogram(&format!("net.request_micros.{request_kind}"))
            .record(micros);
        match send_message_counted(&mut stream, &reply) {
            Ok(bytes) => record_sent(metrics, &reply, bytes),
            Err(_) => return,
        }
    }
}

/// Counts one sent frame: `net.frames_out.<Kind>` plus `net.bytes_out`.
fn record_sent(metrics: &Registry, message: &Message, bytes: u64) {
    metrics
        .counter(&format!("net.frames_out.{}", kind(message)))
        .inc();
    metrics.counter("net.bytes_out").add(bytes);
}

fn kind(message: &Message) -> &'static str {
    match message {
        Message::Hello(_) => "Hello",
        Message::LoadSnapshot { .. } => "LoadSnapshot",
        Message::SubmitBatch(_) => "SubmitBatch",
        Message::BatchResult { .. } => "BatchResult",
        Message::Error { .. } => "Error",
        Message::Overlay(_) => "Overlay",
        Message::StatsRequest => "StatsRequest",
        Message::StatsReport(_) => "StatsReport",
    }
}

/// Validates and executes one batch request against the connection's pinned store.
///
/// Every precondition the engine asserts is checked here first and returned as a typed
/// error instead — a malformed request must never panic the daemon — and the execution
/// itself runs under `catch_unwind` as a second line of defense.
fn execute_request(
    state: &ServerState,
    store: &Arc<Store>,
    request: &BatchRequest,
) -> Result<Vec<sfo_search::SearchOutcome>, NetError> {
    let m = usize::try_from(store.provenance.m).unwrap_or(usize::MAX);
    let run = || -> Result<Vec<sfo_search::SearchOutcome>, NetError> {
        match request {
            BatchRequest::Queries {
                seed,
                index_offset,
                algorithms,
                batch,
            } => {
                let index_offset = usize::try_from(*index_offset)
                    .map_err(|_| NetError::protocol("index offset exceeds usize"))?;
                let mut table: AlgorithmTable<ShardedCsr> = Vec::with_capacity(algorithms.len());
                for spec in algorithms {
                    match spec.build_for::<ShardedCsr>(m) {
                        Ok(BuiltSearch::Algorithm(algorithm)) => table.push(algorithm),
                        Ok(BuiltSearch::RwNormalizedToNf { .. }) => {
                            return Err(NetError::protocol(
                                "rw_normalized_to_nf is not a table algorithm; \
                                 use a sweep-range request",
                            ))
                        }
                        Err(e) => {
                            return Err(NetError::protocol(format!(
                                "algorithm does not build: {e}"
                            )))
                        }
                    }
                }
                for (i, job) in batch.jobs().iter().enumerate() {
                    if job.algorithm >= table.len() {
                        return Err(NetError::protocol(format!(
                            "job {i}: algorithm index {} out of range for a table of {}",
                            job.algorithm,
                            table.len()
                        )));
                    }
                    if !sfo_graph::GraphView::contains_node(store.graph.as_ref(), job.source) {
                        return Err(NetError::protocol(format!(
                            "job {i}: source {} out of bounds for a {}-node snapshot",
                            job.source,
                            store.graph.node_count()
                        )));
                    }
                }
                let table = Arc::new(table);
                Ok(run_queries_offset(
                    &state.pool,
                    &store.graph,
                    &table,
                    batch,
                    *seed,
                    index_offset,
                ))
            }
            BatchRequest::SweepRange {
                seed,
                start,
                end,
                searches_per_point,
                ttls,
                search,
            } => {
                let start = usize::try_from(*start)
                    .map_err(|_| NetError::protocol("range start exceeds usize"))?;
                let end = usize::try_from(*end)
                    .map_err(|_| NetError::protocol("range end exceeds usize"))?;
                let searches = usize::try_from(*searches_per_point)
                    .map_err(|_| NetError::protocol("searches_per_point exceeds usize"))?;
                let total = ttls
                    .len()
                    .checked_mul(searches)
                    .ok_or_else(|| NetError::protocol("sweep grid size overflows usize"))?;
                if start > end || end > total {
                    return Err(NetError::protocol(format!(
                        "job range {start}..{end} out of bounds for a grid of {total} jobs"
                    )));
                }
                match search.build_for::<ShardedCsr>(m) {
                    Ok(BuiltSearch::Algorithm(algorithm)) => Ok(batched_ttl_sweep_range(
                        &state.pool,
                        &store.graph,
                        algorithm,
                        ttls,
                        searches,
                        *seed,
                        start,
                        end,
                    )),
                    Ok(BuiltSearch::RwNormalizedToNf { k_min }) => {
                        Ok(batched_rw_normalized_to_nf_range(
                            &state.pool,
                            &store.graph,
                            k_min,
                            ttls,
                            searches,
                            *seed,
                            start,
                            end,
                        ))
                    }
                    Err(e) => Err(NetError::protocol(format!("search does not build: {e}"))),
                }
            }
        }
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(NetError::protocol(format!(
                "batch execution panicked: {message}"
            )))
        }
    }
}
