//! The snapshot-serving worker daemon behind `sfo serve`.
//!
//! A [`WorkerServer`] loads one `.sfos` snapshot into a sharded store, spins up a
//! persistent [`WorkerPool`], and serves [`BatchRequest`]s from any number of client
//! connections concurrently — each connection runs as a reader/executor thread pair
//! over one duplicated socket, and the engine's per-batch queues let their
//! submissions interleave on one pool instead of serializing. The worker is
//! deterministic by construction: every job it runs derives its RNG from
//! `(batch seed, global job index)` exactly like a local run, so *where* a job runs
//! is invisible in the results.
//!
//! # Backpressure
//!
//! A pipelining client (the `sfo loadtest` driver) can send requests faster than the
//! engine drains them. Each connection therefore carries a bounded pending-batch
//! queue: the reader admits `SubmitBatch` frames up to [`ServeConfig::queue_bound`]
//! and *sheds* the rest with a typed [`Message::Overloaded`] reply — sent in arrival
//! order like every other reply, so the conversation never desyncs and the
//! connection never dies from overload. Shedding is pure admission control: a shed
//! request is never executed, and the requests that *are* served produce
//! byte-identical `BatchResult` payloads at any bound (determinism rule 6). The
//! reader records admission depth into the `net.queue_depth` histogram and sheds
//! into the `net.shed_total` counter, both visible over `StatsRequest`.
//!
//! On connect the worker announces a [`Hello`] carrying the identity hash of the file
//! it serves ([`sfo_graph::snapshot::read_identity`]); a dispatcher that needs a
//! different realization refuses it instead of silently measuring the wrong topology.
//! `LoadSnapshot` swaps the served file (answering with a fresh `Hello`), and every
//! failure — unknown request kinds, out-of-range jobs, unloadable files — comes back
//! as a typed `Error` frame on a connection that stays usable.
//!
//! # Shard serving
//!
//! Besides the whole-snapshot mode, a worker can hold one *shard* of a placed
//! deployment: the contiguous [`CsrSlice`] of the node range
//! [`crate::placed::shard_range`] assigns it, installed either at startup
//! (`sfo serve --shard i`, which cuts the slice out of the local snapshot file) or
//! over the wire by a dispatcher's `LoadShard` frame. A shard host announces its
//! shard index in `Hello` (whole-snapshot workers announce
//! [`WHOLE_SNAPSHOT`]), refuses `SubmitBatch` — it cannot run whole jobs — and
//! instead serves `ForwardFrontier`: it resumes a suspended placed search on its
//! rows with [`placed_advance`] and answers `FrontierResult::Done` or
//! `FrontierResult::Continue`. Admission is strict: a frontier whose cursor this
//! shard does not own, or whose snapshot identity differs, is a typed error, never
//! silently-wrong work.

use crate::message::{
    recv_message_counted, send_message, send_message_counted, BatchRequest, FrontierResult, Hello,
    Message, ShardPayload, WHOLE_SNAPSHOT,
};
use crate::stream::{NetListener, NetStream};
use crate::NetError;
use sfo_engine::{
    batched_rw_normalized_to_nf_range, batched_ttl_sweep_range, placed_advance, run_queries_offset,
    AlgorithmTable, EngineConfig, PlacedState, PlacedStep, SearchScratch, ShardedCsr, StepStats,
    WorkerPool,
};
use sfo_graph::snapshot::{read_identity, Provenance, SnapshotFile};
use sfo_graph::{CsrSlice, ShardView};
use sfo_obs::{PhaseTimer, Registry};
use sfo_scenario::spec::BuiltSearch;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// The pending-batch queue bound used when [`ServeConfig::queue_bound`] is 0.
pub const DEFAULT_QUEUE_BOUND: usize = 32;

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The `.sfos` file to serve (must carry a provenance record).
    pub snapshot_path: String,
    /// Listen address: `host:port` (port 0 picks a free one) or `unix:/path`.
    pub listen: String,
    /// Engine pool worker threads (0 = all available cores).
    pub engine_workers: usize,
    /// Whole-snapshot mode: shards the loaded store is partitioned into (0 or 1 =
    /// unsharded; sharding never changes results). Shard mode (`shard_index` set):
    /// the placement's total shard count.
    pub shard_count: usize,
    /// Serve one placed shard instead of the whole snapshot: cut shard `i` of
    /// `shard_count` out of the file and answer `ForwardFrontier` only
    /// (`sfo serve --shard i`). The pin is permanent for the daemon's lifetime —
    /// `LoadShard`/`LoadSnapshot` for a different shard or file are refused.
    pub shard_index: Option<usize>,
    /// Memory-map the snapshot's topology arrays instead of reading them into owned
    /// buffers (`sfo serve --mmap`). The file is checksum-verified once either way,
    /// and a mapped store answers every request byte-identically to a read one; on
    /// platforms without the mapping path this silently falls back to reading.
    pub mmap: bool,
    /// Per-connection pending-batch queue bound (`sfo serve --queue-bound`): how many
    /// admitted `SubmitBatch` requests may be waiting or executing on one connection
    /// before the worker sheds the next with a typed [`Message::Overloaded`] reply
    /// instead of queueing without bound. 0 selects [`DEFAULT_QUEUE_BOUND`]. Shedding
    /// never changes results: the requests that are served produce byte-identical
    /// `BatchResult` payloads at any bound.
    pub queue_bound: usize,
}

/// What a store holds: every row, or one placed shard's rows.
enum Topology {
    /// The whole snapshot, shardable for the in-process engine.
    Whole(Arc<ShardedCsr>),
    /// One placed shard: the slice plus its position in the placement.
    Shard {
        slice: Arc<CsrSlice>,
        shard_index: u32,
        shard_count: u32,
    },
}

/// One loaded snapshot (or shard of one): the store plus what `Hello` announces.
struct Store {
    topology: Topology,
    /// Present on stores loaded from `.sfos` files; absent on shards installed over
    /// the wire (`LoadShard` ships rows, not provenance — shard hosts never build
    /// jobs, so they never need the stored `m`).
    provenance: Option<Provenance>,
    identity: u64,
}

impl Store {
    fn load(
        path: &str,
        shard_count: usize,
        shard_index: Option<usize>,
        mmap: bool,
    ) -> Result<Store, NetError> {
        let file = if mmap {
            SnapshotFile::load_mmap(path)
        } else {
            SnapshotFile::load(path)
        }
        .map_err(|e| NetError::protocol(format!("cannot serve {path}: {e}")))?;
        let provenance = file.provenance.ok_or_else(|| {
            NetError::protocol(format!(
                "cannot serve {path}: no provenance record — scenario jobs need the \
                 stored m and stream state; build the file with `sfo snapshot build`"
            ))
        })?;
        if file.csr.node_count() == 0 {
            return Err(NetError::protocol(format!(
                "cannot serve {path}: the topology is empty"
            )));
        }
        let identity = read_identity(path)
            .map_err(|e| NetError::protocol(format!("cannot serve {path}: {e}")))?;
        let topology = match shard_index {
            None => Topology::Whole(Arc::new(ShardedCsr::from_csr_owned(
                file.csr,
                shard_count.max(1),
            ))),
            Some(index) => {
                if shard_count == 0 || index >= shard_count {
                    return Err(NetError::protocol(format!(
                        "cannot serve {path}: shard {index} of {shard_count} is not a \
                         placement (need --shards above the shard index)"
                    )));
                }
                let range = crate::placed::shard_range(file.csr.node_count(), shard_count, index);
                Topology::Shard {
                    slice: Arc::new(file.csr.extract_slice(range)),
                    shard_index: index as u32,
                    shard_count: shard_count as u32,
                }
            }
        };
        Ok(Store {
            topology,
            provenance: Some(provenance),
            identity,
        })
    }

    /// Wraps a wire-shipped shard as a servable store.
    fn from_payload(payload: ShardPayload) -> Store {
        Store {
            identity: payload.identity,
            topology: Topology::Shard {
                slice: Arc::new(payload.slice),
                shard_index: payload.shard_index,
                shard_count: payload.shard_count,
            },
            provenance: None,
        }
    }

    /// The view placed frontiers run against.
    fn shard_view(&self) -> &dyn ShardView {
        match &self.topology {
            Topology::Whole(graph) => graph.as_ref(),
            Topology::Shard { slice, .. } => slice.as_ref(),
        }
    }

    fn hello(&self, engine_workers: u32) -> Hello {
        let (shard_count, shard_index) = match &self.topology {
            Topology::Whole(graph) => (graph.shard_count() as u32, WHOLE_SNAPSHOT),
            Topology::Shard {
                shard_index,
                shard_count,
                ..
            } => (*shard_count, *shard_index),
        };
        Hello {
            identity: self.identity,
            node_count: self.shard_view().node_count() as u64,
            edge_count: self.shard_view().edge_count() as u64,
            shard_count,
            engine_workers,
            shard_index,
        }
    }
}

struct ServerState {
    pool: WorkerPool,
    store: RwLock<Arc<Store>>,
    shard_count: usize,
    /// The `--shard` pin: a pinned daemon serves exactly this placed shard forever.
    pinned_shard: Option<usize>,
    mmap: bool,
    /// Resolved per-connection pending-batch admission bound (never 0).
    queue_bound: usize,
    stop: AtomicBool,
    /// Monotonic connection ids, so per-connection telemetry and logs attribute to
    /// the conversation that misbehaved, not to whichever peer string a thread last
    /// held.
    connections: AtomicU64,
    /// The daemon's one telemetry registry: the engine pool records into it, the
    /// connection handlers count frames/bytes and request service times, and a
    /// `StatsRequest` answers with its snapshot. Pure observation — nothing in it
    /// feeds an RNG stream or reorders work.
    metrics: Arc<Registry>,
}

/// A bound, snapshot-loaded worker daemon; [`WorkerServer::run`] serves until stopped.
pub struct WorkerServer {
    listener: NetListener,
    state: Arc<ServerState>,
}

impl WorkerServer {
    /// Loads the configured snapshot (fully verified), spawns the engine pool, and
    /// binds the listen address.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Protocol`] when the snapshot cannot be served (unreadable,
    /// corrupt, empty, provenance-less, or a `--shard` index outside the placement)
    /// and [`NetError::Io`] when the bind fails.
    pub fn bind(config: &ServeConfig) -> Result<Self, NetError> {
        let store = Store::load(
            &config.snapshot_path,
            config.shard_count,
            config.shard_index,
            config.mmap,
        )?;
        let listener = NetListener::bind(&config.listen)?;
        let metrics = Arc::new(Registry::new());
        Ok(WorkerServer {
            listener,
            state: Arc::new(ServerState {
                pool: WorkerPool::with_metrics(
                    EngineConfig::with_workers(config.engine_workers),
                    Arc::clone(&metrics),
                ),
                store: RwLock::new(Arc::new(store)),
                shard_count: config.shard_count,
                pinned_shard: config.shard_index,
                mmap: config.mmap,
                queue_bound: if config.queue_bound == 0 {
                    DEFAULT_QUEUE_BOUND
                } else {
                    config.queue_bound
                },
                stop: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                metrics,
            }),
        })
    }

    /// The daemon's telemetry registry — engine pool counters plus the wire-side
    /// frame/byte/service-time metrics. A `StatsRequest` frame (or `sfo stats` on the
    /// CLI) fetches its snapshot remotely.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.state.metrics
    }

    /// The bound address, dialable by [`crate::WorkerClient::connect`] — how callers
    /// learn the real port after binding `host:0`.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// The `Hello` this server currently announces.
    pub fn hello(&self) -> Hello {
        let store = self.state.store.read().expect("store lock").clone();
        store.hello(self.state.pool.workers() as u32)
    }

    /// Serves connections until [`WorkerServerHandle::stop`] is called (or forever, for
    /// a daemon run from the CLI). Each connection is handled on its own thread; accept
    /// errors on a live listener are logged to stderr and survived.
    pub fn run(&self) {
        loop {
            match self.listener.accept_peer() {
                Ok((stream, peer)) => {
                    if self.state.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    self.state.metrics.counter("net.connections").inc();
                    let conn = self.state.connections.fetch_add(1, Ordering::SeqCst) + 1;
                    let state = Arc::clone(&self.state);
                    // Handlers are detached: they exit when their client hangs up, and
                    // an OS process exit reaps any that remain.
                    let _ = std::thread::Builder::new()
                        .name("sfo-net-conn".to_string())
                        .spawn(move || handle_connection(stream, &state, conn, &peer));
                }
                Err(_) if self.state.stop.load(Ordering::SeqCst) => return,
                Err(e) => eprintln!("sfo serve: accept failed: {e}"),
            }
        }
    }

    /// Moves the server onto a background thread and returns a stop handle — the shape
    /// the in-process tests and the CI smoke use.
    pub fn spawn(self) -> WorkerServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let join = std::thread::Builder::new()
            .name("sfo-net-accept".to_string())
            .spawn(move || self.run())
            .expect("spawning accept thread");
        WorkerServerHandle { addr, state, join }
    }
}

/// Stop handle of a [`WorkerServer::spawn`]ed daemon.
pub struct WorkerServerHandle {
    addr: String,
    state: Arc<ServerState>,
    join: std::thread::JoinHandle<()>,
}

impl WorkerServerHandle {
    /// The served address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already established
    /// drain on their own threads when their clients hang up.
    pub fn stop(self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one throwaway connection. If the dial fails
        // (e.g. a unix socket file someone unlinked or rebound), the accept loop may
        // never observe the flag — leak the thread rather than deadlock the caller;
        // it holds no work and dies with the process.
        if NetStream::connect(&self.addr).is_ok() {
            let _ = self.join.join();
        }
    }
}

/// Whether a receive error means the stream can no longer be trusted to be
/// frame-aligned. Errors raised *after* a whole checksum-verified frame was consumed
/// (an unknown frame type, a payload that decodes wrong) leave the stream aligned on
/// the next frame boundary — the connection answers a typed error and keeps serving.
/// Everything raised mid-frame (bad magic, a truncated payload or trailer, a failed
/// checksum, an IO error) means desync: answer once, then drop.
fn frame_desynced(error: &NetError) -> bool {
    match error {
        NetError::UnknownFrameType { .. } | NetError::Corrupt { .. } => false,
        // Payload-section truncation is a full frame whose *contents* ran short;
        // only the frame codec's own sections mean the stream itself broke.
        NetError::Truncated { section } => matches!(*section, "payload" | "trailer"),
        _ => true,
    }
}

/// What the per-connection reader hands to the executor, in arrival order.
enum ConnEvent {
    /// A decoded, admitted request to serve.
    Request(Message),
    /// A `SubmitBatch` that arrived while the pending-batch queue was full; the
    /// executor answers [`Message::Overloaded`] in sequence, executing nothing.
    Shed {
        /// The queue depth the reader observed at arrival.
        queued: u32,
    },
    /// A receive error; the executor answers a typed `Error` and, when the stream
    /// itself desynced, drops the connection.
    DecodeError {
        /// The error text to answer with.
        message: String,
        /// Whether the stream can no longer be trusted to be frame-aligned.
        desynced: bool,
    },
    /// The peer hung up cleanly between frames.
    Hangup,
}

/// One client conversation: `Hello`, then request/reply until the peer hangs up.
///
/// The conversation runs as a thread pair over one duplicated socket: the *reader*
/// decodes frames as fast as they arrive and admits batches against the pending-batch
/// bound (shedding past it), while the *executor* — this thread — serves events
/// strictly in arrival order, so a pipelining client reads replies in exactly the
/// order it sent requests.
fn handle_connection(mut stream: NetStream, state: &ServerState, conn: u64, peer: &str) {
    // The store is pinned per connection: every batch on this connection runs against
    // exactly the snapshot its Hello announced, even if another client swaps the
    // server's default with LoadSnapshot in between. The identity handshake is a
    // promise about *this* conversation, and the `Arc` keeps a swapped-out store
    // alive until its last pinned connection drains.
    let metrics = &state.metrics;
    let mut pinned = state.store.read().expect("store lock").clone();
    // Per-connection traversal arena for placed frontiers, reused across requests.
    let mut scratch = SearchScratch::new();
    let announce = Message::Hello(pinned.hello(state.pool.workers() as u32));
    match send_message_counted(&mut stream, &announce) {
        Ok(bytes) => record_sent(metrics, &announce, bytes),
        Err(_) => return,
    }
    let mut read_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("sfo serve: conn#{conn} ({peer}): cannot split the stream: {e}");
            return;
        }
    };
    let queue: Arc<(Mutex<VecDeque<ConnEvent>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    let queue_bound = state.queue_bound;
    // Admitted-but-not-completed batches: the reader increments at admission, the
    // executor decrements after the reply is built, so the count *is* the pending
    // depth a new arrival competes with.
    let pending = Arc::new(AtomicUsize::new(0));
    let reader = {
        let queue = Arc::clone(&queue);
        let pending = Arc::clone(&pending);
        let metrics = Arc::clone(metrics);
        let peer = peer.to_string();
        std::thread::Builder::new()
            .name("sfo-net-read".to_string())
            .spawn(move || {
                let push = |event: ConnEvent| {
                    let (events, signal) = &*queue;
                    events.lock().expect("conn queue lock").push_back(event);
                    signal.notify_one();
                };
                loop {
                    match recv_message_counted(&mut read_stream) {
                        Ok((message, bytes)) => {
                            metrics
                                .counter(&format!("net.frames_in.{}", kind(&message)))
                                .inc();
                            metrics.counter("net.bytes_in").add(bytes);
                            if matches!(message, Message::SubmitBatch(_)) {
                                // Admission happens at arrival, not at execution, so
                                // a saturated executor sheds instead of buffering
                                // without bound.
                                let depth = pending.load(Ordering::SeqCst);
                                if depth >= queue_bound {
                                    metrics.counter("net.shed_total").inc();
                                    push(ConnEvent::Shed {
                                        queued: depth as u32,
                                    });
                                    continue;
                                }
                                pending.fetch_add(1, Ordering::SeqCst);
                                metrics
                                    .histogram("net.queue_depth")
                                    .record(depth as u64 + 1);
                            }
                            push(ConnEvent::Request(message));
                        }
                        // A clean hang-up between frames: the normal end.
                        Err(NetError::Truncated { section: "header" }) => {
                            push(ConnEvent::Hangup);
                            return;
                        }
                        Err(e) => {
                            // Attributed to this connection, not to whatever peer
                            // string a thread last logged — loudly, so an operator
                            // can trace a misbehaving client.
                            metrics.counter("net.decode_errors").inc();
                            metrics
                                .counter(&format!("net.decode_errors.conn.{conn}"))
                                .inc();
                            let desynced = frame_desynced(&e);
                            eprintln!(
                                "sfo serve: conn#{conn} ({peer}): request does not decode{}: {e}",
                                if desynced {
                                    ", dropping connection"
                                } else {
                                    ""
                                }
                            );
                            push(ConnEvent::DecodeError {
                                message: e.to_string(),
                                desynced,
                            });
                            if desynced {
                                return;
                            }
                        }
                    }
                }
            })
    };
    if reader.is_err() {
        eprintln!("sfo serve: conn#{conn} ({peer}): cannot spawn the reader thread");
        return;
    }
    // The executor. The reader is deliberately not joined on exit: after an
    // executor-side write failure it unblocks on its own the moment the peer hangs
    // up or the socket dies, and an OS process exit reaps it regardless.
    loop {
        let event = {
            let (events, signal) = &*queue;
            let mut events = events.lock().expect("conn queue lock");
            while events.is_empty() {
                events = signal.wait(events).expect("conn queue lock");
            }
            events.pop_front().expect("a non-empty event queue")
        };
        let request = match event {
            ConnEvent::Hangup => return,
            ConnEvent::DecodeError { message, desynced } => {
                let _ = send_message(&mut stream, &Message::Error { message });
                if desynced {
                    return;
                }
                continue;
            }
            ConnEvent::Shed { queued } => {
                // Not a served request: no engine time was spent and no service
                // time is recorded — only the reply frame itself.
                let reply = Message::Overloaded {
                    queued,
                    limit: queue_bound as u32,
                };
                match send_message_counted(&mut stream, &reply) {
                    Ok(bytes) => record_sent(metrics, &reply, bytes),
                    Err(_) => return,
                }
                continue;
            }
            ConnEvent::Request(request) => request,
        };
        let request_kind = kind(&request);
        let was_batch = matches!(request, Message::SubmitBatch(_));
        let timer = PhaseTimer::start();
        let reply = match request {
            Message::LoadSnapshot { path } => {
                match Store::load(&path, state.shard_count, state.pinned_shard, state.mmap) {
                    Ok(store) => {
                        let store = Arc::new(store);
                        let hello = store.hello(state.pool.workers() as u32);
                        // New connections see the new store; this connection repins.
                        *state.store.write().expect("store lock") = Arc::clone(&store);
                        pinned = store;
                        Message::Hello(hello)
                    }
                    Err(e) => Message::Error {
                        message: e.to_string(),
                    },
                }
            }
            Message::LoadShard(payload) => match install_shard(state, payload) {
                Ok(store) => {
                    let hello = store.hello(state.pool.workers() as u32);
                    pinned = store;
                    Message::Hello(hello)
                }
                Err(e) => Message::Error {
                    message: e.to_string(),
                },
            },
            Message::ForwardFrontier {
                identity,
                state: frontier,
            } => match serve_frontier(state, &pinned, identity, frontier, &mut scratch) {
                Ok(PlacedStep::Done(outcome)) => {
                    Message::FrontierResult(FrontierResult::Done(outcome))
                }
                Ok(PlacedStep::Forward(next)) => {
                    Message::FrontierResult(FrontierResult::Continue(next))
                }
                Err(e) => Message::Error {
                    message: e.to_string(),
                },
            },
            Message::SubmitBatch(request) => match execute_request(state, &pinned, &request) {
                Ok(outcomes) => Message::BatchResult { outcomes },
                Err(e) => Message::Error {
                    message: e.to_string(),
                },
            },
            // The snapshot is taken before this request's own service time is
            // recorded, so the reported histograms describe completed requests only.
            Message::StatsRequest => Message::StatsReport(metrics.snapshot()),
            other => Message::Error {
                message: format!(
                    "unexpected message {:?} on a worker connection",
                    kind(&other)
                ),
            },
        };
        if was_batch {
            pending.fetch_sub(1, Ordering::SeqCst);
        }
        let micros = timer.elapsed_micros();
        metrics.histogram("net.request_micros").record(micros);
        metrics
            .histogram(&format!("net.request_micros.{request_kind}"))
            .record(micros);
        match send_message_counted(&mut stream, &reply) {
            Ok(bytes) => record_sent(metrics, &reply, bytes),
            Err(_) => return,
        }
    }
}

/// Counts one sent frame: `net.frames_out.<Kind>` plus `net.bytes_out`.
fn record_sent(metrics: &Registry, message: &Message, bytes: u64) {
    metrics
        .counter(&format!("net.frames_out.{}", kind(message)))
        .inc();
    metrics.counter("net.bytes_out").add(bytes);
}

fn kind(message: &Message) -> &'static str {
    match message {
        Message::Hello(_) => "Hello",
        Message::LoadSnapshot { .. } => "LoadSnapshot",
        Message::LoadShard(_) => "LoadShard",
        Message::SubmitBatch(_) => "SubmitBatch",
        Message::BatchResult { .. } => "BatchResult",
        Message::ForwardFrontier { .. } => "ForwardFrontier",
        Message::FrontierResult(_) => "FrontierResult",
        Message::Error { .. } => "Error",
        Message::Overlay(_) => "Overlay",
        Message::StatsRequest => "StatsRequest",
        Message::StatsReport(_) => "StatsReport",
        Message::Overloaded { .. } => "Overloaded",
    }
}

/// Installs a wire-shipped shard as the served store (and repins new connections to
/// it). A daemon pinned by `--shard` only accepts its own coordinates back — the
/// handshake then merely confirms the shard it already cut locally.
fn install_shard(state: &ServerState, payload: ShardPayload) -> Result<Arc<Store>, NetError> {
    if let Some(pin) = state.pinned_shard {
        let held = state.store.read().expect("store lock").clone();
        if payload.shard_index as usize != pin || payload.identity != held.identity {
            return Err(NetError::protocol(format!(
                "this worker is pinned to shard {pin} of snapshot {:#018x}; refusing \
                 shard {} of snapshot {:#018x}",
                held.identity, payload.shard_index, payload.identity
            )));
        }
    }
    let store = Arc::new(Store::from_payload(payload));
    *state.store.write().expect("store lock") = Arc::clone(&store);
    Ok(store)
}

/// Resumes one placed frontier on this store's rows.
///
/// Admission is checked before any traversal: the frontier must name this store's
/// snapshot identity, decode-validated fields must fit the snapshot's id space, and
/// its cursor — the row it needs next — must be a row this store owns. The advance
/// itself runs under `catch_unwind`: a frontier must never take the daemon down.
fn serve_frontier(
    state: &ServerState,
    store: &Arc<Store>,
    identity: u64,
    frontier: PlacedState,
    scratch: &mut SearchScratch,
) -> Result<PlacedStep, NetError> {
    if identity != store.identity {
        return Err(NetError::protocol(format!(
            "frontier names snapshot {identity:#018x}, but this worker serves {:#018x}",
            store.identity
        )));
    }
    let view = store.shard_view();
    crate::placed::validate_state(&frontier, view.node_count())?;
    if let Some(cursor) = frontier.cursor() {
        if !view.owns(cursor as usize) {
            let place = match &store.topology {
                Topology::Whole(_) => "the whole snapshot".to_string(),
                Topology::Shard {
                    shard_index,
                    shard_count,
                    ..
                } => format!("shard {shard_index} of {shard_count}"),
            };
            return Err(NetError::protocol(format!(
                "frontier cursor {cursor} is not owned by {place}; route it to shard {}",
                crate::placed::shard_of(
                    cursor as usize,
                    view.node_count(),
                    match &store.topology {
                        Topology::Whole(_) => 1,
                        Topology::Shard { shard_count, .. } => *shard_count as usize,
                    }
                )
            )));
        }
    }
    let mut stats = StepStats::default();
    let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        placed_advance(view, frontier, scratch, &mut stats)
    }))
    .map_err(|_| NetError::protocol("frontier advance panicked"))?;
    let metrics = &state.metrics;
    metrics.counter("placed.frontiers_served").inc();
    metrics
        .counter("placed.frontier_entries_scanned")
        .add(stats.entries_scanned);
    metrics
        .counter("placed.frontier_entries_cross")
        .add(stats.entries_cross);
    if matches!(step, PlacedStep::Forward(_)) {
        metrics.counter("placed.frontiers_forwarded").inc();
    }
    Ok(step)
}

/// Validates and executes one batch request against the connection's pinned store.
///
/// Every precondition the engine asserts is checked here first and returned as a typed
/// error instead — a malformed request must never panic the daemon — and the execution
/// itself runs under `catch_unwind` as a second line of defense.
fn execute_request(
    state: &ServerState,
    store: &Arc<Store>,
    request: &BatchRequest,
) -> Result<Vec<sfo_search::SearchOutcome>, NetError> {
    let Topology::Whole(graph) = &store.topology else {
        let (index, count) = match &store.topology {
            Topology::Shard {
                shard_index,
                shard_count,
                ..
            } => (*shard_index, *shard_count),
            Topology::Whole(_) => unreachable!(),
        };
        return Err(NetError::protocol(format!(
            "this worker serves shard {index} of {count}: it accepts placed frontiers, \
             not whole-snapshot batches"
        )));
    };
    let m = store
        .provenance
        .as_ref()
        .map(|p| usize::try_from(p.m).unwrap_or(usize::MAX))
        .ok_or_else(|| NetError::protocol("the served snapshot carries no provenance"))?;
    let run = || -> Result<Vec<sfo_search::SearchOutcome>, NetError> {
        match request {
            BatchRequest::Queries {
                seed,
                index_offset,
                algorithms,
                batch,
            } => {
                let index_offset = usize::try_from(*index_offset)
                    .map_err(|_| NetError::protocol("index offset exceeds usize"))?;
                let mut table: AlgorithmTable<ShardedCsr> = Vec::with_capacity(algorithms.len());
                for spec in algorithms {
                    match spec.build_for::<ShardedCsr>(m) {
                        Ok(BuiltSearch::Algorithm(algorithm)) => table.push(algorithm),
                        Ok(BuiltSearch::RwNormalizedToNf { .. }) => {
                            return Err(NetError::protocol(
                                "rw_normalized_to_nf is not a table algorithm; \
                                 use a sweep-range request",
                            ))
                        }
                        Err(e) => {
                            return Err(NetError::protocol(format!(
                                "algorithm does not build: {e}"
                            )))
                        }
                    }
                }
                for (i, job) in batch.jobs().iter().enumerate() {
                    if job.algorithm >= table.len() {
                        return Err(NetError::protocol(format!(
                            "job {i}: algorithm index {} out of range for a table of {}",
                            job.algorithm,
                            table.len()
                        )));
                    }
                    if !sfo_graph::GraphView::contains_node(graph.as_ref(), job.source) {
                        return Err(NetError::protocol(format!(
                            "job {i}: source {} out of bounds for a {}-node snapshot",
                            job.source,
                            graph.node_count()
                        )));
                    }
                }
                let table = Arc::new(table);
                Ok(run_queries_offset(
                    &state.pool,
                    graph,
                    &table,
                    batch,
                    *seed,
                    index_offset,
                ))
            }
            BatchRequest::SweepRange {
                seed,
                start,
                end,
                searches_per_point,
                ttls,
                search,
            } => {
                let start = usize::try_from(*start)
                    .map_err(|_| NetError::protocol("range start exceeds usize"))?;
                let end = usize::try_from(*end)
                    .map_err(|_| NetError::protocol("range end exceeds usize"))?;
                let searches = usize::try_from(*searches_per_point)
                    .map_err(|_| NetError::protocol("searches_per_point exceeds usize"))?;
                let total = ttls
                    .len()
                    .checked_mul(searches)
                    .ok_or_else(|| NetError::protocol("sweep grid size overflows usize"))?;
                if start > end || end > total {
                    return Err(NetError::protocol(format!(
                        "job range {start}..{end} out of bounds for a grid of {total} jobs"
                    )));
                }
                match search.build_for::<ShardedCsr>(m) {
                    Ok(BuiltSearch::Algorithm(algorithm)) => Ok(batched_ttl_sweep_range(
                        &state.pool,
                        graph,
                        algorithm,
                        ttls,
                        searches,
                        *seed,
                        start,
                        end,
                    )),
                    Ok(BuiltSearch::RwNormalizedToNf { k_min }) => {
                        Ok(batched_rw_normalized_to_nf_range(
                            &state.pool,
                            graph,
                            k_min,
                            ttls,
                            searches,
                            *seed,
                            start,
                            end,
                        ))
                    }
                    Err(e) => Err(NetError::protocol(format!("search does not build: {e}"))),
                }
            }
        }
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(NetError::protocol(format!(
                "batch execution panicked: {message}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crate::message::{recv_message, TYPE_LOAD_SHARD};
    use sfo_engine::{placed_start, PlacedAlgorithm};
    use sfo_graph::generators::ring_graph;
    use sfo_graph::NodeId;
    use std::io::Write;

    /// Writes a 40-node ring snapshot (with provenance) into a fresh temp dir and
    /// returns its path.
    fn snapshot_fixture(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("sfo-serve-test-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ring.sfos");
        let file = SnapshotFile {
            csr: ring_graph(40, 2).unwrap().freeze(),
            shards: None,
            provenance: Some(Provenance {
                label: format!("serve-test-{tag}"),
                m: 2,
                cutoff: None,
                seed: 7,
                realization: 0,
                sweep_seed: 11,
                origin: None,
            }),
        };
        file.save(&path).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn serve(
        path: &str,
        shard_index: Option<usize>,
        shard_count: usize,
    ) -> (WorkerServerHandle, Arc<Registry>) {
        let server = WorkerServer::bind(&ServeConfig {
            snapshot_path: path.to_string(),
            listen: "127.0.0.1:0".to_string(),
            engine_workers: 1,
            shard_count,
            shard_index,
            mmap: false,
            queue_bound: 0,
        })
        .unwrap();
        let metrics = Arc::clone(server.metrics());
        (server.spawn(), metrics)
    }

    fn connect(addr: &str) -> (NetStream, Hello) {
        let mut stream = NetStream::connect(addr).unwrap();
        let Message::Hello(hello) = recv_message(&mut stream).unwrap() else {
            panic!("expected a Hello on connect");
        };
        (stream, hello)
    }

    #[test]
    fn decode_errors_attribute_to_their_own_connection_and_payload_errors_are_survivable() {
        let path = snapshot_fixture("decode");
        let (handle, metrics) = serve(&path, None, 1);
        // Connection 1: a checksummed frame of an unknown type. The stream stays
        // aligned, so the connection must answer an Error and keep serving.
        let (mut first, _) = connect(handle.addr());
        first.write_all(&encode_frame(999, b"")).unwrap();
        first.flush().unwrap();
        assert!(matches!(
            recv_message(&mut first).unwrap(),
            Message::Error { .. }
        ));
        send_message(&mut first, &Message::StatsRequest).unwrap();
        assert!(matches!(
            recv_message(&mut first).unwrap(),
            Message::StatsReport(_)
        ));
        // Connection 2: a well-framed LoadShard whose payload runs short. Also a
        // full frame — also survivable, and attributed to connection 2, not 1.
        let (mut second, _) = connect(handle.addr());
        second
            .write_all(&encode_frame(TYPE_LOAD_SHARD, &[0u8; 4]))
            .unwrap();
        second.flush().unwrap();
        assert!(matches!(
            recv_message(&mut second).unwrap(),
            Message::Error { .. }
        ));
        send_message(&mut second, &Message::StatsRequest).unwrap();
        assert!(matches!(
            recv_message(&mut second).unwrap(),
            Message::StatsReport(_)
        ));
        let snapshot = metrics.snapshot();
        let counter = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("net.decode_errors"), 2);
        // The regression: each error lands on its own connection's counter instead
        // of both piling onto whichever peer label the handler saw first.
        assert_eq!(counter("net.decode_errors.conn.1"), 1);
        assert_eq!(counter("net.decode_errors.conn.2"), 1);
        // A desyncing error (bad magic) still drops the connection.
        let (mut third, _) = connect(handle.addr());
        third.write_all(b"HTTP/1.1 GET /").unwrap();
        third.flush().unwrap();
        assert!(matches!(
            recv_message(&mut third).unwrap(),
            Message::Error { .. }
        ));
        assert!(matches!(
            recv_message(&mut third),
            Err(NetError::Truncated { section: "header" }) | Err(NetError::Io { .. })
        ));
        handle.stop();
    }

    #[test]
    fn a_pinned_shard_server_admits_only_its_own_rows() {
        let path = snapshot_fixture("shard");
        // 40 nodes, 3 shards: shard 1 owns 14..27.
        let (handle, metrics) = serve(&path, Some(1), 3);
        let (mut stream, hello) = connect(handle.addr());
        assert_eq!(hello.shard_index, 1);
        assert_eq!(hello.shard_count, 3);
        assert_eq!(hello.node_count, 40);

        // Whole batches are refused with a typed error naming the shard.
        send_message(
            &mut stream,
            &Message::SubmitBatch(BatchRequest::SweepRange {
                seed: 1,
                start: 0,
                end: 1,
                searches_per_point: 1,
                ttls: vec![1],
                search: sfo_scenario::SearchSpec::Flooding,
            }),
        )
        .unwrap();
        let Message::Error { message } = recv_message(&mut stream).unwrap() else {
            panic!("a shard host must refuse SubmitBatch");
        };
        assert!(message.contains("shard 1 of 3"), "got: {message}");

        // A frontier whose cursor it owns advances; a deep ring flood from node 20
        // must eventually leave shard 1's rows.
        let frontier = placed_start(PlacedAlgorithm::Flooding, NodeId::new(20), 12, [1, 2, 3, 4]);
        send_message(
            &mut stream,
            &Message::ForwardFrontier {
                identity: hello.identity,
                state: frontier.clone(),
            },
        )
        .unwrap();
        let Message::FrontierResult(FrontierResult::Continue(next)) =
            recv_message(&mut stream).unwrap()
        else {
            panic!("a deep flood from inside shard 1 must forward");
        };
        let cursor = next.cursor().unwrap() as usize;
        assert!(
            !(14..27).contains(&cursor),
            "forwarded cursor {cursor} is owned"
        );

        // That same forwarded frontier is refused here — its cursor lives elsewhere.
        send_message(
            &mut stream,
            &Message::ForwardFrontier {
                identity: hello.identity,
                state: next,
            },
        )
        .unwrap();
        let Message::Error { message } = recv_message(&mut stream).unwrap() else {
            panic!("a foreign cursor must be refused");
        };
        assert!(message.contains("not owned"), "got: {message}");

        // Wrong snapshot identity: refused before any traversal.
        send_message(
            &mut stream,
            &Message::ForwardFrontier {
                identity: hello.identity ^ 1,
                state: frontier,
            },
        )
        .unwrap();
        assert!(matches!(
            recv_message(&mut stream).unwrap(),
            Message::Error { .. }
        ));

        let snapshot = metrics.snapshot();
        let served = snapshot
            .counters
            .iter()
            .find(|(n, _)| n == "placed.frontiers_served")
            .map(|(_, v)| *v);
        assert_eq!(served, Some(1));
        handle.stop();
    }

    #[test]
    fn load_shard_installs_a_slice_and_a_whole_store_finishes_any_frontier() {
        let path = snapshot_fixture("loadshard");
        let (handle, _metrics) = serve(&path, None, 1);
        let (mut stream, hello) = connect(handle.addr());
        assert_eq!(hello.shard_index, WHOLE_SNAPSHOT);

        // A whole-snapshot store owns every row: any frontier completes in one hop.
        let frontier = placed_start(PlacedAlgorithm::Flooding, NodeId::new(5), 3, [9, 8, 7, 6]);
        send_message(
            &mut stream,
            &Message::ForwardFrontier {
                identity: hello.identity,
                state: frontier,
            },
        )
        .unwrap();
        let Message::FrontierResult(FrontierResult::Done(outcome)) =
            recv_message(&mut stream).unwrap()
        else {
            panic!("a whole store must finish the frontier");
        };
        assert!(outcome.messages > 0);

        // Ship shard 2 of 4 over the wire; the worker re-announces as that shard.
        let csr = ring_graph(40, 2).unwrap().freeze();
        let payload = crate::placed::shard_payload(&csr, hello.identity, 4, 2);
        send_message(&mut stream, &Message::LoadShard(payload)).unwrap();
        let Message::Hello(reannounced) = recv_message(&mut stream).unwrap() else {
            panic!("LoadShard must answer with a fresh Hello");
        };
        assert_eq!(reannounced.shard_index, 2);
        assert_eq!(reannounced.shard_count, 4);
        assert_eq!(reannounced.identity, hello.identity);

        // The connection now serves shard rows only.
        let foreign = placed_start(PlacedAlgorithm::Flooding, NodeId::new(0), 2, [1, 1, 1, 1]);
        send_message(
            &mut stream,
            &Message::ForwardFrontier {
                identity: hello.identity,
                state: foreign,
            },
        )
        .unwrap();
        assert!(matches!(
            recv_message(&mut stream).unwrap(),
            Message::Error { .. }
        ));
        handle.stop();
    }

    #[test]
    fn a_full_pending_queue_sheds_batches_without_killing_the_connection() {
        let path = snapshot_fixture("shed");
        let server = WorkerServer::bind(&ServeConfig {
            snapshot_path: path,
            listen: "127.0.0.1:0".to_string(),
            engine_workers: 1,
            shard_count: 1,
            shard_index: None,
            mmap: false,
            queue_bound: 1,
        })
        .unwrap();
        let handle = server.spawn();
        let (mut stream, _) = connect(handle.addr());
        // Pipeline six sizeable batches without reading a single reply: with a bound
        // of one, batches that arrive while an admitted one executes are shed, in
        // order, and the connection keeps serving.
        let batch = Message::SubmitBatch(BatchRequest::SweepRange {
            seed: 5,
            start: 0,
            end: 20_000,
            searches_per_point: 20_000,
            ttls: vec![6],
            search: sfo_scenario::SearchSpec::Flooding,
        });
        for _ in 0..6 {
            send_message(&mut stream, &batch).unwrap();
        }
        let mut served = 0u64;
        let mut shed = 0u64;
        for _ in 0..6 {
            match recv_message(&mut stream).unwrap() {
                Message::BatchResult { outcomes } => {
                    assert_eq!(outcomes.len(), 20_000);
                    served += 1;
                }
                Message::Overloaded { queued, limit } => {
                    assert_eq!(limit, 1);
                    assert!(queued >= 1);
                    shed += 1;
                }
                other => panic!("expected BatchResult or Overloaded, got {other:?}"),
            }
        }
        // Every request is answered: served plus shed reconciles with sent.
        assert_eq!(served + shed, 6);
        assert!(served >= 1, "the first admitted batch must execute");
        assert!(
            shed >= 1,
            "six pipelined batches against a bound of 1 must shed"
        );
        // The connection stays usable after overload, and the counters agree.
        send_message(&mut stream, &Message::StatsRequest).unwrap();
        let Message::StatsReport(snapshot) = recv_message(&mut stream).unwrap() else {
            panic!("stats must still answer after sheds");
        };
        let counter = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("net.shed_total"), shed);
        let depth = snapshot
            .histograms
            .iter()
            .find(|(n, _)| n == "net.queue_depth")
            .map(|(_, h)| h.clone())
            .expect("admissions must record queue depth");
        assert_eq!(depth.count, served);
        assert_eq!(depth.max, 1, "a bound of 1 admits at depth 1 only");
        handle.stop();
    }

    #[test]
    fn a_pinned_server_refuses_foreign_shard_shipments() {
        let path = snapshot_fixture("pin");
        let (handle, _metrics) = serve(&path, Some(0), 2);
        let (mut stream, hello) = connect(handle.addr());
        let csr = ring_graph(40, 2).unwrap().freeze();
        // Wrong shard index for the pin.
        send_message(
            &mut stream,
            &Message::LoadShard(crate::placed::shard_payload(&csr, hello.identity, 2, 1)),
        )
        .unwrap();
        let Message::Error { message } = recv_message(&mut stream).unwrap() else {
            panic!("a pinned server must refuse a foreign shard");
        };
        assert!(message.contains("pinned to shard 0"), "got: {message}");
        // Wrong identity for the pin.
        send_message(
            &mut stream,
            &Message::LoadShard(crate::placed::shard_payload(&csr, hello.identity ^ 7, 2, 0)),
        )
        .unwrap();
        assert!(matches!(
            recv_message(&mut stream).unwrap(),
            Message::Error { .. }
        ));
        // The right coordinates are accepted (the handshake confirms the pin).
        send_message(
            &mut stream,
            &Message::LoadShard(crate::placed::shard_payload(&csr, hello.identity, 2, 0)),
        )
        .unwrap();
        let Message::Hello(confirmed) = recv_message(&mut stream).unwrap() else {
            panic!("the pinned shard's own coordinates must be accepted");
        };
        assert_eq!(confirmed.shard_index, 0);
        handle.stop();
    }
}
