//! The client half of a worker connection.

use crate::message::{
    recv_message, send_message, BatchRequest, FrontierResult, Hello, Message, ShardPayload,
};
use crate::stream::NetStream;
use crate::NetError;
use sfo_engine::PlacedState;
use sfo_obs::MetricsSnapshot;
use sfo_search::SearchOutcome;

/// One connection to an `sfo serve` worker.
///
/// Connecting reads the worker's [`Hello`]; every subsequent call is a synchronous
/// request/reply. A worker's `Error` reply surfaces as [`NetError::Remote`] and leaves
/// the connection usable — the protocol never desynchronizes on a refused request.
#[derive(Debug)]
pub struct WorkerClient {
    stream: NetStream,
    addr: String,
    hello: Hello,
}

impl WorkerClient {
    /// Dials `addr` (`host:port` or `unix:/path`) and reads the worker's `Hello`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the dial fails and [`NetError::Protocol`] when the
    /// peer's first message is not a `Hello` (it is not an `sfo serve` worker).
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        let mut stream = NetStream::connect(addr)?;
        let hello = match recv_message(&mut stream)? {
            Message::Hello(hello) => hello,
            Message::Error { message } => return Err(NetError::Remote { message }),
            other => {
                return Err(NetError::protocol(format!(
                    "expected a Hello from {addr}, got {other:?}"
                )))
            }
        };
        Ok(WorkerClient {
            stream,
            addr: addr.to_string(),
            hello,
        })
    }

    /// The worker's address, as dialed.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The worker's most recent announcement (updated by [`WorkerClient::load_snapshot`]).
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// Asks the worker to serve a different snapshot (a path on *its* filesystem) and
    /// returns the fresh announcement.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Remote`] when the worker cannot load the file.
    pub fn load_snapshot(&mut self, path: &str) -> Result<Hello, NetError> {
        send_message(
            &mut self.stream,
            &Message::LoadSnapshot {
                path: path.to_string(),
            },
        )?;
        match recv_message(&mut self.stream)? {
            Message::Hello(hello) => {
                self.hello = hello;
                Ok(hello)
            }
            Message::Error { message } => Err(NetError::Remote { message }),
            other => Err(NetError::protocol(format!(
                "expected a Hello after LoadSnapshot, got {other:?}"
            ))),
        }
    }

    /// Ships one placed shard to the worker and returns the fresh announcement — the
    /// worker now serves those rows (and only those) to `ForwardFrontier` requests.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Remote`] when the worker refuses the shard (it is pinned
    /// to different placement coordinates).
    pub fn load_shard(&mut self, payload: ShardPayload) -> Result<Hello, NetError> {
        send_message(&mut self.stream, &Message::LoadShard(payload))?;
        match recv_message(&mut self.stream)? {
            Message::Hello(hello) => {
                self.hello = hello;
                Ok(hello)
            }
            Message::Error { message } => Err(NetError::Remote { message }),
            other => Err(NetError::protocol(format!(
                "expected a Hello after LoadShard, got {other:?}"
            ))),
        }
    }

    /// Forwards one suspended placed search to the worker and returns how far it got:
    /// the finished outcome, or the re-suspended state to route onward.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Remote`] when the worker refuses the frontier (wrong
    /// snapshot identity, out-of-range fields, or a cursor it does not own).
    pub fn forward_frontier(
        &mut self,
        identity: u64,
        state: PlacedState,
    ) -> Result<FrontierResult, NetError> {
        send_message(
            &mut self.stream,
            &Message::ForwardFrontier { identity, state },
        )?;
        match recv_message(&mut self.stream)? {
            Message::FrontierResult(result) => Ok(result),
            Message::Error { message } => Err(NetError::Remote { message }),
            other => Err(NetError::protocol(format!(
                "expected a FrontierResult, got {other:?}"
            ))),
        }
    }

    /// Submits one batch and returns its outcomes in job order.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Remote`] when the worker refuses the request and
    /// [`NetError::Overloaded`] when the worker sheds it (pending-batch queue full);
    /// both leave the connection usable.
    pub fn submit(&mut self, request: &BatchRequest) -> Result<Vec<SearchOutcome>, NetError> {
        send_message(&mut self.stream, &Message::SubmitBatch(request.clone()))?;
        match recv_message(&mut self.stream)? {
            Message::BatchResult { outcomes } => Ok(outcomes),
            Message::Overloaded { queued, limit } => Err(NetError::Overloaded { queued, limit }),
            Message::Error { message } => Err(NetError::Remote { message }),
            other => Err(NetError::protocol(format!(
                "expected a BatchResult, got {other:?}"
            ))),
        }
    }

    /// Polls the worker's telemetry: counters, latency histograms, and phase timings
    /// accumulated since the daemon started — the wire behind `sfo stats <addr>`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Remote`] when the worker refuses the request (an older
    /// worker answers `Error` and the connection stays usable).
    pub fn stats(&mut self) -> Result<MetricsSnapshot, NetError> {
        send_message(&mut self.stream, &Message::StatsRequest)?;
        match recv_message(&mut self.stream)? {
            Message::StatsReport(snapshot) => Ok(snapshot),
            Message::Error { message } => Err(NetError::Remote { message }),
            other => Err(NetError::protocol(format!(
                "expected a StatsReport, got {other:?}"
            ))),
        }
    }
}
