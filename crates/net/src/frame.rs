//! The `SFNF` frame layer: versioned, length-prefixed, checksummed message envelopes.
//!
//! Every message on an `sfo-net` connection travels inside one frame, hand-rolled in
//! the same little-endian style as the `SFOS` snapshot container (the full byte layout
//! is documented in `docs/FORMATS.md`):
//!
//! | offset      | size | field |
//! |------------:|-----:|-------|
//! | 0           | 4    | magic `"SFNF"` |
//! | 4           | 2    | protocol version (`u16`, = [`PROTOCOL_VERSION`]) |
//! | 6           | 2    | message type (`u16`, see [`crate::message::Message`]) |
//! | 8           | 4    | payload length (`u32`, at most [`MAX_PAYLOAD_LEN`]) |
//! | 12          | …    | payload |
//! | 12 + length | 8    | FNV-1a 64 checksum of every preceding frame byte |
//!
//! Readers are strict: wrong magic, unknown versions, truncation mid-frame, checksum
//! mismatches, and oversized declared lengths are typed [`NetError`]s, never panics —
//! and the length bound is enforced *before* the payload allocation, so a corrupt or
//! hostile header cannot request gigabytes. The checksum guards against stream
//! desynchronization and bit rot, which is what a trusted-cluster work protocol needs
//! (it is not an authentication mechanism; run the daemon inside the trust boundary).

use crate::NetError;
use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"SFNF";

/// The protocol version this build speaks and the only one it accepts.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload length (64 MiB).
///
/// Large enough for a `BatchResult` of ~4 million outcomes — far beyond a sensible
/// batch slice — while bounding what a corrupt length field can make a reader allocate.
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Fixed-size prefix of a frame before the payload.
pub const FRAME_HEADER_LEN: usize = 12;

/// Size of the trailing checksum.
pub const FRAME_TRAILER_LEN: usize = 8;

/// The frame trailer checksum is byte-for-byte the `SFOS` container's: the same
/// function, shared (not copied) from the snapshot codec so the two formats cannot
/// drift apart.
pub use sfo_graph::snapshot::{fnv1a64, fnv1a64_update};

/// Encodes one frame — header, payload, trailer — to its wire bytes.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_PAYLOAD_LEN`]; writers build payloads, so an
/// oversized one is a programming error on this side of the wire, not bad input.
pub fn encode_frame(message_type: u16, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN as usize,
        "frame payload of {} bytes exceeds the {MAX_PAYLOAD_LEN}-byte protocol limit",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&message_type.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Writes one frame to `writer` and flushes it.
///
/// # Errors
///
/// Returns [`NetError::Io`] when the underlying write fails.
pub fn write_frame(
    writer: &mut impl Write,
    message_type: u16,
    payload: &[u8],
) -> Result<(), NetError> {
    let bytes = encode_frame(message_type, payload);
    writer
        .write_all(&bytes)
        .and_then(|()| writer.flush())
        .map_err(|e| NetError::io("write frame", &e))
}

/// Reads one complete frame from `reader`, verifying magic, version, length bound, and
/// checksum, and returns `(message type, payload)`.
///
/// A clean end-of-stream *before the first header byte* is reported as
/// `Truncated { section: "header" }`; callers that treat connection close as a normal
/// event (the serving daemon) check for that variant.
///
/// # Errors
///
/// Every decoding failure is a typed [`NetError`]; see the module docs.
pub fn read_frame(reader: &mut impl Read) -> Result<(u16, Vec<u8>), NetError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    read_exact(reader, &mut header, "header")?;
    let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(NetError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(NetError::UnsupportedVersion { found: version });
    }
    let message_type = u16::from_le_bytes(header[6..8].try_into().expect("2 bytes"));
    let declared = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    // The bound comes before the allocation: this is the whole point of declaring the
    // length in a fixed-size header.
    if declared > MAX_PAYLOAD_LEN {
        return Err(NetError::Oversized {
            declared: u64::from(declared),
            max: u64::from(MAX_PAYLOAD_LEN),
        });
    }
    let mut payload = vec![0u8; declared as usize];
    read_exact(reader, &mut payload, "payload")?;
    let mut trailer = [0u8; FRAME_TRAILER_LEN];
    read_exact(reader, &mut trailer, "trailer")?;
    let stored = u64::from_le_bytes(trailer);
    // Stream the fold over the two sections — no concatenation copy on the read path.
    let computed = fnv1a64_update(fnv1a64(&header), &payload);
    if stored != computed {
        return Err(NetError::ChecksumMismatch { stored, computed });
    }
    Ok((message_type, payload))
}

fn read_exact(
    reader: &mut impl Read,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), NetError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            NetError::Truncated { section }
        } else {
            NetError::io(format!("read frame {section}"), &e)
        }
    })
}

// ---------------------------------------------------------------------------------------
// Payload primitives: a strict little-endian reader/writer pair shared by every message
// codec in `crate::message`.

/// Appends a length-prefixed UTF-8 string (`u32` length, then the bytes).
pub(crate) fn put_str(out: &mut Vec<u8>, value: &str) {
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value.as_bytes());
}

/// A strict cursor over a fully-read payload buffer.
///
/// Every inner length is checked against the bytes actually present before any slice or
/// allocation, so a payload cannot lie its way into an out-of-bounds read or an
/// attacker-sized buffer; [`PayloadReader::finish`] rejects trailing bytes, so a
/// payload is either exactly its message or corrupt.
pub(crate) struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, len: usize, section: &'static str) -> Result<&'a [u8], NetError> {
        if self.remaining() < len {
            return Err(NetError::Truncated { section });
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, section: &'static str) -> Result<u8, NetError> {
        Ok(self.take(1, section)?[0])
    }

    pub(crate) fn u32(&mut self, section: &'static str) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(
            self.take(4, section)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self, section: &'static str) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(
            self.take(8, section)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn str(&mut self, section: &'static str) -> Result<&'a str, NetError> {
        let len = self.u32(section)? as usize;
        let bytes = self.take(len, section)?;
        std::str::from_utf8(bytes)
            .map_err(|_| NetError::corrupt(format!("{section}: string is not valid UTF-8")))
    }

    /// Declares that `count` records of `record_size` bytes each follow, bounding the
    /// product by the bytes actually present *before* the caller allocates a collection
    /// of `count` entries.
    pub(crate) fn expect_records(
        &mut self,
        count: usize,
        record_size: usize,
        section: &'static str,
    ) -> Result<(), NetError> {
        let needed = count.checked_mul(record_size);
        match needed {
            Some(needed) if needed <= self.remaining() => Ok(()),
            _ => Err(NetError::Truncated { section }),
        }
    }

    pub(crate) fn finish(self, context: &'static str) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(NetError::corrupt(format!(
                "{context}: {} undeclared trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for (message_type, payload) in [
            (1u16, Vec::new()),
            (2, vec![0u8; 1]),
            (3, (0..=255u8).collect::<Vec<u8>>()),
        ] {
            let bytes = encode_frame(message_type, &payload);
            let mut cursor = std::io::Cursor::new(&bytes);
            let (got_type, got_payload) = read_frame(&mut cursor).unwrap();
            assert_eq!(got_type, message_type);
            assert_eq!(got_payload, payload);
            assert_eq!(cursor.position() as usize, bytes.len());
        }
    }

    #[test]
    fn consecutive_frames_stream_cleanly() {
        let mut stream = encode_frame(1, b"first");
        stream.extend_from_slice(&encode_frame(2, b"second"));
        let mut cursor = std::io::Cursor::new(&stream);
        assert_eq!(read_frame(&mut cursor).unwrap(), (1, b"first".to_vec()));
        assert_eq!(read_frame(&mut cursor).unwrap(), (2, b"second".to_vec()));
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Truncated { section: "header" })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_frame(1, b"x");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(NetError::BadMagic { found }) if found[0] == b'X'
        ));
        let mut bytes = encode_frame(1, b"x");
        bytes[4] = 99;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(NetError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn oversized_declared_lengths_fail_before_allocation() {
        // A header declaring u32::MAX bytes with nothing behind it: the reader must
        // reject on the declared bound, not attempt a 4 GiB read.
        let mut bytes = encode_frame(1, b"");
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(NetError::Oversized { declared, .. }) if declared == u64::from(u32::MAX)
        ));
    }

    #[test]
    fn truncation_in_every_section_is_typed() {
        let bytes = encode_frame(3, b"payload!");
        for (cut, section) in [
            (4usize, "header"),
            (14, "payload"),
            (bytes.len() - 2, "trailer"),
        ] {
            let got = read_frame(&mut &bytes[..cut]);
            assert!(
                matches!(got, Err(NetError::Truncated { section: s }) if s == section),
                "cut at {cut}: {got:?}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_is_caught_by_the_checksum() {
        let bytes = encode_frame(4, b"integrity matters");
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x20;
            assert!(
                read_frame(&mut corrupted.as_slice()).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
    }

    #[test]
    fn payload_reader_bounds_every_access() {
        let mut out = Vec::new();
        out.extend_from_slice(&7u32.to_le_bytes());
        put_str(&mut out, "hello");
        let mut reader = PayloadReader::new(&out);
        assert_eq!(reader.u32("n").unwrap(), 7);
        assert_eq!(reader.str("s").unwrap(), "hello");
        reader.finish("test").unwrap();

        // A string length lying about the buffer is truncation, not a slice panic.
        let mut lying = Vec::new();
        lying.extend_from_slice(&100u32.to_le_bytes());
        lying.extend_from_slice(b"short");
        assert!(matches!(
            PayloadReader::new(&lying).str("s"),
            Err(NetError::Truncated { .. })
        ));

        // Trailing bytes are corrupt, and record counts are bounded before allocation.
        let mut trailing = PayloadReader::new(&[1, 2, 3]);
        assert!(trailing
            .expect_records(usize::MAX / 2, 12, "records")
            .is_err());
        let _ = trailing.u8("b").unwrap();
        assert!(trailing.finish("test").is_err());
    }
}
