//! The socket transport of the live membership protocol: `sfo overlay` daemons.
//!
//! [`OverlayNode`] runs one `sfo-overlay` [`Peer`] over real sockets. Each of the five
//! protocol messages travels as its own SFNF frame type ([`crate::message::TYPE_JOIN`]
//! through [`crate::message::TYPE_LEAVE`]), one frame per connection: a send dials the
//! target, writes the frame, and hangs up, so a peer needs no connection table and an
//! unreachable target is simply a dropped message — exactly the loss model the
//! protocol's failure detector is built for.
//!
//! The daemon is intentionally *not* deterministic across runs — wall-clock ticks and
//! socket scheduling order arrivals — but it executes the byte-for-byte same state
//! machine the simulated transport drives, so every protocol-level test of
//! `sfo-overlay` covers this transport too. Deterministic topology growth stays the
//! job of `DynamicsSpec::Live` in `sfo-scenario`.

use crate::message::{recv_message, send_message, Message};
use crate::stream::{NetListener, NetStream};
use crate::NetError;
use sfo_overlay::protocol::Peer;
use sfo_overlay::transport::OverlayTransport;

pub use sfo_overlay::protocol::{OverlayMessage, PeerRef, ProtocolConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Configuration of one `sfo overlay` daemon.
#[derive(Debug, Clone)]
pub struct OverlayNodeConfig {
    /// Listen address: `host:port` (port 0 picks a free one) or `unix:/path`.
    pub listen: String,
    /// This peer's stable identifier; must be unique across the overlay.
    pub id: u64,
    /// Seed of the peer's protocol RNG (walk forwarding, shuffle sampling, ...).
    pub seed: u64,
    /// Protocol parameters; every node of an overlay must run the same ones.
    pub protocol: ProtocolConfig,
    /// The bootstrap contact to join through, or `None` to start a new overlay.
    pub bootstrap: Option<PeerRef>,
    /// Milliseconds per protocol tick; timeouts and intervals count these ticks.
    pub tick_millis: u64,
}

/// The receive half of the socket transport: an accept loop fans frames from any
/// number of one-shot connections into one shared inbox, which `recv` drains.
struct SocketTransport {
    inbox: Arc<Mutex<Vec<OverlayMessage>>>,
}

impl OverlayTransport for SocketTransport {
    fn send(&mut self, to: &PeerRef, msg: OverlayMessage) -> sfo_overlay::Result<()> {
        // Best effort by design: a dead or unreachable peer is exactly what probes
        // and redirects handle, so dial and write failures are dropped, not errors.
        if let Ok(mut stream) = NetStream::connect(&to.addr) {
            let _ = send_message(&mut stream, &Message::Overlay(msg));
        }
        Ok(())
    }

    fn recv(&mut self) -> sfo_overlay::Result<Vec<OverlayMessage>> {
        Ok(std::mem::take(&mut *self.inbox.lock().expect("inbox lock")))
    }
}

/// A bound, not-yet-running overlay daemon; [`OverlayNode::run`] starts the protocol.
pub struct OverlayNode {
    listener: NetListener,
    me: PeerRef,
    peer: Peer,
    bootstrap: Option<PeerRef>,
    tick_millis: u64,
}

impl OverlayNode {
    /// Binds the listen address and builds the peer state machine.
    ///
    /// The node's [`PeerRef`] advertises the *bound* address (so `host:0` works), and
    /// its protocol RNG is seeded from `config.seed` alone — the daemon trades the
    /// simulated transport's stream discipline for operator-supplied seeds.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the bind fails and [`NetError::Protocol`] when
    /// the protocol configuration does not validate.
    pub fn bind(config: &OverlayNodeConfig) -> Result<Self, NetError> {
        config
            .protocol
            .validate()
            .map_err(|e| NetError::protocol(e.to_string()))?;
        let listener = NetListener::bind(&config.listen)?;
        let me = PeerRef::new(config.id, listener.local_addr());
        let rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(config.seed);
        let peer = Peer::new(me.clone(), config.protocol.clone(), rng);
        Ok(OverlayNode {
            listener,
            me,
            peer,
            bootstrap: config.bootstrap.clone(),
            tick_millis: config.tick_millis.max(1),
        })
    }

    /// The bound address other nodes dial — how callers learn the real port after
    /// binding `host:0`.
    pub fn local_addr(&self) -> String {
        self.me.addr.clone()
    }

    /// This node's peer reference (id plus bound address).
    pub fn me(&self) -> &PeerRef {
        &self.me
    }

    /// Runs the daemon until the handle stops it (or forever, from the CLI).
    ///
    /// Consumes the node: the accept loop moves onto its own thread, and the protocol
    /// loop pumps the peer once per tick on this one.
    pub fn run(self) -> OverlayNodeHandle {
        let inbox = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(Mutex::new(Vec::new()));

        let accept_inbox = Arc::clone(&inbox);
        let accept_stop = Arc::clone(&stop);
        let addr = self.me.addr.clone();
        let accept = std::thread::Builder::new()
            .name("sfo-overlay-accept".to_string())
            .spawn(move || accept_loop(self.listener, &accept_inbox, &accept_stop))
            .expect("spawning overlay accept thread");

        let mut peer = self.peer;
        let mut transport = SocketTransport {
            inbox: Arc::clone(&inbox),
        };
        let loop_stop = Arc::clone(&stop);
        let loop_active = Arc::clone(&active);
        let tick_millis = self.tick_millis;
        let bootstrap = self.bootstrap;
        let pump = std::thread::Builder::new()
            .name("sfo-overlay-pump".to_string())
            .spawn(move || {
                if let Some(contact) = bootstrap {
                    let mut out = Vec::new();
                    peer.start_join(&contact, &mut out);
                    for (to, msg) in out {
                        let _ = transport.send(&to, msg);
                    }
                }
                let mut now = 0u64;
                while !loop_stop.load(Ordering::SeqCst) {
                    // The transport never fails, so neither does the pump.
                    let _ = peer.pump(now, &mut transport);
                    *loop_active.lock().expect("active lock") = peer.active().to_vec();
                    now += 1;
                    std::thread::sleep(std::time::Duration::from_millis(tick_millis));
                }
                // Leave gracefully so neighbors repair immediately instead of waiting
                // out the failure detector.
                let mut out = Vec::new();
                peer.leave(&mut out);
                for (to, msg) in out {
                    let _ = transport.send(&to, msg);
                }
            })
            .expect("spawning overlay pump thread");

        OverlayNodeHandle {
            addr,
            active,
            stop,
            accept,
            pump,
        }
    }
}

/// Accepts one-shot connections and drains each into the shared inbox.
fn accept_loop(listener: NetListener, inbox: &Mutex<Vec<OverlayMessage>>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok(mut stream) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // A connection carries whole frames until the sender hangs up;
                // anything that is not an overlay frame (or does not decode) is
                // dropped with the connection — lossy transport, strict codec.
                while let Ok(message) = recv_message(&mut stream) {
                    if let Message::Overlay(overlay) = message {
                        inbox.lock().expect("inbox lock").push(overlay);
                    }
                }
            }
            Err(_) if stop.load(Ordering::SeqCst) => return,
            Err(e) => eprintln!("sfo overlay: accept failed: {e}"),
        }
    }
}

/// Stop handle of a running [`OverlayNode`].
pub struct OverlayNodeHandle {
    addr: String,
    active: Arc<Mutex<Vec<PeerRef>>>,
    stop: Arc<AtomicBool>,
    accept: std::thread::JoinHandle<()>,
    pump: std::thread::JoinHandle<()>,
}

impl OverlayNodeHandle {
    /// The served address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// A snapshot of the node's current active view (its overlay neighbors).
    pub fn active(&self) -> Vec<PeerRef> {
        self.active.lock().expect("active lock").clone()
    }

    /// Stops the protocol loop (sending a graceful `Leave`), then the accept loop.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.pump.join();
        // Unblock the accept call with one throwaway connection; if the dial fails
        // the thread is leaked rather than deadlocking the caller (it holds no work
        // and dies with the process).
        if NetStream::connect(&self.addr).is_ok() {
            let _ = self.accept.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, bootstrap: Option<PeerRef>) -> OverlayNode {
        OverlayNode::bind(&OverlayNodeConfig {
            listen: "127.0.0.1:0".to_string(),
            id,
            seed: 100 + id,
            protocol: ProtocolConfig::small(),
            bootstrap,
            tick_millis: 5,
        })
        .unwrap()
    }

    fn wait_until(deadline_ms: u64, mut check: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(deadline_ms);
        while std::time::Instant::now() < deadline {
            if check() {
                return true;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        false
    }

    #[test]
    fn two_nodes_join_over_sockets_and_leave_cleanly() {
        let seed_node = node(0, None);
        let contact = seed_node.me().clone();
        let seed_handle = seed_node.run();
        let join_handle = node(1, Some(contact)).run();

        // The joiner's bootstrap walk lands on the only peer there is; the direct-link
        // offer wires both sides.
        assert!(
            wait_until(5_000, || {
                join_handle.active().iter().any(|p| p.id == 0)
                    && seed_handle.active().iter().any(|p| p.id == 1)
            }),
            "nodes failed to link over loopback"
        );

        // A graceful stop sends Leave: the survivor drops the departed neighbor.
        join_handle.stop();
        assert!(
            wait_until(5_000, || seed_handle.active().is_empty()),
            "leave was not processed"
        );
        seed_handle.stop();
    }

    #[test]
    fn invalid_protocol_configs_fail_the_bind() {
        let mut protocol = ProtocolConfig::small();
        protocol.active_cap = 0;
        assert!(matches!(
            OverlayNode::bind(&OverlayNodeConfig {
                listen: "127.0.0.1:0".to_string(),
                id: 0,
                seed: 1,
                protocol,
                bootstrap: None,
                tick_millis: 5,
            }),
            Err(NetError::Protocol { .. })
        ));
    }
}
