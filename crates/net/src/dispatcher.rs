//! The dispatcher: splits one job grid across worker processes and merges the results.
//!
//! [`RemoteDispatcher`] is `sfo-net`'s implementation of the scenario layer's
//! [`RemoteSweepExecutor`] seam — the piece [`remote_runner`] installs into a
//! [`ScenarioRunner`] so that a spec with `sweep.workers` set executes against
//! `sfo serve` daemons. The split is mechanical: `W` workers get `W` contiguous,
//! near-equal ranges of the `ttls × searches` grid (the same partition rule as the
//! engine's in-process queues), each worker runs its range with per-job streams keyed
//! by *global* index, and the slices concatenate in index order. Determinism therefore
//! does not depend on the dispatcher at all — any split of the grid yields the same
//! bytes; what the dispatcher adds is the refusal machinery (identity handshake, slice
//! length checks) that turns deployment mistakes into errors instead of wrong data.

use crate::client::WorkerClient;
use crate::message::{BatchRequest, FrontierResult, WHOLE_SNAPSHOT};
use crate::placed::{placed_algorithm, shard_of, shard_payload, sweep_job_state};
use crate::NetError;
use sfo_engine::QueryBatch;
use sfo_graph::snapshot::SnapshotFile;
use sfo_obs::{PhaseTimer, Registry};
use sfo_scenario::{
    RemoteSweepExecutor, RemoteSweepRequest, ScenarioError, ScenarioRunner, SearchSpec,
};
use sfo_search::SearchOutcome;
use std::sync::Arc;

/// Splits `total` jobs into `parts` contiguous near-equal ranges (sizes differ by at
/// most one; earlier ranges take the remainder), skipping empty ranges.
fn split_ranges(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = total / parts;
    let big = total % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < big);
        if len > 0 {
            ranges.push((start, start + len));
        }
        start += len;
    }
    ranges
}

/// Executes [`RemoteSweepRequest`]s against `sfo serve` workers.
#[derive(Debug, Clone, Default)]
pub struct RemoteDispatcher {
    metrics: Option<Arc<Registry>>,
}

impl RemoteDispatcher {
    /// Creates a dispatcher without telemetry.
    pub fn new() -> Self {
        RemoteDispatcher::default()
    }

    /// Creates a dispatcher recording per-worker dispatch latency
    /// (`dispatch.worker_micros`) and slice counts (`dispatch.slices`) into
    /// `registry`. Telemetry observes the dispatch, it never changes the split or the
    /// merged bytes.
    pub fn with_metrics(registry: Arc<Registry>) -> Self {
        RemoteDispatcher {
            metrics: Some(registry),
        }
    }
}

impl RemoteSweepExecutor for RemoteDispatcher {
    fn run_sweep(&self, request: &RemoteSweepRequest) -> Result<Vec<SearchOutcome>, ScenarioError> {
        dispatch_sweep_metered(request, self.metrics.as_deref())
            .map_err(|e| ScenarioError::remote(e.to_string()))
    }
}

/// A [`ScenarioRunner`] with the [`RemoteDispatcher`] installed — behaves exactly like
/// [`ScenarioRunner::new`] for specs without workers, and is what the `sfo` binary uses
/// for every scenario run.
pub fn remote_runner() -> ScenarioRunner {
    ScenarioRunner::new().with_remote(Arc::new(RemoteDispatcher::new()))
}

/// [`remote_runner`] with telemetry installed end to end: the dispatcher's per-worker
/// latency and the runner's phase timings both record into `registry` — the runner
/// behind `--metrics-out` on the CLI. Results are byte-identical to [`remote_runner`].
pub fn remote_runner_with_metrics(registry: Arc<Registry>) -> ScenarioRunner {
    ScenarioRunner::new()
        .with_remote(Arc::new(RemoteDispatcher::with_metrics(Arc::clone(
            &registry,
        ))))
        .with_metrics(registry)
}

/// Connects to `addr` and verifies the worker serves the snapshot `identity` names.
fn connect_verified(addr: &str, identity: u64) -> Result<WorkerClient, NetError> {
    let client = WorkerClient::connect(addr)?;
    let found = client.hello().identity;
    if found != identity {
        return Err(NetError::IdentityMismatch {
            worker: addr.to_string(),
            expected: identity,
            found,
        });
    }
    Ok(client)
}

/// Runs the whole sweep grid of `request` across its workers — one contiguous range
/// each, dispatched concurrently — and returns the outcomes merged in global job order.
///
/// # Errors
///
/// Returns the first failing worker's error (connection, identity mismatch, refusal,
/// or a slice of the wrong length). No partial results are ever returned.
pub fn dispatch_sweep(request: &RemoteSweepRequest) -> Result<Vec<SearchOutcome>, NetError> {
    dispatch_sweep_metered(request, None)
}

/// [`dispatch_sweep`] with optional telemetry (see [`RemoteDispatcher::with_metrics`]).
fn dispatch_sweep_metered(
    request: &RemoteSweepRequest,
    metrics: Option<&Registry>,
) -> Result<Vec<SearchOutcome>, NetError> {
    if request.workers.is_empty() {
        return Err(NetError::protocol("no workers to dispatch to"));
    }
    if request.placed {
        return dispatch_placed(request, metrics);
    }
    let total = request.job_count();
    let ranges = split_ranges(total, request.workers.len());
    let slices = dispatch_slices(
        &request.workers,
        request.identity,
        &ranges,
        metrics,
        |&(start, end)| BatchRequest::SweepRange {
            seed: request.seed,
            start: start as u64,
            end: end as u64,
            searches_per_point: request.searches_per_point as u64,
            ttls: request.ttls.clone(),
            search: request.search.clone(),
        },
    )?;
    Ok(merge(ranges.iter().map(|r| r.1 - r.0), slices))
}

/// Placed execution of one sweep grid: worker `i` holds shard `i` of
/// `workers.len()`, every job is injected at the worker owning its source node, and
/// a traversal needing a foreign row hops between workers as a forwarded frontier.
///
/// Setup first ships each worker exactly its [`crate::placed::shard_range`] slice
/// (cut from the locally-read snapshot file) — or, for a worker already announcing a
/// shard index (`sfo serve --shard`), verifies the announced coordinates and refuses
/// a worker holding the wrong shard. The job loop then routes each suspended state
/// to the owner of its cursor until the search completes. Because a frontier carries
/// the exact serial traversal state (RNG words included), the merged outcomes are
/// byte-identical to the serial oracle for any shard count and any interleaving.
fn dispatch_placed(
    request: &RemoteSweepRequest,
    metrics: Option<&Registry>,
) -> Result<Vec<SearchOutcome>, NetError> {
    let algorithm = placed_algorithm(&request.search, request.m)?;
    let path = &request.snapshot_path;
    let identity = sfo_graph::snapshot::read_identity(path)
        .map_err(|e| NetError::protocol(format!("cannot read {path}: {e}")))?;
    if identity != request.identity {
        return Err(NetError::protocol(format!(
            "{path} hashes to {identity:#018x}, but the scenario names \
             {:#018x}; the dispatcher must read the same realization it places",
            request.identity
        )));
    }
    let csr = SnapshotFile::load(path)
        .map_err(|e| NetError::protocol(format!("cannot read {path}: {e}")))?
        .csr;
    let node_count = csr.node_count();
    if node_count == 0 {
        return Err(NetError::protocol(format!(
            "{path} holds an empty topology"
        )));
    }
    let shard_count = request.workers.len();

    // Placement handshake: every worker must end up holding exactly its shard of
    // this snapshot before any frontier moves.
    for (w, addr) in request.workers.iter().enumerate() {
        let mut client = connect_verified(addr, request.identity)?;
        let hello = *client.hello();
        let confirmed = if hello.shard_index == WHOLE_SNAPSHOT {
            client.load_shard(shard_payload(&csr, request.identity, shard_count, w))?
        } else {
            hello
        };
        if confirmed.shard_index != w as u32 || confirmed.shard_count as usize != shard_count {
            return Err(NetError::protocol(format!(
                "worker {addr} holds shard {} of {}, but this placement needs it to \
                 hold shard {w} of {shard_count}",
                confirmed.shard_index, confirmed.shard_count
            )));
        }
    }

    let total = request.job_count();
    if total == 0 {
        return Ok(Vec::new());
    }
    let searches = request.searches_per_point;
    // Striped across threads (thread t owns jobs ≡ t mod threads); each thread keeps
    // its own connection per shard, opened on first use. The stripe shape is
    // invisible in the results — every job's bytes depend only on its global index.
    let threads = shard_count.min(total).max(1);
    let results: Vec<Result<Vec<(usize, SearchOutcome)>, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut clients: Vec<Option<WorkerClient>> = Vec::new();
                    clients.resize_with(shard_count, || None);
                    let mut slice = Vec::new();
                    for global in (t..total).step_by(threads) {
                        let ttl = request.ttls[global / searches];
                        let mut state =
                            sweep_job_state(algorithm, request.seed, global, ttl, node_count);
                        let outcome = loop {
                            // Route to the owner of the row the search needs
                            // next; a cursor-less (finished-flood) state can
                            // complete anywhere.
                            let shard = state
                                .cursor()
                                .map_or(0, |c| shard_of(c as usize, node_count, shard_count));
                            let client = match &mut clients[shard] {
                                Some(client) => client,
                                slot => slot.insert(connect_verified(
                                    &request.workers[shard],
                                    request.identity,
                                )?),
                            };
                            let timer = PhaseTimer::start();
                            let reply = client.forward_frontier(request.identity, state)?;
                            if let Some(registry) = metrics {
                                timer.observe(&registry.histogram("placed.hop_micros"));
                                registry.counter("placed.frontiers_sent").inc();
                            }
                            match reply {
                                FrontierResult::Done(outcome) => break outcome,
                                FrontierResult::Continue(next) => state = next,
                            }
                        };
                        slice.push((global, outcome));
                    }
                    Ok(slice)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("placed dispatch thread panicked"))
            .collect()
    });
    let mut merged: Vec<Option<SearchOutcome>> = vec![None; total];
    for slice in results {
        for (global, outcome) in slice? {
            merged[global] = Some(outcome);
        }
    }
    merged
        .into_iter()
        .map(|slot| slot.ok_or_else(|| NetError::protocol("placed dispatch lost a job")))
        .collect()
}

/// Runs an explicit [`QueryBatch`] across workers — one contiguous job slice each —
/// and returns the outcomes merged in job order; the remote counterpart of
/// [`sfo_engine::run_queries`] and the same bytes as
/// [`sfo_engine::run_queries_serial`] on the unsplit batch.
///
/// # Errors
///
/// As [`dispatch_sweep`].
pub fn dispatch_queries(
    workers: &[String],
    identity: u64,
    seed: u64,
    algorithms: &[SearchSpec],
    batch: &QueryBatch,
) -> Result<Vec<SearchOutcome>, NetError> {
    if workers.is_empty() {
        return Err(NetError::protocol("no workers to dispatch to"));
    }
    let ranges = split_ranges(batch.len(), workers.len());
    let slices = dispatch_slices(workers, identity, &ranges, None, |&(start, end)| {
        BatchRequest::Queries {
            seed,
            index_offset: start as u64,
            algorithms: algorithms.to_vec(),
            batch: QueryBatch::from_jobs(batch.jobs()[start..end].to_vec()),
        }
    })?;
    Ok(merge(ranges.iter().map(|r| r.1 - r.0), slices))
}

/// Ships one request per range to one worker per range, concurrently, and collects the
/// slices in range order. With `metrics`, each slice's connect-to-reply wall time is
/// recorded as `dispatch.worker_micros` and counted as `dispatch.slices`.
fn dispatch_slices(
    workers: &[String],
    identity: u64,
    ranges: &[(usize, usize)],
    metrics: Option<&Registry>,
    request_for: impl Fn(&(usize, usize)) -> BatchRequest + Sync,
) -> Result<Vec<Vec<SearchOutcome>>, NetError> {
    // More workers than non-empty ranges leaves the tail of the list idle.
    let assignments: Vec<(&String, &(usize, usize))> = workers.iter().zip(ranges).collect();
    let results: Vec<Result<Vec<SearchOutcome>, NetError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .map(|(addr, range)| {
                let request = request_for(range);
                scope.spawn(move || {
                    let timer = PhaseTimer::start();
                    let mut client = connect_verified(addr, identity)?;
                    let outcomes = client.submit(&request)?;
                    if let Some(registry) = metrics {
                        timer.observe(&registry.histogram("dispatch.worker_micros"));
                        registry.counter("dispatch.slices").inc();
                    }
                    let expected = range.1 - range.0;
                    if outcomes.len() != expected {
                        return Err(NetError::protocol(format!(
                            "worker {addr} returned {} outcomes for a {expected}-job slice",
                            outcomes.len()
                        )));
                    }
                    Ok(outcomes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatch thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// Concatenates per-range slices (already validated to their expected lengths) in
/// range order.
fn merge(
    lengths: impl Iterator<Item = usize>,
    slices: Vec<Vec<SearchOutcome>>,
) -> Vec<SearchOutcome> {
    let mut merged = Vec::with_capacity(lengths.sum());
    for slice in slices {
        merged.extend(slice);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_contiguous_near_equal_and_skip_empties() {
        for (total, parts) in [(30usize, 3usize), (31, 3), (2, 5), (0, 4), (7, 1)] {
            let ranges = split_ranges(total, parts);
            let mut cursor = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, cursor);
                assert!(end > start, "empty ranges must be skipped");
                cursor = end;
            }
            assert_eq!(cursor, total);
            if total >= parts {
                assert_eq!(ranges.len(), parts);
                let sizes: Vec<usize> = ranges.iter().map(|r| r.1 - r.0).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn dispatching_to_nobody_is_an_error() {
        let request = RemoteSweepRequest {
            workers: Vec::new(),
            identity: 1,
            seed: 1,
            ttls: vec![1],
            searches_per_point: 1,
            search: SearchSpec::Flooding,
            m: 1,
            placed: false,
            snapshot_path: String::new(),
        };
        assert!(matches!(
            dispatch_sweep(&request),
            Err(NetError::Protocol { .. })
        ));
    }

    #[test]
    fn unreachable_workers_fail_with_io_errors() {
        let request = RemoteSweepRequest {
            // Port 1 is essentially never listening.
            workers: vec!["127.0.0.1:1".to_string()],
            identity: 1,
            seed: 1,
            ttls: vec![1],
            searches_per_point: 2,
            search: SearchSpec::Flooding,
            m: 1,
            placed: false,
            snapshot_path: String::new(),
        };
        assert!(matches!(dispatch_sweep(&request), Err(NetError::Io { .. })));
    }
}
