//! The message vocabulary carried by [`crate::frame`] envelopes.
//!
//! Five messages cover the whole worker conversation, and five more —
//! [`Message::Overlay`], one frame type per [`OverlayMessage`] variant — carry the
//! live membership protocol between `sfo overlay` daemons (byte layouts in
//! `docs/FORMATS.md`):
//!
//! * [`Message::Hello`] — sent by a worker on connect (and after a
//!   [`Message::LoadSnapshot`]): which snapshot it serves, by identity hash, plus its
//!   shape. The dispatcher compares the identity against the scenario's file and
//!   refuses a worker serving the wrong realization.
//! * [`Message::LoadSnapshot`] — asks the worker to load a different `.sfos` file
//!   (a path on the *worker's* filesystem).
//! * [`Message::SubmitBatch`] — a [`BatchRequest`]: either an explicit
//!   [`QueryBatch`] slice or a contiguous range of a TTL sweep grid, both tagged with
//!   the global index information that makes per-job RNG streams split-invariant.
//! * [`Message::BatchResult`] — one [`SearchOutcome`] per job, in job order.
//! * [`Message::Error`] — the worker's typed failure surface; the connection stays
//!   usable afterwards.
//! * [`Message::StatsRequest`] / [`Message::StatsReport`] — the observability pair: a
//!   client (the dispatcher, or `sfo stats` on the CLI) polls a live worker, which
//!   answers with the [`MetricsSnapshot`] of its `sfo-obs` registry — counters plus
//!   log-bucketed histograms, name-sorted, mergeable across workers.
//!
//! Search algorithms travel as their scenario-layer JSON encoding (a length-prefixed
//! string inside the binary payload): the `SearchSpec` codec is already the workspace's
//! one tested vocabulary for naming an algorithm, and reusing it keeps the wire format
//! and the spec files from drifting apart.

use crate::frame::{put_str, PayloadReader};
use crate::NetError;
use sfo_engine::{PlacedAlgorithm, PlacedState, QueryBatch};
use sfo_graph::{CsrSlice, NodeId};
use sfo_obs::{HistogramSnapshot, MetricsSnapshot, BUCKET_COUNT};
use sfo_overlay::protocol::{OverlayMessage, PeerRef};
use sfo_scenario::json::{FromJson, JsonValue, ToJson};
use sfo_scenario::SearchSpec;
use sfo_search::SearchOutcome;

/// Frame type tag of [`Message::Hello`].
pub const TYPE_HELLO: u16 = 1;
/// Frame type tag of [`Message::LoadSnapshot`].
pub const TYPE_LOAD_SNAPSHOT: u16 = 2;
/// Frame type tag of [`Message::SubmitBatch`].
pub const TYPE_SUBMIT_BATCH: u16 = 3;
/// Frame type tag of [`Message::BatchResult`].
pub const TYPE_BATCH_RESULT: u16 = 4;
/// Frame type tag of [`Message::Error`].
pub const TYPE_ERROR: u16 = 5;
/// Frame type tag of [`OverlayMessage::Join`].
pub const TYPE_JOIN: u16 = 6;
/// Frame type tag of [`OverlayMessage::ForwardJoin`].
pub const TYPE_FORWARD_JOIN: u16 = 7;
/// Frame type tag of [`OverlayMessage::Shuffle`].
pub const TYPE_SHUFFLE: u16 = 8;
/// Frame type tag of [`OverlayMessage::Probe`].
pub const TYPE_PROBE: u16 = 9;
/// Frame type tag of [`OverlayMessage::Leave`].
pub const TYPE_LEAVE: u16 = 10;
/// Frame type tag of [`Message::StatsRequest`].
pub const TYPE_STATS_REQUEST: u16 = 11;
/// Frame type tag of [`Message::StatsReport`].
pub const TYPE_STATS_REPORT: u16 = 12;
/// Frame type tag of [`Message::LoadShard`].
pub const TYPE_LOAD_SHARD: u16 = 13;
/// Frame type tag of [`Message::ForwardFrontier`].
pub const TYPE_FORWARD_FRONTIER: u16 = 14;
/// Frame type tag of [`Message::FrontierResult`].
pub const TYPE_FRONTIER_RESULT: u16 = 15;
/// Frame type tag of [`Message::Overloaded`].
pub const TYPE_OVERLOADED: u16 = 16;

/// [`Hello::shard_index`] value of a worker serving the whole snapshot rather than
/// one placed shard.
pub const WHOLE_SNAPSHOT: u32 = u32::MAX;

/// What a worker announces about the snapshot it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Identity hash of the served snapshot file
    /// ([`sfo_graph::snapshot::read_identity`]).
    pub identity: u64,
    /// Nodes in the served topology.
    pub node_count: u64,
    /// Undirected edges in the served topology.
    pub edge_count: u64,
    /// Shards the worker's store is partitioned into.
    pub shard_count: u32,
    /// Worker threads in the serving engine pool.
    pub engine_workers: u32,
    /// Which placed shard the worker holds, or [`WHOLE_SNAPSHOT`] when it serves the
    /// entire topology. A placed dispatcher refuses a worker whose announced shard is
    /// not the one its placement assigns it.
    pub shard_index: u32,
}

/// One placed shard as shipped to its host: the slice (range, rebased offsets,
/// contiguous target rows, global shape) plus the identity hash and placement
/// coordinates that let the host refuse a shipment for the wrong snapshot or slot.
///
/// Boundary tables are deliberately *not* shipped: under the canonical contiguous
/// partition, ownership of any node is pure arithmetic on
/// `(node, node_count, shard_count)` (see [`crate::placed::shard_range`]), so the
/// slice alone is enough to route.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPayload {
    /// Identity hash of the snapshot the slice was cut from.
    pub identity: u64,
    /// Which shard of the partition this is.
    pub shard_index: u32,
    /// How many shards the partition has.
    pub shard_count: u32,
    /// The shard's rows.
    pub slice: CsrSlice,
}

/// A worker's answer to a forwarded frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontierResult {
    /// The search completed on this host; the job's final outcome.
    Done(SearchOutcome),
    /// The search needs a row this host does not own; the suspended state to resume
    /// on the owner of its cursor.
    Continue(PlacedState),
}

/// Work shipped to a worker inside a [`Message::SubmitBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchRequest {
    /// An explicit job list: a [`QueryBatch`] slice whose job `i` runs on the RNG
    /// stream of global index `index_offset + i`, against an algorithm table resolved
    /// from [`SearchSpec`]s on the worker (using the served snapshot's provenance `m`).
    Queries {
        /// The batch seed.
        seed: u64,
        /// Global index of the slice's first job.
        index_offset: u64,
        /// The algorithm table, by wire encoding; jobs index into it.
        algorithms: Vec<SearchSpec>,
        /// The jobs of this slice.
        batch: QueryBatch,
    },
    /// The contiguous global job range `start..end` of a TTL sweep grid of
    /// `ttls.len() * searches_per_point` jobs — the unit the dispatcher splits a
    /// snapshot sweep into.
    SweepRange {
        /// The batch seed (a snapshot sweep uses the file's stored `sweep_seed`).
        seed: u64,
        /// First global job index of the range.
        start: u64,
        /// One past the last global job index of the range.
        end: u64,
        /// Searches per TTL of the full grid.
        searches_per_point: u64,
        /// The TTL grid.
        ttls: Vec<u32>,
        /// The search to run (`RwNormalizedToNf` selects the paper's normalized-walk
        /// job shape).
        search: SearchSpec,
    },
}

/// One message of the worker protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → client: what this worker serves.
    Hello(Hello),
    /// Client → worker: load a different snapshot (path on the worker's filesystem).
    LoadSnapshot {
        /// The `.sfos` path to load.
        path: String,
    },
    /// Client → worker: execute a batch.
    SubmitBatch(BatchRequest),
    /// Worker → client: the outcomes of a batch, in job order.
    BatchResult {
        /// One outcome per job of the request.
        outcomes: Vec<SearchOutcome>,
    },
    /// Either direction: a typed failure; the connection survives.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// One live-membership message of `sfo-overlay`, carried one-to-one on its own
    /// frame type ([`TYPE_JOIN`] through [`TYPE_LEAVE`]) — the wire side of the
    /// `sfo overlay` daemon.
    Overlay(OverlayMessage),
    /// Client → worker: send me your metrics snapshot. Empty payload.
    StatsRequest,
    /// Worker → client: the point-in-time [`MetricsSnapshot`] of the worker's
    /// `sfo-obs` registry.
    StatsReport(MetricsSnapshot),
    /// Client → worker: serve this placed shard (the worker answers with its new
    /// [`Message::Hello`], now announcing the shard index).
    LoadShard(ShardPayload),
    /// Client → worker: resume this suspended placed search on your rows.
    ForwardFrontier {
        /// Identity hash of the snapshot the search runs on; a worker holding a
        /// different snapshot (or shard) refuses.
        identity: u64,
        /// The suspended search.
        state: PlacedState,
    },
    /// Worker → client: the forwarded frontier either finished here or must hop on.
    FrontierResult(FrontierResult),
    /// Worker → client: the request was shed because the connection's pending-batch
    /// queue was full (`sfo serve --queue-bound`). The request was *not* executed and
    /// the connection stays usable; [`WorkerClient`](crate::WorkerClient) surfaces
    /// this as [`NetError::Overloaded`], which the loadtest driver counts instead of
    /// dying on.
    Overloaded {
        /// How many batches were already pending when the request arrived.
        queued: u32,
        /// The worker's configured queue bound.
        limit: u32,
    },
}

fn put_peer(out: &mut Vec<u8>, peer: &PeerRef) {
    out.extend_from_slice(&peer.id.to_le_bytes());
    put_str(out, &peer.addr);
}

fn read_peer(reader: &mut PayloadReader<'_>, section: &'static str) -> Result<PeerRef, NetError> {
    let id = reader.u64(section)?;
    let addr = reader.str(section)?.to_string();
    Ok(PeerRef { id, addr })
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

fn read_bool(reader: &mut PayloadReader<'_>, section: &'static str) -> Result<bool, NetError> {
    match reader.u8(section)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(NetError::corrupt(format!(
            "{section}: flag byte must be 0 or 1, found {other}"
        ))),
    }
}

fn put_placed_algorithm(out: &mut Vec<u8>, algorithm: PlacedAlgorithm) {
    let (tag, param): (u8, u64) = match algorithm {
        PlacedAlgorithm::Flooding => (0, 0),
        PlacedAlgorithm::NormalizedFlooding { k_min } => (1, k_min as u64),
        PlacedAlgorithm::ProbabilisticFlooding { p } => (2, p.to_bits()),
        PlacedAlgorithm::RandomWalk => (3, 0),
        PlacedAlgorithm::MultipleRandomWalk { walkers } => (4, walkers as u64),
        PlacedAlgorithm::RwNormalizedToNf { k_min } => (5, k_min as u64),
    };
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
}

fn read_placed_algorithm(reader: &mut PayloadReader<'_>) -> Result<PlacedAlgorithm, NetError> {
    let tag = reader.u8("placed algorithm")?;
    let param = reader.u64("placed algorithm")?;
    let positive = |param: u64| {
        usize::try_from(param)
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| {
                NetError::corrupt(format!(
                    "placed algorithm parameter {param} must be a positive machine integer"
                ))
            })
    };
    match tag {
        0 | 3 => {
            if param != 0 {
                return Err(NetError::corrupt(
                    "placed algorithm: parameterless algorithms carry parameter 0",
                ));
            }
            Ok(if tag == 0 {
                PlacedAlgorithm::Flooding
            } else {
                PlacedAlgorithm::RandomWalk
            })
        }
        1 => Ok(PlacedAlgorithm::NormalizedFlooding {
            k_min: positive(param)?,
        }),
        2 => {
            let p = f64::from_bits(param);
            if p.is_finite() && p > 0.0 && p <= 1.0 {
                Ok(PlacedAlgorithm::ProbabilisticFlooding { p })
            } else {
                Err(NetError::corrupt(
                    "placed algorithm: forwarding probability must lie in (0, 1]",
                ))
            }
        }
        4 => Ok(PlacedAlgorithm::MultipleRandomWalk {
            walkers: positive(param)?,
        }),
        5 => Ok(PlacedAlgorithm::RwNormalizedToNf {
            k_min: positive(param)?,
        }),
        other => Err(NetError::corrupt(format!(
            "unknown placed algorithm tag {other}"
        ))),
    }
}

fn put_placed_state(out: &mut Vec<u8>, state: &PlacedState) {
    put_placed_algorithm(out, state.algorithm);
    put_bool(out, state.walk_phase);
    out.extend_from_slice(&state.source.to_le_bytes());
    out.extend_from_slice(&state.ttl.to_le_bytes());
    out.extend_from_slice(&state.hits.to_le_bytes());
    out.extend_from_slice(&state.messages.to_le_bytes());
    out.extend_from_slice(&state.current.to_le_bytes());
    out.extend_from_slice(&state.previous.to_le_bytes());
    out.extend_from_slice(&state.walker.to_le_bytes());
    out.extend_from_slice(&state.steps_done.to_le_bytes());
    for word in state.rng {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&(state.visited.len() as u32).to_le_bytes());
    for &(word_index, word) in &state.visited {
        out.extend_from_slice(&word_index.to_le_bytes());
        out.extend_from_slice(&word.to_le_bytes());
    }
    out.extend_from_slice(&(state.queue.len() as u32).to_le_bytes());
    for &(node, from, depth) in &state.queue {
        out.extend_from_slice(&node.to_le_bytes());
        out.extend_from_slice(&from.to_le_bytes());
        out.extend_from_slice(&depth.to_le_bytes());
    }
}

fn read_placed_state(reader: &mut PayloadReader<'_>) -> Result<PlacedState, NetError> {
    let algorithm = read_placed_algorithm(reader)?;
    let walk_phase = read_bool(reader, "frontier phase")?;
    if !walk_phase
        && matches!(
            algorithm,
            PlacedAlgorithm::RandomWalk | PlacedAlgorithm::MultipleRandomWalk { .. }
        )
    {
        return Err(NetError::corrupt(
            "frontier: a walk algorithm cannot be in the flood phase",
        ));
    }
    let source = reader.u32("frontier")?;
    let ttl = reader.u32("frontier")?;
    let hits = reader.u64("frontier")?;
    let messages = reader.u64("frontier")?;
    let current = reader.u32("frontier")?;
    let previous = reader.u32("frontier")?;
    let walker = reader.u32("frontier")?;
    let steps_done = reader.u32("frontier")?;
    let mut rng = [0u64; 4];
    for word in &mut rng {
        *word = reader.u64("frontier rng")?;
    }
    let visited_count = reader.u32("visited delta")? as usize;
    reader.expect_records(visited_count, 12, "visited delta")?;
    let mut visited = Vec::with_capacity(visited_count);
    let mut last_word: Option<u32> = None;
    for _ in 0..visited_count {
        let word_index = reader.u32("visited delta")?;
        if last_word.is_some_and(|previous| previous >= word_index) {
            return Err(NetError::corrupt(
                "visited delta: word indices must be strictly ascending",
            ));
        }
        last_word = Some(word_index);
        visited.push((word_index, reader.u64("visited delta")?));
    }
    let queue_count = reader.u32("frontier queue")? as usize;
    reader.expect_records(queue_count, 12, "frontier queue")?;
    let mut queue = Vec::with_capacity(queue_count);
    for _ in 0..queue_count {
        queue.push((
            reader.u32("frontier queue")?,
            reader.u32("frontier queue")?,
            reader.u32("frontier queue")?,
        ));
    }
    Ok(PlacedState {
        algorithm,
        walk_phase,
        source,
        ttl,
        hits,
        messages,
        current,
        previous,
        walker,
        steps_done,
        rng,
        visited,
        queue,
    })
}

fn put_search_spec(out: &mut Vec<u8>, spec: &SearchSpec) {
    put_str(out, &spec.to_json().to_pretty_string());
}

fn read_search_spec(reader: &mut PayloadReader<'_>) -> Result<SearchSpec, NetError> {
    let text = reader.str("search spec")?;
    let value = JsonValue::parse(text)
        .map_err(|e| NetError::corrupt(format!("search spec is not valid JSON: {e}")))?;
    SearchSpec::from_json(&value)
        .map_err(|e| NetError::corrupt(format!("search spec does not decode: {e}")))
}

impl Message {
    /// Encodes the message to `(frame type, payload bytes)`.
    pub fn encode(&self) -> (u16, Vec<u8>) {
        match self {
            Message::Hello(hello) => {
                let mut out = Vec::with_capacity(32);
                out.extend_from_slice(&hello.identity.to_le_bytes());
                out.extend_from_slice(&hello.node_count.to_le_bytes());
                out.extend_from_slice(&hello.edge_count.to_le_bytes());
                out.extend_from_slice(&hello.shard_count.to_le_bytes());
                out.extend_from_slice(&hello.engine_workers.to_le_bytes());
                out.extend_from_slice(&hello.shard_index.to_le_bytes());
                (TYPE_HELLO, out)
            }
            Message::LoadSnapshot { path } => {
                let mut out = Vec::new();
                put_str(&mut out, path);
                (TYPE_LOAD_SNAPSHOT, out)
            }
            Message::SubmitBatch(request) => {
                let mut out = Vec::new();
                match request {
                    BatchRequest::Queries {
                        seed,
                        index_offset,
                        algorithms,
                        batch,
                    } => {
                        out.push(0u8);
                        out.extend_from_slice(&seed.to_le_bytes());
                        out.extend_from_slice(&index_offset.to_le_bytes());
                        out.extend_from_slice(&(algorithms.len() as u32).to_le_bytes());
                        for spec in algorithms {
                            put_search_spec(&mut out, spec);
                        }
                        out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
                        for job in batch.jobs() {
                            out.extend_from_slice(&(job.source.as_u32()).to_le_bytes());
                            out.extend_from_slice(&(job.algorithm as u32).to_le_bytes());
                            out.extend_from_slice(&job.ttl.to_le_bytes());
                        }
                    }
                    BatchRequest::SweepRange {
                        seed,
                        start,
                        end,
                        searches_per_point,
                        ttls,
                        search,
                    } => {
                        out.push(1u8);
                        out.extend_from_slice(&seed.to_le_bytes());
                        out.extend_from_slice(&start.to_le_bytes());
                        out.extend_from_slice(&end.to_le_bytes());
                        out.extend_from_slice(&searches_per_point.to_le_bytes());
                        out.extend_from_slice(&(ttls.len() as u32).to_le_bytes());
                        for &ttl in ttls {
                            out.extend_from_slice(&ttl.to_le_bytes());
                        }
                        put_search_spec(&mut out, search);
                    }
                }
                (TYPE_SUBMIT_BATCH, out)
            }
            Message::BatchResult { outcomes } => {
                let mut out = Vec::with_capacity(4 + 16 * outcomes.len());
                out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
                for outcome in outcomes {
                    out.extend_from_slice(&(outcome.hits as u64).to_le_bytes());
                    out.extend_from_slice(&(outcome.messages as u64).to_le_bytes());
                }
                (TYPE_BATCH_RESULT, out)
            }
            Message::Error { message } => {
                let mut out = Vec::new();
                put_str(&mut out, message);
                (TYPE_ERROR, out)
            }
            Message::Overlay(overlay) => match overlay {
                OverlayMessage::Join { origin, walks } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, origin);
                    out.extend_from_slice(&walks.to_le_bytes());
                    (TYPE_JOIN, out)
                }
                OverlayMessage::ForwardJoin { origin, ttl } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, origin);
                    out.extend_from_slice(&ttl.to_le_bytes());
                    (TYPE_FORWARD_JOIN, out)
                }
                OverlayMessage::Shuffle { from, peers, reply } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    out.extend_from_slice(&(peers.len() as u32).to_le_bytes());
                    for peer in peers {
                        put_peer(&mut out, peer);
                    }
                    put_bool(&mut out, *reply);
                    (TYPE_SHUFFLE, out)
                }
                OverlayMessage::Probe { from, nonce, ack } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    out.extend_from_slice(&nonce.to_le_bytes());
                    put_bool(&mut out, *ack);
                    (TYPE_PROBE, out)
                }
                OverlayMessage::Leave { from } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    (TYPE_LEAVE, out)
                }
            },
            Message::StatsRequest => (TYPE_STATS_REQUEST, Vec::new()),
            Message::StatsReport(snapshot) => {
                let mut out = Vec::new();
                out.extend_from_slice(&(snapshot.counters.len() as u32).to_le_bytes());
                for (name, value) in &snapshot.counters {
                    put_str(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                out.extend_from_slice(&(snapshot.histograms.len() as u32).to_le_bytes());
                for (name, hist) in &snapshot.histograms {
                    put_str(&mut out, name);
                    out.extend_from_slice(&hist.count.to_le_bytes());
                    out.extend_from_slice(&hist.sum.to_le_bytes());
                    out.extend_from_slice(&hist.max.to_le_bytes());
                    out.extend_from_slice(&(hist.buckets.len() as u32).to_le_bytes());
                    for &(bucket, samples) in &hist.buckets {
                        out.push(bucket);
                        out.extend_from_slice(&samples.to_le_bytes());
                    }
                }
                (TYPE_STATS_REPORT, out)
            }
            Message::LoadShard(shard) => {
                let (offsets, targets) = shard.slice.raw_parts();
                let mut out = Vec::with_capacity(60 + 4 * offsets.len() + 4 * targets.len());
                out.extend_from_slice(&shard.identity.to_le_bytes());
                out.extend_from_slice(
                    &(sfo_graph::ShardView::node_count(&shard.slice) as u64).to_le_bytes(),
                );
                out.extend_from_slice(
                    &(sfo_graph::ShardView::edge_count(&shard.slice) as u64).to_le_bytes(),
                );
                out.extend_from_slice(&shard.shard_index.to_le_bytes());
                out.extend_from_slice(&shard.shard_count.to_le_bytes());
                out.extend_from_slice(&(shard.slice.start() as u64).to_le_bytes());
                out.extend_from_slice(&(shard.slice.end() as u64).to_le_bytes());
                for &offset in offsets {
                    out.extend_from_slice(&offset.to_le_bytes());
                }
                out.extend_from_slice(&(targets.len() as u32).to_le_bytes());
                for &target in targets {
                    out.extend_from_slice(&target.as_u32().to_le_bytes());
                }
                (TYPE_LOAD_SHARD, out)
            }
            Message::ForwardFrontier { identity, state } => {
                let mut out =
                    Vec::with_capacity(128 + 12 * state.visited.len() + 12 * state.queue.len());
                out.extend_from_slice(&identity.to_le_bytes());
                put_placed_state(&mut out, state);
                (TYPE_FORWARD_FRONTIER, out)
            }
            Message::FrontierResult(result) => {
                let mut out = Vec::new();
                match result {
                    FrontierResult::Done(outcome) => {
                        out.push(0u8);
                        out.extend_from_slice(&(outcome.hits as u64).to_le_bytes());
                        out.extend_from_slice(&(outcome.messages as u64).to_le_bytes());
                    }
                    FrontierResult::Continue(state) => {
                        out.push(1u8);
                        put_placed_state(&mut out, state);
                    }
                }
                (TYPE_FRONTIER_RESULT, out)
            }
            Message::Overloaded { queued, limit } => {
                let mut out = Vec::with_capacity(8);
                out.extend_from_slice(&queued.to_le_bytes());
                out.extend_from_slice(&limit.to_le_bytes());
                (TYPE_OVERLOADED, out)
            }
        }
    }

    /// Decodes a message from a frame's `(type, payload)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownFrameType`] for unknown tags and
    /// [`NetError::Truncated`]/[`NetError::Corrupt`] when the payload does not decode
    /// exactly — trailing bytes included.
    pub fn decode(message_type: u16, payload: &[u8]) -> Result<Message, NetError> {
        let mut reader = PayloadReader::new(payload);
        let message = match message_type {
            TYPE_HELLO => {
                let hello = Hello {
                    identity: reader.u64("hello")?,
                    node_count: reader.u64("hello")?,
                    edge_count: reader.u64("hello")?,
                    shard_count: reader.u32("hello")?,
                    engine_workers: reader.u32("hello")?,
                    shard_index: reader.u32("hello")?,
                };
                Message::Hello(hello)
            }
            TYPE_LOAD_SNAPSHOT => Message::LoadSnapshot {
                path: reader.str("load snapshot")?.to_string(),
            },
            TYPE_SUBMIT_BATCH => {
                let request = match reader.u8("batch request")? {
                    0 => {
                        let seed = reader.u64("batch request")?;
                        let index_offset = reader.u64("batch request")?;
                        let algorithm_count = reader.u32("algorithm table")? as usize;
                        // Each encoded algorithm is at least a 4-byte length prefix.
                        reader.expect_records(algorithm_count, 4, "algorithm table")?;
                        let mut algorithms = Vec::with_capacity(algorithm_count);
                        for _ in 0..algorithm_count {
                            algorithms.push(read_search_spec(&mut reader)?);
                        }
                        let job_count = reader.u32("job list")? as usize;
                        reader.expect_records(job_count, 12, "job list")?;
                        let mut batch = QueryBatch::new();
                        for _ in 0..job_count {
                            let source = reader.u32("job list")?;
                            let algorithm = reader.u32("job list")? as usize;
                            let ttl = reader.u32("job list")?;
                            batch.push(sfo_graph::NodeId::new(source as usize), algorithm, ttl);
                        }
                        BatchRequest::Queries {
                            seed,
                            index_offset,
                            algorithms,
                            batch,
                        }
                    }
                    1 => {
                        let seed = reader.u64("batch request")?;
                        let start = reader.u64("batch request")?;
                        let end = reader.u64("batch request")?;
                        let searches_per_point = reader.u64("batch request")?;
                        let ttl_count = reader.u32("ttl grid")? as usize;
                        reader.expect_records(ttl_count, 4, "ttl grid")?;
                        let mut ttls = Vec::with_capacity(ttl_count);
                        for _ in 0..ttl_count {
                            ttls.push(reader.u32("ttl grid")?);
                        }
                        let search = read_search_spec(&mut reader)?;
                        BatchRequest::SweepRange {
                            seed,
                            start,
                            end,
                            searches_per_point,
                            ttls,
                            search,
                        }
                    }
                    other => {
                        return Err(NetError::corrupt(format!(
                            "unknown batch request kind {other}"
                        )))
                    }
                };
                Message::SubmitBatch(request)
            }
            TYPE_BATCH_RESULT => {
                let count = reader.u32("batch result")? as usize;
                reader.expect_records(count, 16, "batch result")?;
                let mut outcomes = Vec::with_capacity(count);
                for _ in 0..count {
                    let hits = reader.u64("batch result")?;
                    let messages = reader.u64("batch result")?;
                    outcomes.push(SearchOutcome {
                        hits: usize::try_from(hits)
                            .map_err(|_| NetError::corrupt("hit count exceeds usize"))?,
                        messages: usize::try_from(messages)
                            .map_err(|_| NetError::corrupt("message count exceeds usize"))?,
                    });
                }
                Message::BatchResult { outcomes }
            }
            TYPE_ERROR => Message::Error {
                message: reader.str("error")?.to_string(),
            },
            TYPE_JOIN => Message::Overlay(OverlayMessage::Join {
                origin: read_peer(&mut reader, "join")?,
                walks: reader.u32("join")?,
            }),
            TYPE_FORWARD_JOIN => Message::Overlay(OverlayMessage::ForwardJoin {
                origin: read_peer(&mut reader, "forward join")?,
                ttl: reader.u32("forward join")?,
            }),
            TYPE_SHUFFLE => {
                let from = read_peer(&mut reader, "shuffle")?;
                let count = reader.u32("shuffle sample")? as usize;
                // Each encoded peer is at least an 8-byte id plus a 4-byte length.
                reader.expect_records(count, 12, "shuffle sample")?;
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    peers.push(read_peer(&mut reader, "shuffle sample")?);
                }
                let reply = read_bool(&mut reader, "shuffle")?;
                Message::Overlay(OverlayMessage::Shuffle { from, peers, reply })
            }
            TYPE_PROBE => Message::Overlay(OverlayMessage::Probe {
                from: read_peer(&mut reader, "probe")?,
                nonce: reader.u64("probe")?,
                ack: read_bool(&mut reader, "probe")?,
            }),
            TYPE_LEAVE => Message::Overlay(OverlayMessage::Leave {
                from: read_peer(&mut reader, "leave")?,
            }),
            TYPE_STATS_REQUEST => Message::StatsRequest,
            TYPE_STATS_REPORT => {
                let counter_count = reader.u32("stats counters")? as usize;
                // Each counter is at least a 4-byte name length plus an 8-byte value.
                reader.expect_records(counter_count, 12, "stats counters")?;
                let mut counters = Vec::with_capacity(counter_count);
                for _ in 0..counter_count {
                    let name = reader.str("stats counters")?.to_string();
                    let value = reader.u64("stats counters")?;
                    counters.push((name, value));
                }
                let histogram_count = reader.u32("stats histograms")? as usize;
                // At least a 4-byte name length, count/sum/max, and a bucket count.
                reader.expect_records(histogram_count, 32, "stats histograms")?;
                let mut histograms = Vec::with_capacity(histogram_count);
                for _ in 0..histogram_count {
                    let name = reader.str("stats histograms")?.to_string();
                    let count = reader.u64("stats histograms")?;
                    let sum = reader.u64("stats histograms")?;
                    let max = reader.u64("stats histograms")?;
                    let bucket_count = reader.u32("stats buckets")? as usize;
                    reader.expect_records(bucket_count, 9, "stats buckets")?;
                    let mut buckets = Vec::with_capacity(bucket_count);
                    let mut previous: Option<u8> = None;
                    for _ in 0..bucket_count {
                        let bucket = reader.u8("stats buckets")?;
                        if bucket as usize >= BUCKET_COUNT {
                            return Err(NetError::corrupt(format!(
                                "stats buckets: bucket index {bucket} out of range"
                            )));
                        }
                        if previous.is_some_and(|p| p >= bucket) {
                            return Err(NetError::corrupt(
                                "stats buckets: bucket indices must be strictly ascending",
                            ));
                        }
                        previous = Some(bucket);
                        let samples = reader.u64("stats buckets")?;
                        buckets.push((bucket, samples));
                    }
                    histograms.push((
                        name,
                        HistogramSnapshot {
                            count,
                            sum,
                            max,
                            buckets,
                        },
                    ));
                }
                Message::StatsReport(MetricsSnapshot {
                    counters,
                    histograms,
                })
            }
            TYPE_LOAD_SHARD => {
                let identity = reader.u64("shard payload")?;
                let node_count = reader.u64("shard payload")?;
                let edge_count = reader.u64("shard payload")?;
                let shard_index = reader.u32("shard payload")?;
                let shard_count = reader.u32("shard payload")?;
                let start = reader.u64("shard payload")?;
                let end = reader.u64("shard payload")?;
                if shard_count == 0 || shard_index >= shard_count {
                    return Err(NetError::corrupt(format!(
                        "shard payload: shard index {shard_index} of {shard_count} is not a placement"
                    )));
                }
                let as_size = |value: u64, what: &str| {
                    usize::try_from(value).map_err(|_| {
                        NetError::corrupt(format!("shard payload: {what} {value} exceeds usize"))
                    })
                };
                let node_count = as_size(node_count, "node count")?;
                let edge_count = as_size(edge_count, "edge count")?;
                let start = as_size(start, "range start")?;
                let end = as_size(end, "range end")?;
                if start > end || end > node_count {
                    return Err(NetError::corrupt(format!(
                        "shard payload: range {start}..{end} out of bounds for {node_count} nodes"
                    )));
                }
                let expected = crate::placed::shard_range(
                    node_count,
                    shard_count as usize,
                    shard_index as usize,
                );
                if expected != (start..end) {
                    return Err(NetError::corrupt(format!(
                        "shard payload: range {start}..{end} is not shard {shard_index} of \
                         {shard_count} over {node_count} nodes (expected {expected:?})"
                    )));
                }
                let offset_count = end - start + 1;
                reader.expect_records(offset_count, 4, "shard offsets")?;
                let mut offsets = Vec::with_capacity(offset_count);
                for _ in 0..offset_count {
                    offsets.push(reader.u32("shard offsets")?);
                }
                let target_count = reader.u32("shard targets")? as usize;
                reader.expect_records(target_count, 4, "shard targets")?;
                let mut targets = Vec::with_capacity(target_count);
                for _ in 0..target_count {
                    targets.push(NodeId::new(reader.u32("shard targets")? as usize));
                }
                let slice =
                    CsrSlice::from_parts(start..end, node_count, edge_count, offsets, targets)
                        .map_err(|e| {
                            NetError::corrupt(format!("shard payload does not assemble: {e}"))
                        })?;
                Message::LoadShard(ShardPayload {
                    identity,
                    shard_index,
                    shard_count,
                    slice,
                })
            }
            TYPE_FORWARD_FRONTIER => {
                let identity = reader.u64("frontier")?;
                let state = read_placed_state(&mut reader)?;
                Message::ForwardFrontier { identity, state }
            }
            TYPE_FRONTIER_RESULT => {
                let result = match reader.u8("frontier result")? {
                    0 => {
                        let hits = reader.u64("frontier result")?;
                        let messages = reader.u64("frontier result")?;
                        FrontierResult::Done(SearchOutcome {
                            hits: usize::try_from(hits)
                                .map_err(|_| NetError::corrupt("hit count exceeds usize"))?,
                            messages: usize::try_from(messages)
                                .map_err(|_| NetError::corrupt("message count exceeds usize"))?,
                        })
                    }
                    1 => FrontierResult::Continue(read_placed_state(&mut reader)?),
                    other => {
                        return Err(NetError::corrupt(format!(
                            "unknown frontier result kind {other}"
                        )))
                    }
                };
                Message::FrontierResult(result)
            }
            TYPE_OVERLOADED => Message::Overloaded {
                queued: reader.u32("overloaded")?,
                limit: reader.u32("overloaded")?,
            },
            other => return Err(NetError::UnknownFrameType { found: other }),
        };
        reader.finish("message payload")?;
        Ok(message)
    }
}

/// Writes one message as a frame.
///
/// # Errors
///
/// Returns [`NetError::Io`] when the underlying write fails.
pub fn send_message(writer: &mut impl std::io::Write, message: &Message) -> Result<(), NetError> {
    let (message_type, payload) = message.encode();
    crate::frame::write_frame(writer, message_type, &payload)
}

/// Reads one message from a frame.
///
/// # Errors
///
/// Every framing and decoding failure of [`crate::frame::read_frame`] and
/// [`Message::decode`].
pub fn recv_message(reader: &mut impl std::io::Read) -> Result<Message, NetError> {
    recv_message_counted(reader).map(|(message, _)| message)
}

/// Total frame size (header + payload + checksum trailer) of a payload of `len` bytes.
fn frame_bytes(len: usize) -> u64 {
    (crate::frame::FRAME_HEADER_LEN + len + crate::frame::FRAME_TRAILER_LEN) as u64
}

/// [`send_message`], also returning the total frame bytes written — the hook the
/// server's byte accounting uses.
///
/// # Errors
///
/// Returns [`NetError::Io`] when the underlying write fails.
pub fn send_message_counted(
    writer: &mut impl std::io::Write,
    message: &Message,
) -> Result<u64, NetError> {
    let (message_type, payload) = message.encode();
    crate::frame::write_frame(writer, message_type, &payload)?;
    Ok(frame_bytes(payload.len()))
}

/// [`recv_message`], also returning the total frame bytes consumed — the hook the
/// server's byte accounting uses.
///
/// # Errors
///
/// Every framing and decoding failure of [`crate::frame::read_frame`] and
/// [`Message::decode`].
pub fn recv_message_counted(reader: &mut impl std::io::Read) -> Result<(Message, u64), NetError> {
    let (message_type, payload) = crate::frame::read_frame(reader)?;
    let bytes = frame_bytes(payload.len());
    Ok((Message::decode(message_type, &payload)?, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_graph::NodeId;

    fn sample_placed_state() -> PlacedState {
        PlacedState {
            algorithm: PlacedAlgorithm::NormalizedFlooding { k_min: 2 },
            walk_phase: false,
            source: 3,
            ttl: 5,
            hits: 17,
            messages: 40,
            current: 3,
            previous: sfo_engine::NO_NODE,
            walker: 0,
            steps_done: 0,
            rng: [1, 2, 3, 4],
            visited: vec![(0, 0b1001), (2, u64::MAX)],
            queue: vec![(9, 3, 1), (14, sfo_engine::NO_NODE, 2)],
        }
    }

    fn sample_shard_payload() -> ShardPayload {
        let mut g = sfo_graph::Graph::with_nodes(10);
        for i in 0..9 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1)).unwrap();
        }
        let csr = g.freeze();
        ShardPayload {
            identity: 0xABCD_EF01_2345_6789,
            shard_index: 1,
            shard_count: 3,
            slice: csr.extract_slice(crate::placed::shard_range(10, 3, 1)),
        }
    }

    fn sample_messages() -> Vec<Message> {
        let mut batch = QueryBatch::new();
        batch.push(NodeId::new(3), 0, 4);
        batch.push(NodeId::new(9), 1, 2);
        vec![
            Message::Hello(Hello {
                identity: 0xFEED_F00D_DEAD_BEEF,
                node_count: 10_000,
                edge_count: 20_000,
                shard_count: 4,
                engine_workers: 8,
                shard_index: WHOLE_SNAPSHOT,
            }),
            Message::LoadSnapshot {
                path: "topologies/pa_m2_kc10.sfos".to_string(),
            },
            Message::SubmitBatch(BatchRequest::Queries {
                seed: 7,
                index_offset: 40,
                algorithms: vec![
                    SearchSpec::Flooding,
                    SearchSpec::NormalizedFlooding { k_min: Some(2) },
                ],
                batch,
            }),
            Message::SubmitBatch(BatchRequest::SweepRange {
                seed: 11,
                start: 30,
                end: 60,
                searches_per_point: 30,
                ttls: vec![1, 2, 4, 8],
                search: SearchSpec::RwNormalizedToNf { k_min: None },
            }),
            Message::BatchResult {
                outcomes: vec![SearchOutcome::new(5, 9), SearchOutcome::new(0, 1)],
            },
            Message::Error {
                message: "no snapshot loaded".to_string(),
            },
            Message::Overlay(OverlayMessage::Join {
                origin: PeerRef::new(3, "127.0.0.1:9100"),
                walks: 2,
            }),
            Message::Overlay(OverlayMessage::ForwardJoin {
                origin: PeerRef::new(3, "127.0.0.1:9100"),
                ttl: 7,
            }),
            Message::Overlay(OverlayMessage::Shuffle {
                from: PeerRef::new(1, "127.0.0.1:9101"),
                peers: vec![
                    PeerRef::new(4, "127.0.0.1:9104"),
                    PeerRef::new(5, "127.0.0.1:9105"),
                ],
                reply: true,
            }),
            Message::Overlay(OverlayMessage::Probe {
                from: PeerRef::new(2, "127.0.0.1:9102"),
                nonce: 0xA5A5_5A5A_0F0F_F0F0,
                ack: false,
            }),
            Message::Overlay(OverlayMessage::Leave {
                from: PeerRef::new(9, "127.0.0.1:9109"),
            }),
            Message::StatsRequest,
            Message::StatsReport(MetricsSnapshot {
                counters: vec![
                    ("engine.jobs".to_string(), 4096),
                    ("net.connections".to_string(), 3),
                ],
                histograms: vec![(
                    "net.request_micros".to_string(),
                    HistogramSnapshot {
                        count: 5,
                        sum: 700,
                        max: 300,
                        buckets: vec![(6, 4), (9, 1)],
                    },
                )],
            }),
            Message::StatsReport(MetricsSnapshot::default()),
            Message::LoadShard(sample_shard_payload()),
            Message::ForwardFrontier {
                identity: 0xFEED_F00D_DEAD_BEEF,
                state: sample_placed_state(),
            },
            Message::FrontierResult(FrontierResult::Done(SearchOutcome::new(12, 99))),
            Message::Overloaded {
                queued: 32,
                limit: 32,
            },
            Message::FrontierResult(FrontierResult::Continue(PlacedState {
                algorithm: PlacedAlgorithm::MultipleRandomWalk { walkers: 4 },
                walk_phase: true,
                current: 7,
                previous: 3,
                walker: 2,
                steps_done: 5,
                queue: Vec::new(),
                ..sample_placed_state()
            })),
        ]
    }

    #[test]
    fn every_message_round_trips_through_its_frame() {
        for message in sample_messages() {
            let (message_type, payload) = message.encode();
            let back = Message::decode(message_type, &payload).unwrap();
            assert_eq!(back, message);

            // And through a real byte stream.
            let mut wire = Vec::new();
            send_message(&mut wire, &message).unwrap();
            assert_eq!(recv_message(&mut wire.as_slice()).unwrap(), message);
        }
    }

    #[test]
    fn unknown_types_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Message::decode(99, &[]),
            Err(NetError::UnknownFrameType { found: 99 })
        ));
        let (message_type, mut payload) = Message::Error {
            message: "x".to_string(),
        }
        .encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(message_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn lying_inner_counts_are_bounded_before_allocation() {
        // A BatchResult claiming u32::MAX outcomes in a 4-byte payload must fail on the
        // record bound, not allocate a 64 GiB vector.
        let payload = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            Message::decode(TYPE_BATCH_RESULT, &payload),
            Err(NetError::Truncated { .. })
        ));
        // Same for a job list.
        let mut payload = vec![0u8];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // no algorithms
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // a lie
        assert!(matches!(
            Message::decode(TYPE_SUBMIT_BATCH, &payload),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn overlay_frames_reject_bad_flags_and_lying_counts() {
        // A probe whose ack byte is neither 0 nor 1.
        let (frame_type, mut payload) = Message::Overlay(OverlayMessage::Probe {
            from: PeerRef::new(1, "127.0.0.1:9100"),
            nonce: 9,
            ack: true,
        })
        .encode();
        *payload.last_mut().unwrap() = 2;
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));

        // A shuffle claiming u32::MAX peers in a tiny payload must fail on the record
        // bound, not allocate.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        put_str(&mut payload, "127.0.0.1:9100");
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(TYPE_SHUFFLE, &payload),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn stats_reports_reject_lying_counts_and_bad_buckets() {
        // A report claiming u32::MAX counters in an 8-byte payload must fail on the
        // record bound, not allocate.
        let mut payload = u32::MAX.to_le_bytes().to_vec();
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Message::decode(TYPE_STATS_REPORT, &payload),
            Err(NetError::Truncated { .. })
        ));

        fn report_with_buckets(buckets: Vec<(u8, u64)>) -> (u16, Vec<u8>) {
            Message::StatsReport(MetricsSnapshot {
                counters: vec![],
                histograms: vec![(
                    "h".to_string(),
                    HistogramSnapshot {
                        count: 2,
                        sum: 2,
                        max: 1,
                        buckets,
                    },
                )],
            })
            .encode()
        }

        // A bucket index past the histogram's range is corrupt.
        let (frame_type, payload) = report_with_buckets(vec![(200, 2)]);
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
        // Out-of-order buckets are corrupt too: snapshots are canonical.
        let (frame_type, payload) = report_with_buckets(vec![(5, 1), (3, 1)]);
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
        // A stats request carries no payload at all.
        assert!(matches!(
            Message::decode(TYPE_STATS_REQUEST, &[1]),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn placed_frames_reject_malformed_payloads() {
        // A frontier whose visited count lies about the payload is bounded before
        // allocation.
        let (frame_type, payload) = Message::ForwardFrontier {
            identity: 1,
            state: sample_placed_state(),
        }
        .encode();
        let mut lying = payload.clone();
        // The visited count sits right after identity(8) + algorithm(9) + phase(1) +
        // 8 u32 fields... easier: find the encoded count (2) and inflate it.
        let count_at = 8 + 9 + 1 + 4 * 6 + 8 * 2 + 8 * 4;
        assert_eq!(&lying[count_at..count_at + 4], &2u32.to_le_bytes());
        lying[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(frame_type, &lying),
            Err(NetError::Truncated { .. })
        ));

        // Out-of-order visited words are corrupt: exports are canonical.
        let mut disordered = sample_placed_state();
        disordered.visited = vec![(2, 1), (1, 1)];
        let (frame_type, payload) = Message::ForwardFrontier {
            identity: 1,
            state: disordered,
        }
        .encode();
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));

        // A walk algorithm claiming to be mid-flood is structurally impossible.
        let mut impossible = sample_placed_state();
        impossible.algorithm = PlacedAlgorithm::RandomWalk;
        impossible.walk_phase = false;
        let (frame_type, payload) = Message::ForwardFrontier {
            identity: 1,
            state: impossible,
        }
        .encode();
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));

        // A shard payload whose range is not the canonical placement of its index.
        let (frame_type, payload) = Message::LoadShard(sample_shard_payload()).encode();
        let mut misplaced = payload.clone();
        misplaced[28..32].copy_from_slice(&0u32.to_le_bytes()); // claim shard 0
        assert!(matches!(
            Message::decode(frame_type, &misplaced),
            Err(NetError::Corrupt { .. })
        ));
        // A shard index outside the partition.
        let mut wild = payload.clone();
        wild[28..32].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            Message::decode(frame_type, &wild),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn malformed_search_specs_are_corrupt_not_panics() {
        let mut payload = vec![1u8];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // no ttls
        put_str(&mut payload, "{\"algorithm\": \"teleportation\"}");
        assert!(matches!(
            Message::decode(TYPE_SUBMIT_BATCH, &payload),
            Err(NetError::Corrupt { .. })
        ));
    }
}
