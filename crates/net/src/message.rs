//! The message vocabulary carried by [`crate::frame`] envelopes.
//!
//! Five messages cover the whole worker conversation, and five more —
//! [`Message::Overlay`], one frame type per [`OverlayMessage`] variant — carry the
//! live membership protocol between `sfo overlay` daemons (byte layouts in
//! `docs/FORMATS.md`):
//!
//! * [`Message::Hello`] — sent by a worker on connect (and after a
//!   [`Message::LoadSnapshot`]): which snapshot it serves, by identity hash, plus its
//!   shape. The dispatcher compares the identity against the scenario's file and
//!   refuses a worker serving the wrong realization.
//! * [`Message::LoadSnapshot`] — asks the worker to load a different `.sfos` file
//!   (a path on the *worker's* filesystem).
//! * [`Message::SubmitBatch`] — a [`BatchRequest`]: either an explicit
//!   [`QueryBatch`] slice or a contiguous range of a TTL sweep grid, both tagged with
//!   the global index information that makes per-job RNG streams split-invariant.
//! * [`Message::BatchResult`] — one [`SearchOutcome`] per job, in job order.
//! * [`Message::Error`] — the worker's typed failure surface; the connection stays
//!   usable afterwards.
//! * [`Message::StatsRequest`] / [`Message::StatsReport`] — the observability pair: a
//!   client (the dispatcher, or `sfo stats` on the CLI) polls a live worker, which
//!   answers with the [`MetricsSnapshot`] of its `sfo-obs` registry — counters plus
//!   log-bucketed histograms, name-sorted, mergeable across workers.
//!
//! Search algorithms travel as their scenario-layer JSON encoding (a length-prefixed
//! string inside the binary payload): the `SearchSpec` codec is already the workspace's
//! one tested vocabulary for naming an algorithm, and reusing it keeps the wire format
//! and the spec files from drifting apart.

use crate::frame::{put_str, PayloadReader};
use crate::NetError;
use sfo_engine::QueryBatch;
use sfo_obs::{HistogramSnapshot, MetricsSnapshot, BUCKET_COUNT};
use sfo_overlay::protocol::{OverlayMessage, PeerRef};
use sfo_scenario::json::{FromJson, JsonValue, ToJson};
use sfo_scenario::SearchSpec;
use sfo_search::SearchOutcome;

/// Frame type tag of [`Message::Hello`].
pub const TYPE_HELLO: u16 = 1;
/// Frame type tag of [`Message::LoadSnapshot`].
pub const TYPE_LOAD_SNAPSHOT: u16 = 2;
/// Frame type tag of [`Message::SubmitBatch`].
pub const TYPE_SUBMIT_BATCH: u16 = 3;
/// Frame type tag of [`Message::BatchResult`].
pub const TYPE_BATCH_RESULT: u16 = 4;
/// Frame type tag of [`Message::Error`].
pub const TYPE_ERROR: u16 = 5;
/// Frame type tag of [`OverlayMessage::Join`].
pub const TYPE_JOIN: u16 = 6;
/// Frame type tag of [`OverlayMessage::ForwardJoin`].
pub const TYPE_FORWARD_JOIN: u16 = 7;
/// Frame type tag of [`OverlayMessage::Shuffle`].
pub const TYPE_SHUFFLE: u16 = 8;
/// Frame type tag of [`OverlayMessage::Probe`].
pub const TYPE_PROBE: u16 = 9;
/// Frame type tag of [`OverlayMessage::Leave`].
pub const TYPE_LEAVE: u16 = 10;
/// Frame type tag of [`Message::StatsRequest`].
pub const TYPE_STATS_REQUEST: u16 = 11;
/// Frame type tag of [`Message::StatsReport`].
pub const TYPE_STATS_REPORT: u16 = 12;

/// What a worker announces about the snapshot it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Identity hash of the served snapshot file
    /// ([`sfo_graph::snapshot::read_identity`]).
    pub identity: u64,
    /// Nodes in the served topology.
    pub node_count: u64,
    /// Undirected edges in the served topology.
    pub edge_count: u64,
    /// Shards the worker's store is partitioned into.
    pub shard_count: u32,
    /// Worker threads in the serving engine pool.
    pub engine_workers: u32,
}

/// Work shipped to a worker inside a [`Message::SubmitBatch`].
#[derive(Debug, Clone, PartialEq)]
pub enum BatchRequest {
    /// An explicit job list: a [`QueryBatch`] slice whose job `i` runs on the RNG
    /// stream of global index `index_offset + i`, against an algorithm table resolved
    /// from [`SearchSpec`]s on the worker (using the served snapshot's provenance `m`).
    Queries {
        /// The batch seed.
        seed: u64,
        /// Global index of the slice's first job.
        index_offset: u64,
        /// The algorithm table, by wire encoding; jobs index into it.
        algorithms: Vec<SearchSpec>,
        /// The jobs of this slice.
        batch: QueryBatch,
    },
    /// The contiguous global job range `start..end` of a TTL sweep grid of
    /// `ttls.len() * searches_per_point` jobs — the unit the dispatcher splits a
    /// snapshot sweep into.
    SweepRange {
        /// The batch seed (a snapshot sweep uses the file's stored `sweep_seed`).
        seed: u64,
        /// First global job index of the range.
        start: u64,
        /// One past the last global job index of the range.
        end: u64,
        /// Searches per TTL of the full grid.
        searches_per_point: u64,
        /// The TTL grid.
        ttls: Vec<u32>,
        /// The search to run (`RwNormalizedToNf` selects the paper's normalized-walk
        /// job shape).
        search: SearchSpec,
    },
}

/// One message of the worker protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → client: what this worker serves.
    Hello(Hello),
    /// Client → worker: load a different snapshot (path on the worker's filesystem).
    LoadSnapshot {
        /// The `.sfos` path to load.
        path: String,
    },
    /// Client → worker: execute a batch.
    SubmitBatch(BatchRequest),
    /// Worker → client: the outcomes of a batch, in job order.
    BatchResult {
        /// One outcome per job of the request.
        outcomes: Vec<SearchOutcome>,
    },
    /// Either direction: a typed failure; the connection survives.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// One live-membership message of `sfo-overlay`, carried one-to-one on its own
    /// frame type ([`TYPE_JOIN`] through [`TYPE_LEAVE`]) — the wire side of the
    /// `sfo overlay` daemon.
    Overlay(OverlayMessage),
    /// Client → worker: send me your metrics snapshot. Empty payload.
    StatsRequest,
    /// Worker → client: the point-in-time [`MetricsSnapshot`] of the worker's
    /// `sfo-obs` registry.
    StatsReport(MetricsSnapshot),
}

fn put_peer(out: &mut Vec<u8>, peer: &PeerRef) {
    out.extend_from_slice(&peer.id.to_le_bytes());
    put_str(out, &peer.addr);
}

fn read_peer(reader: &mut PayloadReader<'_>, section: &'static str) -> Result<PeerRef, NetError> {
    let id = reader.u64(section)?;
    let addr = reader.str(section)?.to_string();
    Ok(PeerRef { id, addr })
}

fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(u8::from(value));
}

fn read_bool(reader: &mut PayloadReader<'_>, section: &'static str) -> Result<bool, NetError> {
    match reader.u8(section)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(NetError::corrupt(format!(
            "{section}: flag byte must be 0 or 1, found {other}"
        ))),
    }
}

fn put_search_spec(out: &mut Vec<u8>, spec: &SearchSpec) {
    put_str(out, &spec.to_json().to_pretty_string());
}

fn read_search_spec(reader: &mut PayloadReader<'_>) -> Result<SearchSpec, NetError> {
    let text = reader.str("search spec")?;
    let value = JsonValue::parse(text)
        .map_err(|e| NetError::corrupt(format!("search spec is not valid JSON: {e}")))?;
    SearchSpec::from_json(&value)
        .map_err(|e| NetError::corrupt(format!("search spec does not decode: {e}")))
}

impl Message {
    /// Encodes the message to `(frame type, payload bytes)`.
    pub fn encode(&self) -> (u16, Vec<u8>) {
        match self {
            Message::Hello(hello) => {
                let mut out = Vec::with_capacity(32);
                out.extend_from_slice(&hello.identity.to_le_bytes());
                out.extend_from_slice(&hello.node_count.to_le_bytes());
                out.extend_from_slice(&hello.edge_count.to_le_bytes());
                out.extend_from_slice(&hello.shard_count.to_le_bytes());
                out.extend_from_slice(&hello.engine_workers.to_le_bytes());
                (TYPE_HELLO, out)
            }
            Message::LoadSnapshot { path } => {
                let mut out = Vec::new();
                put_str(&mut out, path);
                (TYPE_LOAD_SNAPSHOT, out)
            }
            Message::SubmitBatch(request) => {
                let mut out = Vec::new();
                match request {
                    BatchRequest::Queries {
                        seed,
                        index_offset,
                        algorithms,
                        batch,
                    } => {
                        out.push(0u8);
                        out.extend_from_slice(&seed.to_le_bytes());
                        out.extend_from_slice(&index_offset.to_le_bytes());
                        out.extend_from_slice(&(algorithms.len() as u32).to_le_bytes());
                        for spec in algorithms {
                            put_search_spec(&mut out, spec);
                        }
                        out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
                        for job in batch.jobs() {
                            out.extend_from_slice(&(job.source.as_u32()).to_le_bytes());
                            out.extend_from_slice(&(job.algorithm as u32).to_le_bytes());
                            out.extend_from_slice(&job.ttl.to_le_bytes());
                        }
                    }
                    BatchRequest::SweepRange {
                        seed,
                        start,
                        end,
                        searches_per_point,
                        ttls,
                        search,
                    } => {
                        out.push(1u8);
                        out.extend_from_slice(&seed.to_le_bytes());
                        out.extend_from_slice(&start.to_le_bytes());
                        out.extend_from_slice(&end.to_le_bytes());
                        out.extend_from_slice(&searches_per_point.to_le_bytes());
                        out.extend_from_slice(&(ttls.len() as u32).to_le_bytes());
                        for &ttl in ttls {
                            out.extend_from_slice(&ttl.to_le_bytes());
                        }
                        put_search_spec(&mut out, search);
                    }
                }
                (TYPE_SUBMIT_BATCH, out)
            }
            Message::BatchResult { outcomes } => {
                let mut out = Vec::with_capacity(4 + 16 * outcomes.len());
                out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
                for outcome in outcomes {
                    out.extend_from_slice(&(outcome.hits as u64).to_le_bytes());
                    out.extend_from_slice(&(outcome.messages as u64).to_le_bytes());
                }
                (TYPE_BATCH_RESULT, out)
            }
            Message::Error { message } => {
                let mut out = Vec::new();
                put_str(&mut out, message);
                (TYPE_ERROR, out)
            }
            Message::Overlay(overlay) => match overlay {
                OverlayMessage::Join { origin, walks } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, origin);
                    out.extend_from_slice(&walks.to_le_bytes());
                    (TYPE_JOIN, out)
                }
                OverlayMessage::ForwardJoin { origin, ttl } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, origin);
                    out.extend_from_slice(&ttl.to_le_bytes());
                    (TYPE_FORWARD_JOIN, out)
                }
                OverlayMessage::Shuffle { from, peers, reply } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    out.extend_from_slice(&(peers.len() as u32).to_le_bytes());
                    for peer in peers {
                        put_peer(&mut out, peer);
                    }
                    put_bool(&mut out, *reply);
                    (TYPE_SHUFFLE, out)
                }
                OverlayMessage::Probe { from, nonce, ack } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    out.extend_from_slice(&nonce.to_le_bytes());
                    put_bool(&mut out, *ack);
                    (TYPE_PROBE, out)
                }
                OverlayMessage::Leave { from } => {
                    let mut out = Vec::new();
                    put_peer(&mut out, from);
                    (TYPE_LEAVE, out)
                }
            },
            Message::StatsRequest => (TYPE_STATS_REQUEST, Vec::new()),
            Message::StatsReport(snapshot) => {
                let mut out = Vec::new();
                out.extend_from_slice(&(snapshot.counters.len() as u32).to_le_bytes());
                for (name, value) in &snapshot.counters {
                    put_str(&mut out, name);
                    out.extend_from_slice(&value.to_le_bytes());
                }
                out.extend_from_slice(&(snapshot.histograms.len() as u32).to_le_bytes());
                for (name, hist) in &snapshot.histograms {
                    put_str(&mut out, name);
                    out.extend_from_slice(&hist.count.to_le_bytes());
                    out.extend_from_slice(&hist.sum.to_le_bytes());
                    out.extend_from_slice(&hist.max.to_le_bytes());
                    out.extend_from_slice(&(hist.buckets.len() as u32).to_le_bytes());
                    for &(bucket, samples) in &hist.buckets {
                        out.push(bucket);
                        out.extend_from_slice(&samples.to_le_bytes());
                    }
                }
                (TYPE_STATS_REPORT, out)
            }
        }
    }

    /// Decodes a message from a frame's `(type, payload)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownFrameType`] for unknown tags and
    /// [`NetError::Truncated`]/[`NetError::Corrupt`] when the payload does not decode
    /// exactly — trailing bytes included.
    pub fn decode(message_type: u16, payload: &[u8]) -> Result<Message, NetError> {
        let mut reader = PayloadReader::new(payload);
        let message = match message_type {
            TYPE_HELLO => {
                let hello = Hello {
                    identity: reader.u64("hello")?,
                    node_count: reader.u64("hello")?,
                    edge_count: reader.u64("hello")?,
                    shard_count: reader.u32("hello")?,
                    engine_workers: reader.u32("hello")?,
                };
                Message::Hello(hello)
            }
            TYPE_LOAD_SNAPSHOT => Message::LoadSnapshot {
                path: reader.str("load snapshot")?.to_string(),
            },
            TYPE_SUBMIT_BATCH => {
                let request = match reader.u8("batch request")? {
                    0 => {
                        let seed = reader.u64("batch request")?;
                        let index_offset = reader.u64("batch request")?;
                        let algorithm_count = reader.u32("algorithm table")? as usize;
                        // Each encoded algorithm is at least a 4-byte length prefix.
                        reader.expect_records(algorithm_count, 4, "algorithm table")?;
                        let mut algorithms = Vec::with_capacity(algorithm_count);
                        for _ in 0..algorithm_count {
                            algorithms.push(read_search_spec(&mut reader)?);
                        }
                        let job_count = reader.u32("job list")? as usize;
                        reader.expect_records(job_count, 12, "job list")?;
                        let mut batch = QueryBatch::new();
                        for _ in 0..job_count {
                            let source = reader.u32("job list")?;
                            let algorithm = reader.u32("job list")? as usize;
                            let ttl = reader.u32("job list")?;
                            batch.push(sfo_graph::NodeId::new(source as usize), algorithm, ttl);
                        }
                        BatchRequest::Queries {
                            seed,
                            index_offset,
                            algorithms,
                            batch,
                        }
                    }
                    1 => {
                        let seed = reader.u64("batch request")?;
                        let start = reader.u64("batch request")?;
                        let end = reader.u64("batch request")?;
                        let searches_per_point = reader.u64("batch request")?;
                        let ttl_count = reader.u32("ttl grid")? as usize;
                        reader.expect_records(ttl_count, 4, "ttl grid")?;
                        let mut ttls = Vec::with_capacity(ttl_count);
                        for _ in 0..ttl_count {
                            ttls.push(reader.u32("ttl grid")?);
                        }
                        let search = read_search_spec(&mut reader)?;
                        BatchRequest::SweepRange {
                            seed,
                            start,
                            end,
                            searches_per_point,
                            ttls,
                            search,
                        }
                    }
                    other => {
                        return Err(NetError::corrupt(format!(
                            "unknown batch request kind {other}"
                        )))
                    }
                };
                Message::SubmitBatch(request)
            }
            TYPE_BATCH_RESULT => {
                let count = reader.u32("batch result")? as usize;
                reader.expect_records(count, 16, "batch result")?;
                let mut outcomes = Vec::with_capacity(count);
                for _ in 0..count {
                    let hits = reader.u64("batch result")?;
                    let messages = reader.u64("batch result")?;
                    outcomes.push(SearchOutcome {
                        hits: usize::try_from(hits)
                            .map_err(|_| NetError::corrupt("hit count exceeds usize"))?,
                        messages: usize::try_from(messages)
                            .map_err(|_| NetError::corrupt("message count exceeds usize"))?,
                    });
                }
                Message::BatchResult { outcomes }
            }
            TYPE_ERROR => Message::Error {
                message: reader.str("error")?.to_string(),
            },
            TYPE_JOIN => Message::Overlay(OverlayMessage::Join {
                origin: read_peer(&mut reader, "join")?,
                walks: reader.u32("join")?,
            }),
            TYPE_FORWARD_JOIN => Message::Overlay(OverlayMessage::ForwardJoin {
                origin: read_peer(&mut reader, "forward join")?,
                ttl: reader.u32("forward join")?,
            }),
            TYPE_SHUFFLE => {
                let from = read_peer(&mut reader, "shuffle")?;
                let count = reader.u32("shuffle sample")? as usize;
                // Each encoded peer is at least an 8-byte id plus a 4-byte length.
                reader.expect_records(count, 12, "shuffle sample")?;
                let mut peers = Vec::with_capacity(count);
                for _ in 0..count {
                    peers.push(read_peer(&mut reader, "shuffle sample")?);
                }
                let reply = read_bool(&mut reader, "shuffle")?;
                Message::Overlay(OverlayMessage::Shuffle { from, peers, reply })
            }
            TYPE_PROBE => Message::Overlay(OverlayMessage::Probe {
                from: read_peer(&mut reader, "probe")?,
                nonce: reader.u64("probe")?,
                ack: read_bool(&mut reader, "probe")?,
            }),
            TYPE_LEAVE => Message::Overlay(OverlayMessage::Leave {
                from: read_peer(&mut reader, "leave")?,
            }),
            TYPE_STATS_REQUEST => Message::StatsRequest,
            TYPE_STATS_REPORT => {
                let counter_count = reader.u32("stats counters")? as usize;
                // Each counter is at least a 4-byte name length plus an 8-byte value.
                reader.expect_records(counter_count, 12, "stats counters")?;
                let mut counters = Vec::with_capacity(counter_count);
                for _ in 0..counter_count {
                    let name = reader.str("stats counters")?.to_string();
                    let value = reader.u64("stats counters")?;
                    counters.push((name, value));
                }
                let histogram_count = reader.u32("stats histograms")? as usize;
                // At least a 4-byte name length, count/sum/max, and a bucket count.
                reader.expect_records(histogram_count, 32, "stats histograms")?;
                let mut histograms = Vec::with_capacity(histogram_count);
                for _ in 0..histogram_count {
                    let name = reader.str("stats histograms")?.to_string();
                    let count = reader.u64("stats histograms")?;
                    let sum = reader.u64("stats histograms")?;
                    let max = reader.u64("stats histograms")?;
                    let bucket_count = reader.u32("stats buckets")? as usize;
                    reader.expect_records(bucket_count, 9, "stats buckets")?;
                    let mut buckets = Vec::with_capacity(bucket_count);
                    let mut previous: Option<u8> = None;
                    for _ in 0..bucket_count {
                        let bucket = reader.u8("stats buckets")?;
                        if bucket as usize >= BUCKET_COUNT {
                            return Err(NetError::corrupt(format!(
                                "stats buckets: bucket index {bucket} out of range"
                            )));
                        }
                        if previous.is_some_and(|p| p >= bucket) {
                            return Err(NetError::corrupt(
                                "stats buckets: bucket indices must be strictly ascending",
                            ));
                        }
                        previous = Some(bucket);
                        let samples = reader.u64("stats buckets")?;
                        buckets.push((bucket, samples));
                    }
                    histograms.push((
                        name,
                        HistogramSnapshot {
                            count,
                            sum,
                            max,
                            buckets,
                        },
                    ));
                }
                Message::StatsReport(MetricsSnapshot {
                    counters,
                    histograms,
                })
            }
            other => return Err(NetError::UnknownFrameType { found: other }),
        };
        reader.finish("message payload")?;
        Ok(message)
    }
}

/// Writes one message as a frame.
///
/// # Errors
///
/// Returns [`NetError::Io`] when the underlying write fails.
pub fn send_message(writer: &mut impl std::io::Write, message: &Message) -> Result<(), NetError> {
    let (message_type, payload) = message.encode();
    crate::frame::write_frame(writer, message_type, &payload)
}

/// Reads one message from a frame.
///
/// # Errors
///
/// Every framing and decoding failure of [`crate::frame::read_frame`] and
/// [`Message::decode`].
pub fn recv_message(reader: &mut impl std::io::Read) -> Result<Message, NetError> {
    recv_message_counted(reader).map(|(message, _)| message)
}

/// Total frame size (header + payload + checksum trailer) of a payload of `len` bytes.
fn frame_bytes(len: usize) -> u64 {
    (crate::frame::FRAME_HEADER_LEN + len + crate::frame::FRAME_TRAILER_LEN) as u64
}

/// [`send_message`], also returning the total frame bytes written — the hook the
/// server's byte accounting uses.
///
/// # Errors
///
/// Returns [`NetError::Io`] when the underlying write fails.
pub fn send_message_counted(
    writer: &mut impl std::io::Write,
    message: &Message,
) -> Result<u64, NetError> {
    let (message_type, payload) = message.encode();
    crate::frame::write_frame(writer, message_type, &payload)?;
    Ok(frame_bytes(payload.len()))
}

/// [`recv_message`], also returning the total frame bytes consumed — the hook the
/// server's byte accounting uses.
///
/// # Errors
///
/// Every framing and decoding failure of [`crate::frame::read_frame`] and
/// [`Message::decode`].
pub fn recv_message_counted(reader: &mut impl std::io::Read) -> Result<(Message, u64), NetError> {
    let (message_type, payload) = crate::frame::read_frame(reader)?;
    let bytes = frame_bytes(payload.len());
    Ok((Message::decode(message_type, &payload)?, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_graph::NodeId;

    fn sample_messages() -> Vec<Message> {
        let mut batch = QueryBatch::new();
        batch.push(NodeId::new(3), 0, 4);
        batch.push(NodeId::new(9), 1, 2);
        vec![
            Message::Hello(Hello {
                identity: 0xFEED_F00D_DEAD_BEEF,
                node_count: 10_000,
                edge_count: 20_000,
                shard_count: 4,
                engine_workers: 8,
            }),
            Message::LoadSnapshot {
                path: "topologies/pa_m2_kc10.sfos".to_string(),
            },
            Message::SubmitBatch(BatchRequest::Queries {
                seed: 7,
                index_offset: 40,
                algorithms: vec![
                    SearchSpec::Flooding,
                    SearchSpec::NormalizedFlooding { k_min: Some(2) },
                ],
                batch,
            }),
            Message::SubmitBatch(BatchRequest::SweepRange {
                seed: 11,
                start: 30,
                end: 60,
                searches_per_point: 30,
                ttls: vec![1, 2, 4, 8],
                search: SearchSpec::RwNormalizedToNf { k_min: None },
            }),
            Message::BatchResult {
                outcomes: vec![SearchOutcome::new(5, 9), SearchOutcome::new(0, 1)],
            },
            Message::Error {
                message: "no snapshot loaded".to_string(),
            },
            Message::Overlay(OverlayMessage::Join {
                origin: PeerRef::new(3, "127.0.0.1:9100"),
                walks: 2,
            }),
            Message::Overlay(OverlayMessage::ForwardJoin {
                origin: PeerRef::new(3, "127.0.0.1:9100"),
                ttl: 7,
            }),
            Message::Overlay(OverlayMessage::Shuffle {
                from: PeerRef::new(1, "127.0.0.1:9101"),
                peers: vec![
                    PeerRef::new(4, "127.0.0.1:9104"),
                    PeerRef::new(5, "127.0.0.1:9105"),
                ],
                reply: true,
            }),
            Message::Overlay(OverlayMessage::Probe {
                from: PeerRef::new(2, "127.0.0.1:9102"),
                nonce: 0xA5A5_5A5A_0F0F_F0F0,
                ack: false,
            }),
            Message::Overlay(OverlayMessage::Leave {
                from: PeerRef::new(9, "127.0.0.1:9109"),
            }),
            Message::StatsRequest,
            Message::StatsReport(MetricsSnapshot {
                counters: vec![
                    ("engine.jobs".to_string(), 4096),
                    ("net.connections".to_string(), 3),
                ],
                histograms: vec![(
                    "net.request_micros".to_string(),
                    HistogramSnapshot {
                        count: 5,
                        sum: 700,
                        max: 300,
                        buckets: vec![(6, 4), (9, 1)],
                    },
                )],
            }),
            Message::StatsReport(MetricsSnapshot::default()),
        ]
    }

    #[test]
    fn every_message_round_trips_through_its_frame() {
        for message in sample_messages() {
            let (message_type, payload) = message.encode();
            let back = Message::decode(message_type, &payload).unwrap();
            assert_eq!(back, message);

            // And through a real byte stream.
            let mut wire = Vec::new();
            send_message(&mut wire, &message).unwrap();
            assert_eq!(recv_message(&mut wire.as_slice()).unwrap(), message);
        }
    }

    #[test]
    fn unknown_types_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Message::decode(99, &[]),
            Err(NetError::UnknownFrameType { found: 99 })
        ));
        let (message_type, mut payload) = Message::Error {
            message: "x".to_string(),
        }
        .encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(message_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn lying_inner_counts_are_bounded_before_allocation() {
        // A BatchResult claiming u32::MAX outcomes in a 4-byte payload must fail on the
        // record bound, not allocate a 64 GiB vector.
        let payload = u32::MAX.to_le_bytes().to_vec();
        assert!(matches!(
            Message::decode(TYPE_BATCH_RESULT, &payload),
            Err(NetError::Truncated { .. })
        ));
        // Same for a job list.
        let mut payload = vec![0u8];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // no algorithms
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // a lie
        assert!(matches!(
            Message::decode(TYPE_SUBMIT_BATCH, &payload),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn overlay_frames_reject_bad_flags_and_lying_counts() {
        // A probe whose ack byte is neither 0 nor 1.
        let (frame_type, mut payload) = Message::Overlay(OverlayMessage::Probe {
            from: PeerRef::new(1, "127.0.0.1:9100"),
            nonce: 9,
            ack: true,
        })
        .encode();
        *payload.last_mut().unwrap() = 2;
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));

        // A shuffle claiming u32::MAX peers in a tiny payload must fail on the record
        // bound, not allocate.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        put_str(&mut payload, "127.0.0.1:9100");
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Message::decode(TYPE_SHUFFLE, &payload),
            Err(NetError::Truncated { .. })
        ));
    }

    #[test]
    fn stats_reports_reject_lying_counts_and_bad_buckets() {
        // A report claiming u32::MAX counters in an 8-byte payload must fail on the
        // record bound, not allocate.
        let mut payload = u32::MAX.to_le_bytes().to_vec();
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Message::decode(TYPE_STATS_REPORT, &payload),
            Err(NetError::Truncated { .. })
        ));

        fn report_with_buckets(buckets: Vec<(u8, u64)>) -> (u16, Vec<u8>) {
            Message::StatsReport(MetricsSnapshot {
                counters: vec![],
                histograms: vec![(
                    "h".to_string(),
                    HistogramSnapshot {
                        count: 2,
                        sum: 2,
                        max: 1,
                        buckets,
                    },
                )],
            })
            .encode()
        }

        // A bucket index past the histogram's range is corrupt.
        let (frame_type, payload) = report_with_buckets(vec![(200, 2)]);
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
        // Out-of-order buckets are corrupt too: snapshots are canonical.
        let (frame_type, payload) = report_with_buckets(vec![(5, 1), (3, 1)]);
        assert!(matches!(
            Message::decode(frame_type, &payload),
            Err(NetError::Corrupt { .. })
        ));
        // A stats request carries no payload at all.
        assert!(matches!(
            Message::decode(TYPE_STATS_REQUEST, &[1]),
            Err(NetError::Corrupt { .. })
        ));
    }

    #[test]
    fn malformed_search_specs_are_corrupt_not_panics() {
        let mut payload = vec![1u8];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes()); // no ttls
        put_str(&mut payload, "{\"algorithm\": \"teleportation\"}");
        assert!(matches!(
            Message::decode(TYPE_SUBMIT_BATCH, &payload),
            Err(NetError::Corrupt { .. })
        ));
    }
}
