//! Wire-side support for placed execution: the canonical shard partition, the
//! `SearchSpec` → [`PlacedAlgorithm`] compilation, semantic validation of decoded
//! frontiers, and the shard-shipment builder.
//!
//! Placement never ships routing tables. The partition is *canonical arithmetic*:
//! shard `i` of `s` over `n` nodes owns [`shard_range`]`(n, s, i)`, the same
//! contiguous near-equal split [`sfo_engine::ShardedCsr`] computes — so every
//! endpoint (dispatcher, shard host, test oracle) derives ownership from three
//! integers and can never disagree.

use crate::message::ShardPayload;
use crate::NetError;
use rand::Rng;
use sfo_engine::{placed_start, PlacedAlgorithm, PlacedState, NO_NODE};
use sfo_graph::CsrGraph;
use sfo_scenario::SearchSpec;
use std::ops::Range;

/// The node range shard `index` of `shard_count` owns over `node_count` nodes: the
/// first `node_count % shard_count` shards hold one extra node. Identical to the
/// [`sfo_engine::ShardedCsr`] partition whenever `shard_count <= node_count`; beyond
/// that, surplus shards own empty ranges.
///
/// # Panics
///
/// Panics if `shard_count` is zero or `index` is not a shard index.
pub fn shard_range(node_count: usize, shard_count: usize, index: usize) -> Range<usize> {
    assert!(
        shard_count > 0 && index < shard_count,
        "shard {index} of {shard_count} is not a placement"
    );
    let base = node_count / shard_count;
    let big = node_count % shard_count;
    let start = index * base + index.min(big);
    start..start + base + usize::from(index < big)
}

/// The shard owning `node` under the canonical partition — the placed routing
/// function.
///
/// # Panics
///
/// Panics if `shard_count` is zero or `node` is out of bounds.
pub fn shard_of(node: usize, node_count: usize, shard_count: usize) -> usize {
    assert!(
        shard_count > 0 && node < node_count,
        "node {node} out of bounds for a {node_count}-node snapshot"
    );
    let base = node_count / shard_count;
    let big = node_count % shard_count;
    let cut = big * (base + 1);
    if node < cut {
        node / (base + 1)
    } else {
        big + (node - cut) / base
    }
}

/// Compiles a [`SearchSpec`] to its placed equivalent, resolving `k_min: None` to the
/// topology's `m` exactly as [`SearchSpec::build_for`] does.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] for expanding-ring (its rings restart whole floods)
/// and the degree-biased walk (it reads neighbor *degrees*, rows no shard host
/// owns) — the two shapes placed execution cannot route row by row.
pub fn placed_algorithm(search: &SearchSpec, m: usize) -> Result<PlacedAlgorithm, NetError> {
    match *search {
        SearchSpec::Flooding => Ok(PlacedAlgorithm::Flooding),
        SearchSpec::NormalizedFlooding { k_min } => Ok(PlacedAlgorithm::NormalizedFlooding {
            k_min: k_min.unwrap_or(m).max(1),
        }),
        SearchSpec::ProbabilisticFlooding { p } => Ok(PlacedAlgorithm::ProbabilisticFlooding { p }),
        SearchSpec::RandomWalk => Ok(PlacedAlgorithm::RandomWalk),
        SearchSpec::MultipleRandomWalk { walkers } => {
            Ok(PlacedAlgorithm::MultipleRandomWalk { walkers })
        }
        SearchSpec::RwNormalizedToNf { k_min } => Ok(PlacedAlgorithm::RwNormalizedToNf {
            k_min: k_min.unwrap_or(m).max(1),
        }),
        SearchSpec::ExpandingRing { .. } | SearchSpec::DegreeBiasedWalk => {
            Err(NetError::protocol(format!(
                "search {:?} is not supported under placed execution; run it against \
                 whole-snapshot workers",
                search.name()
            )))
        }
    }
}

/// Checks a decoded frontier against the id space of the snapshot it claims to run
/// on — every node reference in bounds and every visited word inside the bitset —
/// so resuming it can never panic the host.
///
/// # Errors
///
/// Returns [`NetError::Protocol`] naming the out-of-range field.
pub fn validate_state(state: &PlacedState, node_count: usize) -> Result<(), NetError> {
    let node_ok = |node: u32| (node as usize) < node_count;
    let from_ok = |node: u32| node == NO_NODE || node_ok(node);
    if !node_ok(state.source) {
        return Err(NetError::protocol(format!(
            "frontier source {} out of bounds for {node_count} nodes",
            state.source
        )));
    }
    if !node_ok(state.current) || !from_ok(state.previous) {
        return Err(NetError::protocol(format!(
            "frontier walker position {}/{} out of bounds for {node_count} nodes",
            state.current, state.previous
        )));
    }
    if let Some(&(node, from, _)) = state
        .queue
        .iter()
        .find(|&&(node, from, _)| !node_ok(node) || !from_ok(from))
    {
        return Err(NetError::protocol(format!(
            "frontier queue entry ({node}, {from}) out of bounds for {node_count} nodes"
        )));
    }
    let words = node_count.div_ceil(64);
    if let Some(&(word, _)) = state
        .visited
        .iter()
        .find(|&&(word, _)| word as usize >= words)
    {
        return Err(NetError::protocol(format!(
            "frontier visited word {word} out of bounds for {node_count} nodes"
        )));
    }
    Ok(())
}

/// Cuts shard `index` of `shard_count` out of `csr` as the shipment for its host.
///
/// # Panics
///
/// Panics if `shard_count` is zero or `index` is not a shard index.
pub fn shard_payload(
    csr: &CsrGraph,
    identity: u64,
    shard_count: usize,
    index: usize,
) -> ShardPayload {
    ShardPayload {
        identity,
        shard_index: index as u32,
        shard_count: shard_count as u32,
        slice: csr.extract_slice(shard_range(csr.node_count(), shard_count, index)),
    }
}

/// The initial [`PlacedState`] of global sweep job `global`: the serial job prelude
/// (per-job RNG stream, one source draw) followed by [`placed_start`], leaving the
/// RNG stream exactly where the serial algorithm would first read it.
pub(crate) fn sweep_job_state(
    algorithm: PlacedAlgorithm,
    seed: u64,
    global: usize,
    ttl: u32,
    node_count: usize,
) -> PlacedState {
    let mut rng = sfo_engine::job_rng(seed, global);
    let source = sfo_graph::NodeId::new(rng.gen_range(0..node_count));
    placed_start(algorithm, source, ttl, rng.state_words())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_range_partitions_exactly_and_matches_sharded_csr() {
        for (n, s) in [(10usize, 3usize), (500, 7), (6, 6), (5, 8), (0, 2), (1, 1)] {
            let mut covered = 0usize;
            for i in 0..s {
                let range = shard_range(n, s, i);
                assert_eq!(range.start, covered, "shard {i} of {s} over {n}");
                covered = range.end;
                for node in range.clone() {
                    assert_eq!(
                        shard_of(node, n, s),
                        i,
                        "node {node} ({n} nodes, {s} shards)"
                    );
                }
            }
            assert_eq!(covered, n);
        }
        // Against the engine's partition, which clamps instead of allowing empties.
        let csr = sfo_graph::generators::ring_graph(23, 2).unwrap().freeze();
        for s in [1usize, 2, 5, 7, 23] {
            let sharded = sfo_engine::ShardedCsr::from_csr(&csr, s);
            for (i, shard) in sharded.shards().iter().enumerate() {
                assert_eq!(shard.node_range(), shard_range(23, s, i));
            }
        }
    }

    #[test]
    fn placed_algorithm_resolves_k_min_and_refuses_row_hungry_shapes() {
        assert_eq!(
            placed_algorithm(&SearchSpec::NormalizedFlooding { k_min: None }, 3).unwrap(),
            PlacedAlgorithm::NormalizedFlooding { k_min: 3 }
        );
        assert_eq!(
            placed_algorithm(&SearchSpec::RwNormalizedToNf { k_min: Some(5) }, 3).unwrap(),
            PlacedAlgorithm::RwNormalizedToNf { k_min: 5 }
        );
        for unsupported in [
            SearchSpec::ExpandingRing {
                initial_ttl: 1,
                increment: 1,
            },
            SearchSpec::DegreeBiasedWalk,
        ] {
            assert!(matches!(
                placed_algorithm(&unsupported, 2),
                Err(NetError::Protocol { .. })
            ));
        }
    }

    #[test]
    fn state_validation_catches_every_out_of_range_field() {
        let base = placed_start(
            PlacedAlgorithm::Flooding,
            sfo_graph::NodeId::new(3),
            2,
            [1, 2, 3, 4],
        );
        assert!(validate_state(&base, 10).is_ok());
        let mut bad = base.clone();
        bad.source = 10;
        assert!(validate_state(&bad, 10).is_err());
        let mut bad = base.clone();
        bad.current = 99;
        assert!(validate_state(&bad, 10).is_err());
        let mut bad = base.clone();
        bad.queue.push((3, 11, 1));
        assert!(validate_state(&bad, 10).is_err());
        let mut bad = base.clone();
        bad.visited.push((1, 1));
        assert!(validate_state(&bad, 10).is_err());
        assert!(validate_state(&base, 4).is_ok());
        assert!(validate_state(&base, 3).is_err());
    }
}
