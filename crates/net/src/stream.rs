//! Transport bootstrap: one address grammar over TCP and Unix-domain sockets.
//!
//! `sfo-net` endpoints name peers with plain strings: `host:port` binds or dials TCP,
//! `unix:/path/to.sock` a Unix-domain socket (absent on non-Unix builds, where the
//! prefix is a typed error). The daemon and the dispatcher both speak through
//! [`NetStream`], so every protocol path is transport-agnostic.

use crate::NetError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};

/// Prefix selecting a Unix-domain socket address.
pub const UNIX_PREFIX: &str = "unix:";

/// One established connection, TCP or Unix.
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Dials `addr` (`host:port`, or `unix:/path`).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the dial fails and [`NetError::Protocol`] for a
    /// `unix:` address on a platform without Unix sockets.
    pub fn connect(addr: &str) -> Result<Self, NetError> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                return UnixStream::connect(path)
                    .map(NetStream::Unix)
                    .map_err(|e| NetError::io(format!("connect {addr}"), &e));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(NetError::protocol(
                    "unix-socket addresses are not supported on this platform",
                ));
            }
        }
        TcpStream::connect(addr)
            .map(NetStream::Tcp)
            .map_err(|e| NetError::io(format!("connect {addr}"), &e))
    }

    /// Clones the underlying socket handle, so one thread can read while another
    /// writes — the worker daemon splits each connection into a reader and an
    /// executor this way, and the loadtest driver pairs a sender with a receiver.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the operating system refuses to duplicate the
    /// handle.
    pub fn try_clone(&self) -> Result<NetStream, NetError> {
        match self {
            NetStream::Tcp(stream) => stream.try_clone().map(NetStream::Tcp),
            #[cfg(unix)]
            NetStream::Unix(stream) => stream.try_clone().map(NetStream::Unix),
        }
        .map_err(|e| NetError::io("clone stream", &e))
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            NetStream::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            NetStream::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            NetStream::Unix(stream) => stream.flush(),
        }
    }
}

/// One bound listening socket, TCP or Unix.
#[derive(Debug)]
pub enum NetListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (the bound path is kept for display and cleanup).
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl NetListener {
    /// Binds `addr` (`host:port` — port 0 picks a free one — or `unix:/path`; a stale
    /// socket file at the path is removed first).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the bind fails and [`NetError::Protocol`] for a
    /// `unix:` address on a platform without Unix sockets.
    pub fn bind(addr: &str) -> Result<Self, NetError> {
        if let Some(path) = addr.strip_prefix(UNIX_PREFIX) {
            #[cfg(unix)]
            {
                // A previous daemon that died without cleanup leaves the socket file
                // behind; re-binding it is the expected operator workflow.
                if std::path::Path::new(path).exists() {
                    std::fs::remove_file(path)
                        .map_err(|e| NetError::io(format!("unlink stale socket {path}"), &e))?;
                }
                return UnixListener::bind(path)
                    .map(|l| NetListener::Unix(l, path.to_string()))
                    .map_err(|e| NetError::io(format!("bind {addr}"), &e));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(NetError::protocol(
                    "unix-socket addresses are not supported on this platform",
                ));
            }
        }
        TcpListener::bind(addr)
            .map(NetListener::Tcp)
            .map_err(|e| NetError::io(format!("bind {addr}"), &e))
    }

    /// The bound address in the same grammar [`NetStream::connect`] accepts — for a
    /// TCP bind to port 0, this is how callers learn the real port.
    pub fn local_addr(&self) -> String {
        match self {
            NetListener::Tcp(listener) => listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string()),
            #[cfg(unix)]
            NetListener::Unix(_, path) => format!("{UNIX_PREFIX}{path}"),
        }
    }

    /// Blocks until one connection arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the accept fails.
    pub fn accept(&self) -> Result<NetStream, NetError> {
        self.accept_peer().map(|(stream, _)| stream)
    }

    /// Blocks until one connection arrives, returning the peer's address for logging
    /// and diagnostics. TCP peers report their real `ip:port`; Unix-domain peers are
    /// unnamed, so the listener's own `unix:/path` stands in.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the accept fails.
    pub fn accept_peer(&self) -> Result<(NetStream, String), NetError> {
        match self {
            NetListener::Tcp(listener) => listener
                .accept()
                .map(|(stream, peer)| (NetStream::Tcp(stream), peer.to_string()))
                .map_err(|e| NetError::io("accept", &e)),
            #[cfg(unix)]
            NetListener::Unix(listener, path) => listener
                .accept()
                .map(|(stream, _)| (NetStream::Unix(stream), format!("{UNIX_PREFIX}{path}")))
                .map_err(|e| NetError::io("accept", &e)),
        }
    }
}

#[cfg(unix)]
impl Drop for NetListener {
    fn drop(&mut self) {
        if let NetListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_bind_connect_round_trip() {
        let listener = NetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let client = std::thread::spawn(move || {
            let mut stream = NetStream::connect(&addr).unwrap();
            stream.write_all(b"ping").unwrap();
        });
        let mut server_side = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        client.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_connect_round_trip_and_cleanup() {
        let path = std::env::temp_dir().join(format!("sfo-net-test-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let listener = NetListener::bind(&addr).unwrap();
        assert_eq!(listener.local_addr(), addr);
        // Rebinding over a stale file is the documented operator workflow.
        let client_addr = addr.clone();
        let client = std::thread::spawn(move || {
            let mut stream = NetStream::connect(&client_addr).unwrap();
            stream.write_all(b"unix").unwrap();
        });
        let mut server_side = listener.accept().unwrap();
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"unix");
        client.join().unwrap();
        drop(server_side);
        drop(listener);
        assert!(!path.exists(), "socket file must be cleaned up on drop");
    }

    #[test]
    fn accept_peer_reports_the_tcp_peer_address() {
        let listener = NetListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let client = std::thread::spawn(move || {
            let stream = NetStream::connect(&addr).unwrap();
            // Hold the connection open until the accept side has seen it.
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(stream);
        });
        let (_stream, peer) = listener.accept_peer().unwrap();
        assert!(
            peer.starts_with("127.0.0.1:"),
            "peer address should be the client's ip:port, got {peer}"
        );
        client.join().unwrap();
    }

    #[test]
    fn unreachable_addresses_are_io_errors() {
        assert!(matches!(
            NetStream::connect("127.0.0.1:1"),
            Err(NetError::Io { .. })
        ));
    }
}
