//! The deterministic in-process transport and the end-to-end growth run.
//!
//! [`grow`] arrives `peers` peers on a fixed schedule, runs each through the protocol
//! over a tick-synchronous simulated network, applies a session-model
//! departure/crash schedule, and freezes the surviving overlay into an
//! [`sfo_graph::Graph`].
//!
//! # Determinism
//!
//! Everything is derived from `(seed, label)` with the workspace's stream discipline:
//!
//! * the **master stream** `stream_rng(seed, label_salt(label), 0)` draws the
//!   arrival/departure schedule, then one final `u64` — the `sweep_seed` recorded in
//!   snapshot provenance, exactly mirroring the generator-side
//!   `sfo snapshot build` contract;
//! * **peer `i`** owns `stream_rng(seed, label_salt(label) ^ PEER_STREAM_SALT, i)` and
//!   draws nothing else.
//!
//! Delivery is tick-synchronous FIFO: a message sent at tick `t` is readable at
//! `t + 1`; peers pump in arrival-index order. With randomness and scheduling both
//! fixed, the same seed grows a byte-identical topology — the repo's headline
//! invariant, extended from offline generation to protocol execution.

use crate::protocol::{Outbox, OverlayMessage, Peer, PeerRef, ProtocolConfig};
use crate::transport::OverlayTransport;
use crate::{OverlayError, Result};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use sfo_graph::{Graph, NodeId};
use sfo_search::experiment::{label_salt, stream_rng};
use sfo_sim::churn::SessionModel;

/// Salt separating per-peer protocol streams from the master schedule stream
/// (ASCII `"PEERSALT"`), in the tradition of the scenario layer's trace salt.
pub const PEER_STREAM_SALT: u64 = 0x5045_4552_5341_4c54;

/// Configuration of one live growth run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveConfig {
    /// Total number of peers that arrive over the run.
    pub peers: usize,
    /// Ticks between consecutive arrivals (0 = everyone arrives at tick 0).
    pub arrival_spacing: u64,
    /// Session-length model; a peer whose session ends before the run does departs.
    pub sessions: SessionModel,
    /// Probability a departure is a crash (no Leave messages) instead of graceful.
    pub crash_fraction: f64,
    /// Extra ticks after the last arrival, so walks, shuffles, and repairs settle.
    pub settle: u64,
    /// Protocol parameters every peer runs with.
    pub protocol: ProtocolConfig,
}

impl LiveConfig {
    /// A small, fast-settling configuration for tests and examples.
    pub fn small() -> Self {
        LiveConfig {
            peers: 48,
            arrival_spacing: 2,
            sessions: SessionModel::Fixed { length: 1.0e6 },
            crash_fraction: 0.0,
            settle: 64,
            protocol: ProtocolConfig::small(),
        }
    }

    /// The provenance label of this run — the live analogue of a generator curve
    /// label, and the salt every stream of the run is derived from.
    pub fn label(&self) -> String {
        format!(
            "live, m={}, k_c={}",
            self.protocol.attach_walks, self.protocol.active_cap
        )
    }

    /// Checks the schedule and protocol parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        self.protocol.validate()?;
        if self.peers < 2 {
            return Err(OverlayError::invalid("a live run needs at least 2 peers"));
        }
        if !(0.0..=1.0).contains(&self.crash_fraction) {
            return Err(OverlayError::invalid(format!(
                "crash_fraction must lie in [0, 1], got {}",
                self.crash_fraction
            )));
        }
        if self.settle == 0 {
            return Err(OverlayError::invalid(
                "settle must be at least 1 tick (messages sent by the last arrival \
                 need a tick to deliver)",
            ));
        }
        self.sessions
            .validate()
            .map_err(|e| OverlayError::invalid(e.to_string()))
    }
}

/// Counters describing what a growth run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LiveStats {
    /// Peers that arrived (always `config.peers`).
    pub arrivals: usize,
    /// Graceful departures executed before the run ended.
    pub leaves: usize,
    /// Crashes executed before the run ended.
    pub crashes: usize,
    /// Peers still alive when the overlay was frozen.
    pub final_peers: usize,
    /// Mutual overlay links in the frozen graph.
    pub edges: usize,
    /// Maximum degree in the frozen graph (never exceeds `k_c`).
    pub max_degree: usize,
    /// Total protocol messages delivered.
    pub messages: u64,
    /// Ticks simulated.
    pub ticks: u64,
}

/// Everything a growth run produces.
#[derive(Debug, Clone)]
pub struct LiveOutcome {
    /// The frozen emergent overlay: surviving peers renumbered densely by arrival
    /// order, edges where both endpoints list each other.
    pub graph: Graph,
    /// Run counters.
    pub stats: LiveStats,
    /// The master stream's next draw after growth — recorded as the snapshot's
    /// `sweep_seed` so measurement batches over the grown topology are reproducible.
    pub sweep_seed: u64,
}

/// The per-peer endpoint of the simulated network: a drained inbox plus a shared
/// staging buffer that becomes next tick's inboxes.
struct SimEndpoint<'a> {
    inbox: Vec<OverlayMessage>,
    staged: &'a mut Outbox,
}

impl OverlayTransport for SimEndpoint<'_> {
    fn send(&mut self, to: &PeerRef, msg: OverlayMessage) -> Result<()> {
        self.staged.push((to.clone(), msg));
        Ok(())
    }

    fn recv(&mut self) -> Result<Vec<OverlayMessage>> {
        Ok(std::mem::take(&mut self.inbox))
    }
}

/// What the schedule does to a peer at a given tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Churn {
    Arrive(usize),
    Leave(usize),
    Crash(usize),
}

/// Runs the whole protocol execution for `config` and freezes the emergent overlay.
///
/// See the module docs for the stream discipline; `seed` plays the same role as a
/// scenario seed.
///
/// # Errors
///
/// Returns [`OverlayError::InvalidConfig`] when `config` does not validate.
pub fn grow(config: &LiveConfig, seed: u64) -> Result<LiveOutcome> {
    grow_metered(config, seed, None)
}

/// [`grow`] with optional telemetry: every peer of the cohort shares the given
/// [`OverlayMetrics`](crate::protocol::OverlayMetrics), so the registry behind it
/// aggregates messages, probe RTTs, and
/// failure-detection events across the whole run. The outcome is byte-identical to
/// [`grow`] — telemetry never draws from a stream or reorders the schedule.
///
/// # Errors
///
/// As [`grow`].
pub fn grow_metered(
    config: &LiveConfig,
    seed: u64,
    metrics: Option<crate::protocol::OverlayMetrics>,
) -> Result<LiveOutcome> {
    config.validate()?;
    let salt = label_salt(&config.label());
    let mut master = stream_rng(seed, salt, 0);

    // Draw the whole churn schedule up front on the master stream: arrival ticks are
    // fixed by spacing; each arrival draws (session length, crash?) in order.
    let last_arrival = config.arrival_spacing * (config.peers as u64 - 1);
    let end_tick = last_arrival + config.settle;
    let mut events: Vec<(u64, Churn)> = Vec::with_capacity(config.peers * 2);
    for index in 0..config.peers {
        let arrival = config.arrival_spacing * index as u64;
        events.push((arrival, Churn::Arrive(index)));
        let session = config.sessions.sample(&mut master).max(1);
        let crash = master.gen_bool(config.crash_fraction);
        let departure = arrival.saturating_add(session);
        if departure <= end_tick {
            events.push((
                departure,
                if crash {
                    Churn::Crash(index)
                } else {
                    Churn::Leave(index)
                },
            ));
        }
    }
    // Stable by tick: same-tick events keep schedule order (arrivals were pushed
    // before the departures they precede logically).
    events.sort_by_key(|(tick, _)| *tick);

    let mut peers: Vec<Option<Peer>> = (0..config.peers).map(|_| None).collect();
    let mut inboxes: Vec<Vec<OverlayMessage>> = (0..config.peers).map(|_| Vec::new()).collect();
    let mut staged = Outbox::new();
    let mut stats = LiveStats {
        arrivals: config.peers,
        ticks: end_tick + 1,
        ..LiveStats::default()
    };

    // Seed clique: the first attach_walks + 1 arrivals wire to every earlier peer
    // directly (the protocol analogue of the generator's seed graph); later arrivals
    // bootstrap through a uniformly random alive contact.
    let seed_size = (config.protocol.attach_walks as usize + 1).min(config.peers);
    let mut next_event = 0usize;
    for now in 0..=end_tick {
        while next_event < events.len() && events[next_event].0 == now {
            let (_, churn) = events[next_event];
            next_event += 1;
            match churn {
                Churn::Arrive(index) => {
                    let me = PeerRef::new(index as u64, format!("sim:{index}"));
                    let rng = stream_rng(seed, salt ^ PEER_STREAM_SALT, index);
                    let mut peer = Peer::new(me.clone(), config.protocol.clone(), rng);
                    if let Some(metrics) = &metrics {
                        peer = peer.with_metrics(metrics.clone());
                    }
                    let alive: Vec<PeerRef> =
                        peers.iter().flatten().map(|p| p.me().clone()).collect();
                    if index < seed_size {
                        for other in &alive {
                            staged.push((
                                other.clone(),
                                OverlayMessage::Join {
                                    origin: me.clone(),
                                    walks: 0,
                                },
                            ));
                            staged.push((
                                me.clone(),
                                OverlayMessage::Join {
                                    origin: other.clone(),
                                    walks: 0,
                                },
                            ));
                        }
                    } else if !alive.is_empty() {
                        // The arriving peer picks its own bootstrap contact.
                        let mut out = Outbox::new();
                        let contact = peer.pick_contact(&alive);
                        peer.start_join(&contact, &mut out);
                        staged.append(&mut out);
                    }
                    peers[index] = Some(peer);
                }
                Churn::Leave(index) => {
                    if let Some(mut peer) = peers[index].take() {
                        let mut out = Outbox::new();
                        peer.leave(&mut out);
                        staged.append(&mut out);
                        stats.leaves += 1;
                    }
                }
                Churn::Crash(index) => {
                    if peers[index].take().is_some() {
                        stats.crashes += 1;
                    }
                }
            }
        }

        // Pump every alive peer in arrival order against its drained inbox; sends go
        // into the staging buffer and become next tick's inboxes.
        for index in 0..peers.len() {
            if let Some(peer) = peers[index].as_mut() {
                let mut endpoint = SimEndpoint {
                    inbox: std::mem::take(&mut inboxes[index]),
                    staged: &mut staged,
                };
                peer.pump(now, &mut endpoint)?;
            }
        }

        // Route: messages to departed peers are dropped on the floor, like a closed
        // socket.
        for (to, msg) in staged.drain(..) {
            let index = to.id as usize;
            if index < peers.len() && peers[index].is_some() {
                inboxes[index].push(msg);
                stats.messages += 1;
            }
        }
    }

    // Freeze: survivors renumbered densely by arrival index; an edge exists only when
    // both endpoints list each other (half-open links are not links).
    let alive: Vec<usize> = (0..peers.len()).filter(|&i| peers[i].is_some()).collect();
    let node_of: std::collections::HashMap<u64, NodeId> = alive
        .iter()
        .enumerate()
        .map(|(dense, &index)| (index as u64, NodeId::new(dense)))
        .collect();
    let mut graph = Graph::with_nodes(alive.len());
    for &index in &alive {
        let peer = peers[index].as_ref().expect("alive peer");
        for neighbor in peer.active() {
            if neighbor.id <= index as u64 {
                continue;
            }
            let mutual = peers
                .get(neighbor.id as usize)
                .and_then(|slot| slot.as_ref())
                .is_some_and(|other| other.active().iter().any(|p| p.id == index as u64));
            if mutual {
                graph
                    .add_edge_if_absent(node_of[&(index as u64)], node_of[&neighbor.id])
                    .expect("frozen overlay edges are simple by construction");
            }
        }
    }

    stats.final_peers = alive.len();
    stats.edges = graph.edge_count();
    stats.max_degree = graph.max_degree().unwrap_or(0);
    let sweep_seed = master.next_u64();
    Ok(LiveOutcome {
        graph,
        stats,
        sweep_seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_runs_grow_a_connected_capped_overlay() {
        let config = LiveConfig::small();
        let outcome = grow(&config, 7).unwrap();
        assert_eq!(outcome.stats.final_peers, config.peers);
        assert_eq!(outcome.graph.node_count(), config.peers);
        assert!(outcome.stats.edges > 0);
        assert!(outcome.stats.max_degree <= config.protocol.active_cap);
        // Every peer attached: no isolated nodes after settling.
        assert!(outcome.graph.min_degree().unwrap() >= 1);
    }

    #[test]
    fn the_same_seed_grows_a_byte_identical_overlay() {
        let config = LiveConfig::small();
        let a = grow(&config, 99).unwrap();
        let b = grow(&config, 99).unwrap();
        assert_eq!(a.graph.freeze(), b.graph.freeze());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.sweep_seed, b.sweep_seed);
    }

    #[test]
    fn different_seeds_grow_different_overlays() {
        let config = LiveConfig::small();
        let a = grow(&config, 1).unwrap();
        let b = grow(&config, 2).unwrap();
        assert_ne!(a.graph.freeze(), b.graph.freeze());
    }

    #[test]
    fn departures_shrink_the_overlay_and_are_counted() {
        let mut config = LiveConfig::small();
        config.sessions = SessionModel::Fixed { length: 40.0 };
        config.settle = 128;
        let outcome = grow(&config, 5).unwrap();
        assert!(outcome.stats.leaves > 0);
        assert_eq!(
            outcome.stats.final_peers,
            config.peers - outcome.stats.leaves - outcome.stats.crashes
        );
        assert_eq!(outcome.graph.node_count(), outcome.stats.final_peers);
        assert!(outcome.stats.max_degree <= config.protocol.active_cap);
    }

    #[test]
    fn crashes_are_detected_and_repaired_around() {
        let mut config = LiveConfig::small();
        config.sessions = SessionModel::Fixed { length: 40.0 };
        config.crash_fraction = 1.0;
        config.settle = 128;
        let outcome = grow(&config, 5).unwrap();
        assert!(outcome.stats.crashes > 0);
        assert_eq!(outcome.stats.leaves, 0);
        // Survivors must not keep dead neighbors: the failure detector plus the
        // mutual-link freeze rule guarantee dead peers leave no edges behind.
        assert_eq!(outcome.graph.node_count(), outcome.stats.final_peers);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut config = LiveConfig::small();
        config.peers = 1;
        assert!(grow(&config, 1).is_err());
        let mut config = LiveConfig::small();
        config.crash_fraction = 1.5;
        assert!(grow(&config, 1).is_err());
        let mut config = LiveConfig::small();
        config.settle = 0;
        assert!(grow(&config, 1).is_err());
    }
}
