//! # sfo-overlay
//!
//! A live membership protocol that *grows* the hard-cutoff scale-free topologies this
//! workspace measures, instead of drawing them from an offline generator.
//!
//! The ICDCS'07 paper argues that limited scale-free overlays should emerge from peers
//! following a local attachment rule. This crate provides that rule as a protocol:
//!
//! * [`protocol`] — the transport-agnostic peer state machine. Each peer keeps a
//!   HyParView-style pair of views: a capacity-bounded **active view** whose cap *is*
//!   the paper's hard cutoff `k_c`, and a larger **passive view** of fallback contacts
//!   refreshed by periodic shuffles. Joins attach by random walks ([`protocol::OverlayMessage::ForwardJoin`]):
//!   a walk's endpoint is distributed proportionally to degree (the stationary
//!   distribution of a random walk), which reproduces preferential attachment, and
//!   saturated endpoints redirect the walk — which reproduces the hard cutoff. SWIM-style
//!   probe/suspect/confirm failure detection removes dead neighbors and repairs the view
//!   with a fresh one-walk join, so the shape survives churn.
//! * [`transport`] — the [`transport::OverlayTransport`] trait the state machine pumps
//!   messages through. The protocol core performs no I/O of its own.
//! * [`sim`] — the deterministic in-process transport: N peers, a session-model
//!   arrival/departure schedule, tick-synchronous FIFO delivery, and per-peer RNG
//!   streams derived with the workspace's `stream_rng`/`label_salt` discipline — the
//!   same seed grows a byte-identical overlay, extending the repo's headline
//!   reproducibility invariant to protocol execution. [`sim::grow`] freezes the
//!   emergent overlay into an [`sfo_graph::Graph`] ready for snapshotting.
//!
//! The real-socket transport lives in `sfo-net` (it reuses the SFNF frame codec), and
//! the scenario layer's `DynamicsSpec::Live` drives [`sim::grow`] end to end into a
//! provenance-tagged `.sfos` snapshot.
//!
//! # Example
//!
//! ```
//! use sfo_overlay::protocol::ProtocolConfig;
//! use sfo_overlay::sim::{grow, LiveConfig};
//!
//! # fn main() -> Result<(), sfo_overlay::OverlayError> {
//! let config = LiveConfig::small();
//! let outcome = grow(&config, 7)?;
//! let k_c = config.protocol.active_cap;
//! assert!(outcome.graph.max_degree().unwrap_or(0) <= k_c);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod protocol;
pub mod sim;
pub mod transport;

pub use error::OverlayError;

/// Convenience result alias used throughout this crate.
pub type Result<T, E = OverlayError> = std::result::Result<T, E>;
