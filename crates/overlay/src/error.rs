use std::fmt;

/// Errors produced by the overlay protocol and its transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig {
        /// What is wrong with the configuration.
        reason: String,
    },
    /// A transport failed to move a protocol message.
    Transport {
        /// What the transport reported.
        reason: String,
    },
}

impl OverlayError {
    /// Shorthand for an [`OverlayError::InvalidConfig`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        OverlayError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Shorthand for an [`OverlayError::Transport`].
    pub fn transport(reason: impl Into<String>) -> Self {
        OverlayError::Transport {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::InvalidConfig { reason } => {
                write!(f, "invalid overlay configuration: {reason}")
            }
            OverlayError::Transport { reason } => write!(f, "overlay transport error: {reason}"),
        }
    }
}

impl std::error::Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(OverlayError::invalid("k_c must be positive")
            .to_string()
            .contains("k_c"));
        assert!(OverlayError::transport("connection refused")
            .to_string()
            .contains("refused"));
    }
}
