//! The message-passing surface between the protocol core and the outside world.
//!
//! [`Peer`](crate::protocol::Peer) is pure state: it decides *what* to send and
//! *how* to react, a transport decides how bytes move. Two implementations exist:
//!
//! * the deterministic in-process network in [`crate::sim`] (tick-synchronous FIFO
//!   queues — the reproducible substrate scenario runs grow topologies on), and
//! * the SFNF socket transport in `sfo-net` (each message is one framed TCP exchange,
//!   served by the `sfo overlay` CLI mode).

use crate::protocol::{OverlayMessage, PeerRef};
use crate::Result;

/// Moves protocol messages for one endpoint; the state machine itself never performs
/// I/O.
///
/// Implementations must preserve per-sender message order (FIFO); the protocol does
/// not require global ordering or reliable delivery — lost messages surface as failed
/// probes and are repaired.
pub trait OverlayTransport {
    /// Queues `msg` for delivery to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Transport`](crate::OverlayError::Transport) when the
    /// message cannot be queued or written.
    fn send(&mut self, to: &PeerRef, msg: OverlayMessage) -> Result<()>;

    /// Drains every message addressed to this endpoint that arrived since the last
    /// call. An empty vector means nothing is pending; it is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Transport`](crate::OverlayError::Transport) when the
    /// inbound channel is broken.
    fn recv(&mut self) -> Result<Vec<OverlayMessage>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback transport: everything sent is received back, regardless of target.
    struct Loopback {
        queue: Vec<OverlayMessage>,
    }

    impl OverlayTransport for Loopback {
        fn send(&mut self, _to: &PeerRef, msg: OverlayMessage) -> Result<()> {
            self.queue.push(msg);
            Ok(())
        }

        fn recv(&mut self) -> Result<Vec<OverlayMessage>> {
            Ok(std::mem::take(&mut self.queue))
        }
    }

    #[test]
    fn the_trait_is_object_safe_and_pumps() {
        use crate::protocol::{Peer, ProtocolConfig};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut transport: Box<dyn OverlayTransport> = Box::new(Loopback { queue: Vec::new() });
        transport
            .send(
                &PeerRef::new(0, "sim:0"),
                OverlayMessage::Join {
                    origin: PeerRef::new(1, "sim:1"),
                    walks: 0,
                },
            )
            .unwrap();
        let mut peer = Peer::new(
            PeerRef::new(0, "sim:0"),
            ProtocolConfig::small(),
            StdRng::seed_from_u64(1),
        );
        peer.pump(0, &mut *transport).unwrap();
        assert_eq!(peer.active().len(), 1);
    }
}
