//! The transport-agnostic peer state machine: capped active/passive views, random-walk
//! attachment, SWIM-style failure detection, and periodic passive-view shuffles.
//!
//! A [`Peer`] never performs I/O. It consumes inbound [`OverlayMessage`]s and emits
//! outbound `(target, message)` pairs; [`Peer::pump`] moves both through any
//! [`OverlayTransport`]. All randomness comes from
//! the peer's own seeded generator, so a fixed seed and a fixed delivery schedule replay
//! the exact same protocol execution — the property the simulated transport in
//! [`crate::sim`] turns into byte-identical emergent topologies.
//!
//! # Why walks reproduce capped preferential attachment
//!
//! A join emits `attach_walks` random walks ([`OverlayMessage::ForwardJoin`]) from a
//! bootstrap contact. A sufficiently long uniform random walk on an undirected graph
//! lands on a node with probability proportional to its degree — the stationary
//! distribution — so walk endpoints implement the paper's preferential-attachment
//! weighting with purely local state. An endpoint whose active view is full (degree
//! `= k_c`) cannot accept and redirects the walk, which is exactly the generator's
//! "re-draw on saturated target" rule: the emergent degree distribution is capped-PA
//! with a hard cutoff at `k_c`, grown by the protocol instead of sampled offline.

use crate::transport::OverlayTransport;
use crate::{OverlayError, Result};
use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use sfo_obs::{Counter, Histogram, Registry};
use std::sync::Arc;

/// A peer's identity plus the address a transport needs to reach it.
///
/// Equality compares both fields; view-membership checks inside the protocol compare by
/// `id` only, so a peer that rejoins under a new address replaces its old entry through
/// the normal failure-detection path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerRef {
    /// Stable peer identifier (the arrival index in simulated runs).
    pub id: u64,
    /// Transport address: `sim:<index>` in-process, `host:port` over sockets.
    pub addr: String,
}

impl PeerRef {
    /// Builds a reference from an id and an address.
    pub fn new(id: u64, addr: impl Into<String>) -> Self {
        PeerRef {
            id,
            addr: addr.into(),
        }
    }
}

/// The five protocol messages; the complete wire vocabulary of the overlay.
///
/// The SFNF frame types in `sfo-net` mirror these variants one for one (see
/// `docs/FORMATS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayMessage {
    /// `walks > 0`: `origin` asks the receiver (its bootstrap contact) to start that
    /// many attachment walks. `walks == 0`: `origin` offers a direct link — sent by a
    /// walk endpoint that accepted, by seed wiring, and by nothing else.
    Join {
        /// The joining (or link-offering) peer.
        origin: PeerRef,
        /// Number of attachment walks to start, or 0 for a direct link offer.
        walks: u32,
    },
    /// One step of an attachment walk on behalf of `origin`. Forwarded to a uniformly
    /// random active neighbor while `ttl > 0`; at `ttl == 0` the receiver tries to
    /// accept the link and redirects the walk if it cannot.
    ForwardJoin {
        /// The joining peer the walk attaches.
        origin: PeerRef,
        /// Remaining walk steps before the attachment attempt.
        ttl: u32,
    },
    /// Passive-view exchange: a sample of `from`'s neighborhood. A non-reply shuffle is
    /// answered with a reply shuffle carrying the receiver's own sample.
    Shuffle {
        /// The shuffling peer (target for the reply).
        from: PeerRef,
        /// Sampled peer references to merge into the receiver's passive view.
        peers: Vec<PeerRef>,
        /// Whether this message is the answer to an earlier shuffle.
        reply: bool,
    },
    /// SWIM-style liveness check. A probe (`ack == false`) is answered with an ack
    /// carrying the same nonce — but only if the prober is in the receiver's active
    /// view, so half-open links fail their probes and get cleaned up.
    Probe {
        /// The probing (or acking) peer.
        from: PeerRef,
        /// Matches an ack to the probe that solicited it.
        nonce: u64,
        /// `false` for the probe, `true` for the answer.
        ack: bool,
    },
    /// Graceful departure: receivers drop `from` from both views immediately and repair
    /// instead of waiting for the failure detector.
    Leave {
        /// The departing peer.
        from: PeerRef,
    },
}

/// Protocol parameters; every interval is in ticks of the driving transport.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Active-view capacity — the hard degree cutoff `k_c` of the emergent topology.
    pub active_cap: usize,
    /// Passive-view capacity (fallback contacts for repair and shuffling).
    pub passive_cap: usize,
    /// Attachment walks a join emits — the paper's `m` (edges added per arrival).
    pub attach_walks: u32,
    /// Steps per attachment walk before the accept attempt (walk mixing length).
    pub forward_ttl: u32,
    /// Ticks between passive-view shuffles.
    pub shuffle_interval: u64,
    /// Peer references carried per shuffle (including the sender itself).
    pub shuffle_size: usize,
    /// Ticks between liveness probes.
    pub probe_interval: u64,
    /// Ticks without an ack before the probed neighbor becomes suspect.
    pub probe_timeout: u64,
    /// Further ticks a suspect gets before it is confirmed dead and dropped.
    pub suspect_grace: u64,
}

impl ProtocolConfig {
    /// A small configuration for tests and examples: `k_c = 8`, `m = 2`.
    pub fn small() -> Self {
        ProtocolConfig {
            active_cap: 8,
            passive_cap: 16,
            attach_walks: 2,
            forward_ttl: 8,
            shuffle_interval: 16,
            shuffle_size: 6,
            probe_interval: 8,
            probe_timeout: 4,
            suspect_grace: 4,
        }
    }

    /// Checks the parameters are self-consistent.
    ///
    /// Walk liveness needs spare capacity somewhere in the network: the average
    /// emergent degree is about `2 * attach_walks`, so the cutoff must exceed it.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.attach_walks == 0 {
            return Err(OverlayError::invalid("attach_walks must be at least 1"));
        }
        if self.active_cap <= 2 * self.attach_walks as usize {
            return Err(OverlayError::invalid(format!(
                "active_cap (the cutoff k_c) must exceed 2 * attach_walks = {} or walks \
                 starve; got {}",
                2 * self.attach_walks,
                self.active_cap
            )));
        }
        if self.passive_cap == 0 {
            return Err(OverlayError::invalid("passive_cap must be at least 1"));
        }
        if self.forward_ttl == 0 {
            return Err(OverlayError::invalid(
                "forward_ttl must be at least 1 (walks need at least one step to mix)",
            ));
        }
        if self.shuffle_size == 0 || self.shuffle_size > self.passive_cap {
            return Err(OverlayError::invalid(format!(
                "shuffle_size must be in 1..=passive_cap ({}), got {}",
                self.passive_cap, self.shuffle_size
            )));
        }
        if self.shuffle_interval == 0 || self.probe_interval == 0 {
            return Err(OverlayError::invalid(
                "shuffle_interval and probe_interval must be at least 1 tick",
            ));
        }
        if self.probe_timeout == 0 {
            return Err(OverlayError::invalid(
                "probe_timeout must be at least 1 tick",
            ));
        }
        Ok(())
    }
}

/// Telemetry of the overlay protocol: inbound messages by type, probe round-trip
/// times, and the three failure-detection/attachment events worth watching in a live
/// deployment (suspicions, death confirmations, walk redirects).
///
/// All handles are shared [`Arc`]s into one [`Registry`], so any number of peers (the
/// whole simulated cohort, or one socket daemon) aggregate into the same counters.
/// Recording is pure observation — relaxed atomic adds, no RNG draws, no reordering —
/// so an instrumented peer replays byte-identically to a bare one.
#[derive(Debug, Clone)]
pub struct OverlayMetrics {
    join: Arc<Counter>,
    forward_join: Arc<Counter>,
    shuffle: Arc<Counter>,
    probe: Arc<Counter>,
    leave: Arc<Counter>,
    probe_rtt_ticks: Arc<Histogram>,
    suspects: Arc<Counter>,
    confirms: Arc<Counter>,
    redirects: Arc<Counter>,
}

impl OverlayMetrics {
    /// Binds the overlay metric names (`overlay.msg.<type>`, `overlay.probe_rtt_ticks`,
    /// `overlay.suspects`/`confirms`/`redirects`) in `registry`.
    #[must_use]
    pub fn register(registry: &Registry) -> Self {
        OverlayMetrics {
            join: registry.counter("overlay.msg.join"),
            forward_join: registry.counter("overlay.msg.forward_join"),
            shuffle: registry.counter("overlay.msg.shuffle"),
            probe: registry.counter("overlay.msg.probe"),
            leave: registry.counter("overlay.msg.leave"),
            probe_rtt_ticks: registry.histogram("overlay.probe_rtt_ticks"),
            suspects: registry.counter("overlay.suspects"),
            confirms: registry.counter("overlay.confirms"),
            redirects: registry.counter("overlay.redirects"),
        }
    }

    fn count_inbound(&self, msg: &OverlayMessage) {
        match msg {
            OverlayMessage::Join { .. } => self.join.inc(),
            OverlayMessage::ForwardJoin { .. } => self.forward_join.inc(),
            OverlayMessage::Shuffle { .. } => self.shuffle.inc(),
            OverlayMessage::Probe { .. } => self.probe.inc(),
            OverlayMessage::Leave { .. } => self.leave.inc(),
        }
    }
}

/// An in-flight liveness probe.
#[derive(Debug, Clone)]
struct ProbeState {
    target: PeerRef,
    nonce: u64,
    sent_at: u64,
    suspected: bool,
}

/// Outbound envelopes a handler produced: `(target, message)` pairs.
pub type Outbox = Vec<(PeerRef, OverlayMessage)>;

/// One peer's complete protocol state.
///
/// Drive it with [`Peer::pump`] (through a transport) or feed it directly with
/// [`Peer::handle`] / [`Peer::tick`] and route the outbox yourself — the simulated
/// network does the former, unit tests often do the latter.
#[derive(Debug, Clone)]
pub struct Peer {
    me: PeerRef,
    config: ProtocolConfig,
    active: Vec<PeerRef>,
    passive: Vec<PeerRef>,
    rng: StdRng,
    probe: Option<ProbeState>,
    next_probe_at: u64,
    next_shuffle_at: u64,
    metrics: Option<OverlayMetrics>,
}

impl Peer {
    /// Creates a peer with empty views.
    ///
    /// `rng` is the peer's entire randomness budget; the first draws desynchronize its
    /// probe and shuffle phases so a cohort started on the same tick does not fire in
    /// lockstep.
    pub fn new(me: PeerRef, config: ProtocolConfig, mut rng: StdRng) -> Self {
        let probe_phase = rng.gen_range(0..config.probe_interval);
        let shuffle_phase = rng.gen_range(0..config.shuffle_interval);
        Peer {
            me,
            config,
            active: Vec::new(),
            passive: Vec::new(),
            rng,
            probe: None,
            next_probe_at: probe_phase,
            next_shuffle_at: shuffle_phase,
            metrics: None,
        }
    }

    /// Attaches telemetry (usually one [`OverlayMetrics`] shared by a whole cohort).
    /// The instrumented peer's protocol behavior is byte-identical to a bare one.
    #[must_use]
    pub fn with_metrics(mut self, metrics: OverlayMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// This peer's own reference.
    pub fn me(&self) -> &PeerRef {
        &self.me
    }

    /// The current active view (the peer's overlay links, capped at `k_c`).
    pub fn active(&self) -> &[PeerRef] {
        &self.active
    }

    /// The current passive view (fallback contacts).
    pub fn passive(&self) -> &[PeerRef] {
        &self.passive
    }

    /// Picks a uniformly random bootstrap contact from `candidates` on this peer's own
    /// stream, so the choice replays with the peer.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn pick_contact(&mut self, candidates: &[PeerRef]) -> PeerRef {
        candidates[self.rng.gen_range(0..candidates.len())].clone()
    }

    /// Asks `contact` to start this peer's attachment walks.
    pub fn start_join(&mut self, contact: &PeerRef, out: &mut Outbox) {
        self.note_passive(contact.clone());
        out.push((
            contact.clone(),
            OverlayMessage::Join {
                origin: self.me.clone(),
                walks: self.config.attach_walks,
            },
        ));
    }

    /// Announces a graceful departure to every active neighbor.
    pub fn leave(&mut self, out: &mut Outbox) {
        for neighbor in &self.active {
            out.push((
                neighbor.clone(),
                OverlayMessage::Leave {
                    from: self.me.clone(),
                },
            ));
        }
        self.active.clear();
        self.passive.clear();
        self.probe = None;
    }

    /// Drains the transport's inbound messages, advances timers, and sends everything
    /// the handlers produced.
    ///
    /// # Errors
    ///
    /// Propagates the transport's receive/send errors.
    pub fn pump<T: OverlayTransport + ?Sized>(
        &mut self,
        now: u64,
        transport: &mut T,
    ) -> Result<()> {
        let mut out = Outbox::new();
        for msg in transport.recv()? {
            self.handle(msg, now, &mut out);
        }
        self.tick(now, &mut out);
        for (to, msg) in out {
            transport.send(&to, msg)?;
        }
        Ok(())
    }

    /// Processes one inbound message.
    pub fn handle(&mut self, msg: OverlayMessage, now: u64, out: &mut Outbox) {
        if let Some(metrics) = &self.metrics {
            metrics.count_inbound(&msg);
        }
        match msg {
            OverlayMessage::Join { origin, walks } => self.on_join(origin, walks, out),
            OverlayMessage::ForwardJoin { origin, ttl } => self.on_forward_join(origin, ttl, out),
            OverlayMessage::Shuffle { from, peers, reply } => {
                self.on_shuffle(from, peers, reply, out)
            }
            OverlayMessage::Probe { from, nonce, ack } => self.on_probe(from, nonce, ack, now, out),
            OverlayMessage::Leave { from } => self.on_leave(&from, out),
        }
    }

    /// Advances the shuffle and probe timers to `now`.
    pub fn tick(&mut self, now: u64, out: &mut Outbox) {
        self.tick_probe(now, out);
        self.tick_shuffle(now, out);
    }

    fn on_join(&mut self, origin: PeerRef, walks: u32, out: &mut Outbox) {
        if origin.id == self.me.id {
            return;
        }
        if walks == 0 {
            // Direct link offer from a walk endpoint (or seed wiring): mirror it.
            if !self.in_active(&origin) && self.active.len() < self.config.active_cap {
                self.drop_passive(origin.id);
                self.active.push(origin);
            }
            return;
        }
        // Bootstrap request: start the walks. With no neighbors to walk on (we are the
        // first peer, or isolated), accept directly instead.
        self.note_passive(origin.clone());
        if self.active.is_empty() {
            self.try_accept(origin, out);
            return;
        }
        for _ in 0..walks {
            let next = self.random_active();
            out.push((
                next,
                OverlayMessage::ForwardJoin {
                    origin: origin.clone(),
                    ttl: self.config.forward_ttl,
                },
            ));
        }
    }

    fn on_forward_join(&mut self, origin: PeerRef, ttl: u32, out: &mut Outbox) {
        if ttl > 0 && !self.active.is_empty() {
            let next = self.random_active();
            out.push((
                next,
                OverlayMessage::ForwardJoin {
                    origin,
                    ttl: ttl - 1,
                },
            ));
            return;
        }
        // Walk terminated here: attempt the attachment; on failure (view saturated —
        // the hard cutoff in action) redirect the walk with a fresh TTL, the protocol
        // equivalent of the generator's re-draw on a saturated target.
        self.note_passive(origin.clone());
        if !self.try_accept(origin.clone(), out) && !self.active.is_empty() {
            if let Some(metrics) = &self.metrics {
                metrics.redirects.inc();
            }
            let next = self.random_active();
            out.push((
                next,
                OverlayMessage::ForwardJoin {
                    origin,
                    ttl: self.config.forward_ttl,
                },
            ));
        }
    }

    /// Attempts to add `origin` to the active view and offer the link back. Returns
    /// `true` when the walk is resolved (link made, or it already existed), `false`
    /// when the view is saturated and the walk must continue elsewhere.
    fn try_accept(&mut self, origin: PeerRef, out: &mut Outbox) -> bool {
        if origin.id == self.me.id || self.in_active(&origin) {
            return true;
        }
        if self.active.len() >= self.config.active_cap {
            return false;
        }
        self.drop_passive(origin.id);
        out.push((
            origin.clone(),
            OverlayMessage::Join {
                origin: self.me.clone(),
                walks: 0,
            },
        ));
        self.active.push(origin);
        true
    }

    fn on_shuffle(&mut self, from: PeerRef, peers: Vec<PeerRef>, reply: bool, out: &mut Outbox) {
        for peer in peers {
            self.note_passive(peer);
        }
        if !reply {
            let sample = self.shuffle_sample();
            out.push((
                from,
                OverlayMessage::Shuffle {
                    from: self.me.clone(),
                    peers: sample,
                    reply: true,
                },
            ));
        }
    }

    fn on_probe(&mut self, from: PeerRef, nonce: u64, ack: bool, now: u64, out: &mut Outbox) {
        if !ack {
            // Only acknowledge active neighbors: a half-open link (the other side never
            // mirrored it) fails its probes and gets repaired away.
            if self.in_active(&from) {
                out.push((
                    from,
                    OverlayMessage::Probe {
                        from: self.me.clone(),
                        nonce,
                        ack: true,
                    },
                ));
            }
            return;
        }
        if let Some(probe) = &self.probe {
            if probe.target.id == from.id && probe.nonce == nonce {
                if let Some(metrics) = &self.metrics {
                    metrics
                        .probe_rtt_ticks
                        .record(now.saturating_sub(probe.sent_at));
                }
                self.probe = None;
            }
        }
    }

    fn on_leave(&mut self, from: &PeerRef, out: &mut Outbox) {
        let was_neighbor = self.in_active(from);
        self.active.retain(|p| p.id != from.id);
        self.drop_passive(from.id);
        if let Some(probe) = &self.probe {
            if probe.target.id == from.id {
                self.probe = None;
            }
        }
        if was_neighbor {
            self.repair(out);
        }
    }

    fn tick_probe(&mut self, now: u64, out: &mut Outbox) {
        if let Some(probe) = &mut self.probe {
            let deadline = probe.sent_at + self.config.probe_timeout;
            if !probe.suspected && now >= deadline {
                probe.suspected = true;
                if let Some(metrics) = &self.metrics {
                    metrics.suspects.inc();
                }
            }
            if probe.suspected && now >= deadline + self.config.suspect_grace {
                // Confirmed dead: drop the neighbor and walk for a replacement, which
                // keeps the degree distribution's shape under churn.
                if let Some(metrics) = &self.metrics {
                    metrics.confirms.inc();
                }
                let dead = probe.target.clone();
                self.probe = None;
                self.active.retain(|p| p.id != dead.id);
                self.drop_passive(dead.id);
                self.repair(out);
            }
            return;
        }
        if now >= self.next_probe_at {
            self.next_probe_at = now + self.config.probe_interval;
            if !self.active.is_empty() {
                let target = self.random_active();
                let nonce = self.rng.next_u64();
                out.push((
                    target.clone(),
                    OverlayMessage::Probe {
                        from: self.me.clone(),
                        nonce,
                        ack: false,
                    },
                ));
                self.probe = Some(ProbeState {
                    target,
                    nonce,
                    sent_at: now,
                    suspected: false,
                });
            }
        }
    }

    fn tick_shuffle(&mut self, now: u64, out: &mut Outbox) {
        if now < self.next_shuffle_at {
            return;
        }
        self.next_shuffle_at = now + self.config.shuffle_interval;
        if self.active.is_empty() {
            return;
        }
        let target = self.random_active();
        let sample = self.shuffle_sample();
        out.push((
            target,
            OverlayMessage::Shuffle {
                from: self.me.clone(),
                peers: sample,
                reply: false,
            },
        ));
    }

    /// Sends a single repair walk through a passive contact to replace a lost neighbor.
    fn repair(&mut self, out: &mut Outbox) {
        if self.passive.is_empty() {
            return;
        }
        let contact = self.passive[self.rng.gen_range(0..self.passive.len())].clone();
        out.push((
            contact,
            OverlayMessage::Join {
                origin: self.me.clone(),
                walks: 1,
            },
        ));
    }

    /// Sample sent in a shuffle: this peer itself plus a random slice of both views.
    fn shuffle_sample(&mut self) -> Vec<PeerRef> {
        let mut candidates: Vec<PeerRef> = self
            .active
            .iter()
            .chain(self.passive.iter())
            .cloned()
            .collect();
        let take = self.config.shuffle_size.saturating_sub(1);
        let mut sample = Vec::with_capacity(take + 1);
        sample.push(self.me.clone());
        for _ in 0..take.min(candidates.len()) {
            let pick = self.rng.gen_range(0..candidates.len());
            sample.push(candidates.swap_remove(pick));
        }
        sample
    }

    fn random_active(&mut self) -> PeerRef {
        self.active[self.rng.gen_range(0..self.active.len())].clone()
    }

    fn in_active(&self, peer: &PeerRef) -> bool {
        self.active.iter().any(|p| p.id == peer.id)
    }

    fn drop_passive(&mut self, id: u64) {
        self.passive.retain(|p| p.id != id);
    }

    /// Adds `peer` to the passive view, evicting a uniformly random entry when full.
    /// Self, duplicates, and current active neighbors are skipped.
    fn note_passive(&mut self, peer: PeerRef) {
        if peer.id == self.me.id
            || self.in_active(&peer)
            || self.passive.iter().any(|p| p.id == peer.id)
        {
            return;
        }
        if self.passive.len() >= self.config.passive_cap {
            let evict = self.rng.gen_range(0..self.passive.len());
            self.passive.swap_remove(evict);
        }
        self.passive.push(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn peer(id: u64) -> Peer {
        Peer::new(
            PeerRef::new(id, format!("sim:{id}")),
            ProtocolConfig::small(),
            StdRng::seed_from_u64(id ^ 0xABCD),
        )
    }

    fn r(id: u64) -> PeerRef {
        PeerRef::new(id, format!("sim:{id}"))
    }

    #[test]
    fn config_validation_rejects_degenerate_parameters() {
        assert!(ProtocolConfig::small().validate().is_ok());
        let mut c = ProtocolConfig::small();
        c.attach_walks = 0;
        assert!(c.validate().is_err());
        let mut c = ProtocolConfig::small();
        c.active_cap = 4; // == 2 * attach_walks
        assert!(c.validate().is_err());
        let mut c = ProtocolConfig::small();
        c.shuffle_size = c.passive_cap + 1;
        assert!(c.validate().is_err());
        let mut c = ProtocolConfig::small();
        c.forward_ttl = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn direct_link_offers_are_mirrored_and_capped() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        for id in 1..=10 {
            p.handle(
                OverlayMessage::Join {
                    origin: r(id),
                    walks: 0,
                },
                0,
                &mut out,
            );
        }
        // Cap is 8: the 9th and 10th offers were refused.
        assert_eq!(p.active().len(), 8);
        assert!(out.is_empty(), "link offers are never answered");
    }

    #[test]
    fn walk_endpoints_accept_and_offer_the_link_back() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::ForwardJoin {
                origin: r(7),
                ttl: 0,
            },
            0,
            &mut out,
        );
        assert!(p.active().iter().any(|q| q.id == 7));
        assert_eq!(
            out,
            vec![(
                r(7),
                OverlayMessage::Join {
                    origin: r(0),
                    walks: 0
                }
            )]
        );
    }

    #[test]
    fn saturated_endpoints_redirect_the_walk() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        for id in 1..=8 {
            p.handle(
                OverlayMessage::Join {
                    origin: r(id),
                    walks: 0,
                },
                0,
                &mut out,
            );
        }
        assert_eq!(p.active().len(), 8);
        out.clear();
        p.handle(
            OverlayMessage::ForwardJoin {
                origin: r(99),
                ttl: 0,
            },
            0,
            &mut out,
        );
        // Not accepted; the walk continues with a fresh TTL.
        assert!(!p.active().iter().any(|q| q.id == 99));
        assert!(matches!(
            out.as_slice(),
            [(_, OverlayMessage::ForwardJoin { origin, ttl })]
                if origin.id == 99 && *ttl == ProtocolConfig::small().forward_ttl
        ));
    }

    #[test]
    fn walks_with_ttl_left_are_forwarded_one_step() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Join {
                origin: r(1),
                walks: 0,
            },
            0,
            &mut out,
        );
        p.handle(
            OverlayMessage::ForwardJoin {
                origin: r(42),
                ttl: 3,
            },
            0,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [(to, OverlayMessage::ForwardJoin { origin, ttl: 2 })]
                if to.id == 1 && origin.id == 42
        ));
    }

    #[test]
    fn probes_are_acked_only_for_active_neighbors() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Probe {
                from: r(5),
                nonce: 11,
                ack: false,
            },
            0,
            &mut out,
        );
        assert!(out.is_empty(), "strangers' probes are ignored");
        p.handle(
            OverlayMessage::Join {
                origin: r(5),
                walks: 0,
            },
            0,
            &mut out,
        );
        p.handle(
            OverlayMessage::Probe {
                from: r(5),
                nonce: 11,
                ack: false,
            },
            0,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [(to, OverlayMessage::Probe { nonce: 11, ack: true, .. })] if to.id == 5
        ));
    }

    #[test]
    fn unanswered_probes_confirm_death_and_trigger_a_repair_walk() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Join {
                origin: r(5),
                walks: 0,
            },
            0,
            &mut out,
        );
        // Give the peer a passive contact to repair through.
        p.handle(
            OverlayMessage::Shuffle {
                from: r(5),
                peers: vec![r(6)],
                reply: true,
            },
            0,
            &mut out,
        );
        out.clear();
        // Drive ticks until the probe fires, times out, and the suspect is confirmed.
        let config = ProtocolConfig::small();
        let horizon = config.probe_interval + config.probe_timeout + config.suspect_grace + 2;
        for now in 0..horizon {
            p.tick(now, &mut out);
        }
        assert!(p.active().is_empty(), "dead neighbor was dropped");
        assert!(
            out.iter().any(|(to, m)| to.id == 6
                && matches!(m, OverlayMessage::Join { walks: 1, origin } if origin.id == 0)),
            "a single repair walk goes through the passive contact: {out:?}"
        );
    }

    #[test]
    fn leave_removes_the_neighbor_and_repairs() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Join {
                origin: r(5),
                walks: 0,
            },
            0,
            &mut out,
        );
        p.handle(
            OverlayMessage::Shuffle {
                from: r(5),
                peers: vec![r(6)],
                reply: true,
            },
            0,
            &mut out,
        );
        out.clear();
        p.handle(OverlayMessage::Leave { from: r(5) }, 0, &mut out);
        assert!(p.active().is_empty());
        assert!(matches!(
            out.as_slice(),
            [(to, OverlayMessage::Join { walks: 1, .. })] if to.id == 6
        ));
    }

    #[test]
    fn shuffles_merge_into_passive_and_are_answered() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Shuffle {
                from: r(3),
                peers: vec![r(3), r(4), r(0)],
                reply: false,
            },
            0,
            &mut out,
        );
        // Self is never merged; the reply targets the shuffler.
        assert!(p.passive().iter().all(|q| q.id != 0));
        assert!(p.passive().iter().any(|q| q.id == 4));
        assert!(matches!(
            out.as_slice(),
            [(to, OverlayMessage::Shuffle { reply: true, .. })] if to.id == 3
        ));
    }

    #[test]
    fn passive_view_is_bounded() {
        let mut p = peer(0);
        let mut out = Outbox::new();
        for id in 1..100 {
            p.handle(
                OverlayMessage::Shuffle {
                    from: r(id),
                    peers: vec![r(id)],
                    reply: true,
                },
                0,
                &mut out,
            );
        }
        assert_eq!(p.passive().len(), ProtocolConfig::small().passive_cap);
    }

    #[test]
    fn metrics_count_messages_events_and_probe_rtts_without_changing_behavior() {
        let registry = Registry::new();
        let metrics = OverlayMetrics::register(&registry);
        let drive = |p: &mut Peer| {
            let mut out = Outbox::new();
            // One neighbor, one passive contact to repair through.
            p.handle(
                OverlayMessage::Join {
                    origin: r(5),
                    walks: 0,
                },
                0,
                &mut out,
            );
            p.handle(
                OverlayMessage::Shuffle {
                    from: r(5),
                    peers: vec![r(6)],
                    reply: true,
                },
                0,
                &mut out,
            );
            // Saturate the view, then land a walk on it: a redirect.
            for id in 10..17 {
                p.handle(
                    OverlayMessage::Join {
                        origin: r(id),
                        walks: 0,
                    },
                    0,
                    &mut out,
                );
            }
            p.handle(
                OverlayMessage::ForwardJoin {
                    origin: r(99),
                    ttl: 0,
                },
                0,
                &mut out,
            );
            // Let a probe fire, time out, and confirm a death.
            let config = ProtocolConfig::small();
            let horizon = config.probe_interval + config.probe_timeout + config.suspect_grace + 2;
            for now in 0..horizon {
                p.tick(now, &mut out);
            }
            (out, p.active().to_vec(), p.passive().to_vec())
        };

        let mut plain = peer(0);
        let mut metered = peer(0).with_metrics(metrics);
        // Telemetry is invisible to the protocol: same outbox, same views.
        assert_eq!(drive(&mut plain), drive(&mut metered));

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("overlay.msg.join"), Some(8));
        assert_eq!(snapshot.counter("overlay.msg.forward_join"), Some(1));
        assert_eq!(snapshot.counter("overlay.msg.shuffle"), Some(1));
        assert_eq!(snapshot.counter("overlay.redirects"), Some(1));
        // Nothing ever acks in this rig, so the probe cycle keeps suspecting (and may
        // re-fire within the horizon): at least one suspicion reaches confirmation.
        let suspects = snapshot.counter("overlay.suspects").unwrap();
        let confirms = snapshot.counter("overlay.confirms").unwrap();
        assert!(confirms >= 1);
        assert!(suspects >= confirms);

        // A probed peer that answers produces one RTT sample of probe_timeout - 1
        // ticks (the ack arrives on the next handle() call's clock).
        let registry = Registry::new();
        let mut p = peer(1).with_metrics(OverlayMetrics::register(&registry));
        let mut out = Outbox::new();
        p.handle(
            OverlayMessage::Join {
                origin: r(5),
                walks: 0,
            },
            0,
            &mut out,
        );
        let mut now = 0;
        let nonce = loop {
            out.clear();
            p.tick(now, &mut out);
            if let Some((_, OverlayMessage::Probe { nonce, .. })) = out.first() {
                break *nonce;
            }
            now += 1;
        };
        p.handle(
            OverlayMessage::Probe {
                from: r(5),
                nonce,
                ack: true,
            },
            now + 3,
            &mut out,
        );
        let rtt = registry.snapshot();
        let rtt = rtt.histogram("overlay.probe_rtt_ticks").unwrap();
        assert_eq!(rtt.count, 1);
        assert_eq!(rtt.max, 3);
    }

    #[test]
    fn identical_seeds_replay_identical_outputs() {
        let run = || {
            let mut p = Peer::new(r(0), ProtocolConfig::small(), StdRng::seed_from_u64(0xFEED));
            let mut out = Outbox::new();
            p.handle(
                OverlayMessage::Join {
                    origin: r(1),
                    walks: 2,
                },
                0,
                &mut out,
            );
            for now in 0..64 {
                p.tick(now, &mut out);
            }
            (out, p.active().to_vec(), p.passive().to_vec())
        };
        assert_eq!(run(), run());
    }
}
