//! Normalized-flooding and random-walk figures: Figs. 9, 10, 11, and 12.
//!
//! NF curves report hits per search with fan-out `k_min = m` (the spec layer's
//! `k_min: None`). RW curves are message-normalized: for each TTL the walk's hop budget
//! equals the message count of the corresponding NF search (paper §V-B), so Figs. 9/11
//! and 10/12 are directly comparable.
//!
//! Both figure families share one panel of [`ScenarioSpec`]s — PA and HAPA across the
//! cutoff sweep, CM at `γ = 2.2` and `3.0` (Figs. 9/11), DAPA across `τ_sub` (Figs.
//! 10/12) — and differ only in the [`SearchSpec`] they attach.

use crate::helpers::{nf_rw_ttls, scenario_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::FigureData;
use sfo_scenario::{ScenarioSpec, SearchSpec, SweepMetric, SweepSpec, TopologySpec};

/// The cutoff sweep used for the PA/HAPA panels of Figs. 9 and 11.
fn cutoff_sweep() -> Vec<Option<usize>> {
    vec![Some(10), Some(20), Some(40), Some(100), None]
}

fn sweep(cutoffs: Vec<Option<usize>>, scale: &Scale) -> SweepSpec {
    SweepSpec::grid(
        vec![1, 2, 3],
        cutoffs,
        nf_rw_ttls(),
        scale.searches_per_point,
    )
}

/// The topology specs of the PA / CM / HAPA panels (Figs. 9 and 11), with the cutoff
/// grids the paper sweeps per family.
fn panel_specs(figure: &str, search: &SearchSpec, scale: &Scale, seed: u64) -> Vec<ScenarioSpec> {
    let mut specs = vec![
        ScenarioSpec::sweep(
            format!("{figure}-pa"),
            TopologySpec::Pa {
                nodes: scale.search_nodes,
                m: 1,
                cutoff: None,
            },
            search.clone(),
            sweep(cutoff_sweep(), scale),
            seed,
            scale.realizations,
        ),
        ScenarioSpec::sweep(
            format!("{figure}-hapa"),
            TopologySpec::Hapa {
                nodes: scale.search_nodes,
                m: 1,
                cutoff: None,
            },
            search.clone(),
            sweep(cutoff_sweep(), scale),
            seed,
            scale.realizations,
        ),
    ];
    // CM panel: gamma = 2.2 and 3.0, cutoffs 10/40/none, as in Figs. 9(b,e) / 11(b,e).
    for gamma in [2.2f64, 3.0] {
        specs.push(ScenarioSpec::sweep(
            format!("{figure}-cm-gamma{gamma}"),
            TopologySpec::Cm {
                nodes: scale.search_nodes,
                gamma,
                m: 1,
                cutoff: None,
            },
            search.clone(),
            sweep(vec![Some(10), Some(40), None], scale),
            seed,
            scale.realizations,
        ));
    }
    specs
}

/// The DAPA specs of Figs. 10 and 12, one per local TTL `τ_sub`.
fn dapa_specs(figure: &str, search: &SearchSpec, scale: &Scale, seed: u64) -> Vec<ScenarioSpec> {
    [2u32, 4, 10, 20]
        .into_iter()
        .map(|tau_sub| {
            ScenarioSpec::sweep(
                format!("{figure}-dapa-tau{tau_sub}"),
                TopologySpec::DapaGrn {
                    nodes: scale.search_nodes,
                    m: 1,
                    tau_sub,
                    cutoff: None,
                },
                search.clone(),
                sweep(vec![None, Some(50), Some(10)], scale),
                seed,
                scale.realizations,
            )
        })
        .collect()
}

fn figure_from_specs(id: &str, title: &str, specs: Vec<ScenarioSpec>) -> ExperimentOutput {
    let mut figure = FigureData::new(id, title, "tau", "hits");
    for spec in &specs {
        for series in scenario_series(spec, SweepMetric::Hits) {
            figure.push_series(series);
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 9: NF hits versus `τ` on PA, CM, and HAPA topologies.
pub fn fig9(scale: &Scale, seed: u64) -> ExperimentOutput {
    figure_from_specs(
        "fig9",
        "Normalized-flooding search efficiency on PA, CM, and HAPA topologies",
        panel_specs(
            "fig9",
            &SearchSpec::NormalizedFlooding { k_min: None },
            scale,
            seed,
        ),
    )
}

/// Fig. 10: NF hits versus `τ` on DAPA topologies.
pub fn fig10(scale: &Scale, seed: u64) -> ExperimentOutput {
    figure_from_specs(
        "fig10",
        "Normalized-flooding search efficiency on DAPA topologies",
        dapa_specs(
            "fig10",
            &SearchSpec::NormalizedFlooding { k_min: None },
            scale,
            seed,
        ),
    )
}

/// Fig. 11: message-normalized RW hits versus `τ` on PA, CM, and HAPA topologies.
pub fn fig11(scale: &Scale, seed: u64) -> ExperimentOutput {
    figure_from_specs(
        "fig11",
        "Random-walk search efficiency (message-normalized to NF) on PA, CM, and HAPA topologies",
        panel_specs(
            "fig11",
            &SearchSpec::RwNormalizedToNf { k_min: None },
            scale,
            seed,
        ),
    )
}

/// Fig. 12: message-normalized RW hits versus `τ` on DAPA topologies.
pub fn fig12(scale: &Scale, seed: u64) -> ExperimentOutput {
    figure_from_specs(
        "fig12",
        "Random-walk search efficiency (message-normalized to NF) on DAPA topologies",
        dapa_specs(
            "fig12",
            &SearchSpec::RwNormalizedToNf { k_min: None },
            scale,
            seed,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            degree_nodes: 300,
            search_nodes: 300,
            realizations: 1,
            searches_per_point: 8,
        }
    }

    fn narrow_spec(search: SearchSpec, scale: &Scale, seed: u64) -> ScenarioSpec {
        ScenarioSpec::sweep(
            "nf-rw-test",
            TopologySpec::Pa {
                nodes: scale.search_nodes,
                m: 2,
                cutoff: None,
            },
            search,
            SweepSpec::grid(
                vec![2],
                vec![Some(10), None],
                nf_rw_ttls(),
                scale.searches_per_point,
            ),
            seed,
            scale.realizations,
        )
    }

    /// Figs. 9-12 sweep dozens of configurations; the unit tests exercise the shared
    /// machinery on a narrow subset so the full-figure runners stay exercisable through the
    /// `reproduce` binary without making `cargo test` slow.
    #[test]
    fn nf_figure_on_a_narrow_panel_behaves_sanely() {
        let scale = tiny();
        let spec = narrow_spec(SearchSpec::NormalizedFlooding { k_min: None }, &scale, 3);
        let series = scenario_series(&spec, SweepMetric::Hits);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "PA, m=2, k_c=10");
        assert_eq!(series[1].label, "PA, m=2, no k_c");
        for series in &series {
            assert_eq!(series.points.len(), nf_rw_ttls().len());
            let first = series.points.first().unwrap().y;
            let last = series.points.last().unwrap().y;
            assert!(
                last >= first,
                "{}: NF hits should not shrink with tau",
                series.label
            );
            assert!(last <= scale.search_nodes as f64);
        }
    }

    #[test]
    fn rw_figure_hits_are_below_nf_hits_for_the_same_budget() {
        // The paper observes that NF does better averaging than a single RW of equal
        // message cost; verify the direction on one PA configuration.
        let scale = tiny();
        let nf = scenario_series(
            &narrow_spec(SearchSpec::NormalizedFlooding { k_min: None }, &scale, 5),
            SweepMetric::Hits,
        );
        let rw = scenario_series(
            &narrow_spec(SearchSpec::RwNormalizedToNf { k_min: None }, &scale, 5),
            SweepMetric::Hits,
        );
        let nf_last = nf[0].points.last().unwrap().y;
        let rw_last = rw[0].points.last().unwrap().y;
        assert!(
            rw_last <= nf_last * 1.25,
            "RW ({rw_last}) should not significantly exceed NF ({nf_last}) at equal message cost"
        );
    }

    #[test]
    fn panel_sizes_match_the_paper_grid() {
        let scale = tiny();
        let search = SearchSpec::NormalizedFlooding { k_min: None };
        let panel = panel_specs("fig9", &search, &scale, 1);
        let curves: usize = panel.iter().map(|s| s.expanded_topologies().len()).sum();
        assert_eq!(curves, 3 * (2 * 5 + 2 * 3));
        let dapa = dapa_specs("fig10", &search, &scale, 1);
        let curves: usize = dapa.iter().map(|s| s.expanded_topologies().len()).sum();
        assert_eq!(curves, 3 * 3 * 4);
    }
}
