//! Normalized-flooding and random-walk figures: Figs. 9, 10, 11, and 12.
//!
//! NF curves report hits per search with fan-out `k_min = m`. RW curves are
//! message-normalized: for each TTL the walk's hop budget equals the message count of the
//! corresponding NF search (paper §V-B), so Figs. 9/11 and 10/12 are directly comparable.

use crate::helpers::{nf_rw_ttls, rw_series, search_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::FigureData;
use sfo_core::cm::ConfigurationModel;
use sfo_core::dapa::DapaOverGrn;
use sfo_core::hapa::HopAndAttempt;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::{DegreeCutoff, TopologyGenerator};
use sfo_search::normalized::NormalizedFlooding;

fn cutoff_label(cutoff: DegreeCutoff) -> String {
    match cutoff.value() {
        None => "no k_c".to_string(),
        Some(k_c) => format!("k_c={k_c}"),
    }
}

/// The cutoff sweep used for the PA/HAPA panels of Figs. 9 and 11.
fn cutoff_sweep() -> Vec<DegreeCutoff> {
    vec![
        DegreeCutoff::hard(10),
        DegreeCutoff::hard(20),
        DegreeCutoff::hard(40),
        DegreeCutoff::hard(100),
        DegreeCutoff::Unbounded,
    ]
}

/// Topology configurations (generator, label, m) for the PA / CM / HAPA panels.
fn panel_configs(scale: &Scale) -> Vec<(Box<dyn TopologyGenerator>, String, usize)> {
    let mut configs: Vec<(Box<dyn TopologyGenerator>, String, usize)> = Vec::new();
    for m in [1usize, 2, 3] {
        for cutoff in cutoff_sweep() {
            let pa = PreferentialAttachment::new(scale.search_nodes, m)
                .expect("scale sizes exceed the PA seed")
                .with_cutoff(cutoff);
            configs.push((
                Box::new(pa),
                format!("PA, m={m}, {}", cutoff_label(cutoff)),
                m,
            ));
            let hapa = HopAndAttempt::new(scale.search_nodes, m)
                .expect("scale sizes exceed the HAPA seed")
                .with_cutoff(cutoff);
            configs.push((
                Box::new(hapa),
                format!("HAPA, m={m}, {}", cutoff_label(cutoff)),
                m,
            ));
        }
        // CM panel: gamma = 2.2 and 3.0, cutoffs 10/40/none, as in Figs. 9(b,e) / 11(b,e).
        for gamma in [2.2f64, 3.0] {
            for cutoff in [
                DegreeCutoff::hard(10),
                DegreeCutoff::hard(40),
                DegreeCutoff::Unbounded,
            ] {
                let cm = ConfigurationModel::new(scale.search_nodes, gamma, m)
                    .expect("scale sizes are valid for CM")
                    .with_cutoff(cutoff);
                configs.push((
                    Box::new(cm),
                    format!("CM gamma={gamma}, m={m}, {}", cutoff_label(cutoff)),
                    m,
                ));
            }
        }
    }
    configs
}

/// DAPA configurations (generator, label, m) for Figs. 10 and 12.
fn dapa_configs(scale: &Scale) -> Vec<(Box<dyn TopologyGenerator>, String, usize)> {
    let mut configs: Vec<(Box<dyn TopologyGenerator>, String, usize)> = Vec::new();
    let tau_subs = [2u32, 4, 10, 20];
    for m in [1usize, 2, 3] {
        for cutoff in [
            DegreeCutoff::Unbounded,
            DegreeCutoff::hard(50),
            DegreeCutoff::hard(10),
        ] {
            for tau_sub in tau_subs {
                let dapa = DapaOverGrn::new(scale.search_nodes, m, tau_sub)
                    .expect("scale sizes are valid for DAPA")
                    .with_cutoff(cutoff);
                configs.push((
                    Box::new(dapa),
                    format!("DAPA m={m}, {}, tau_sub={tau_sub}", cutoff_label(cutoff)),
                    m,
                ));
            }
        }
    }
    configs
}

fn nf_figure(
    id: &str,
    title: &str,
    configs: Vec<(Box<dyn TopologyGenerator>, String, usize)>,
    scale: &Scale,
    seed: u64,
) -> ExperimentOutput {
    let mut figure = FigureData::new(id, title, "tau", "hits");
    let ttls = nf_rw_ttls();
    for (generator, label, m) in configs {
        let nf = NormalizedFlooding::new(m.max(1));
        figure.push_series(search_series(
            generator.as_ref(),
            &nf,
            &label,
            &ttls,
            scale,
            seed,
        ));
    }
    ExperimentOutput::Figure(figure)
}

fn rw_figure(
    id: &str,
    title: &str,
    configs: Vec<(Box<dyn TopologyGenerator>, String, usize)>,
    scale: &Scale,
    seed: u64,
) -> ExperimentOutput {
    let mut figure = FigureData::new(id, title, "tau", "hits");
    let ttls = nf_rw_ttls();
    for (generator, label, m) in configs {
        figure.push_series(rw_series(
            generator.as_ref(),
            m.max(1),
            &label,
            &ttls,
            scale,
            seed,
        ));
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 9: NF hits versus `τ` on PA, CM, and HAPA topologies.
pub fn fig9(scale: &Scale, seed: u64) -> ExperimentOutput {
    nf_figure(
        "fig9",
        "Normalized-flooding search efficiency on PA, CM, and HAPA topologies",
        panel_configs(scale),
        scale,
        seed,
    )
}

/// Fig. 10: NF hits versus `τ` on DAPA topologies.
pub fn fig10(scale: &Scale, seed: u64) -> ExperimentOutput {
    nf_figure(
        "fig10",
        "Normalized-flooding search efficiency on DAPA topologies",
        dapa_configs(scale),
        scale,
        seed,
    )
}

/// Fig. 11: message-normalized RW hits versus `τ` on PA, CM, and HAPA topologies.
pub fn fig11(scale: &Scale, seed: u64) -> ExperimentOutput {
    rw_figure(
        "fig11",
        "Random-walk search efficiency (message-normalized to NF) on PA, CM, and HAPA topologies",
        panel_configs(scale),
        scale,
        seed,
    )
}

/// Fig. 12: message-normalized RW hits versus `τ` on DAPA topologies.
pub fn fig12(scale: &Scale, seed: u64) -> ExperimentOutput {
    rw_figure(
        "fig12",
        "Random-walk search efficiency (message-normalized to NF) on DAPA topologies",
        dapa_configs(scale),
        scale,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_search::SearchInfo;

    fn tiny() -> Scale {
        Scale {
            degree_nodes: 300,
            search_nodes: 300,
            realizations: 1,
            searches_per_point: 8,
        }
    }

    /// Figs. 9-12 sweep dozens of configurations; the unit tests exercise the shared
    /// machinery on a narrow subset so the full-figure runners stay exercisable through the
    /// `reproduce` binary without making `cargo test` slow.
    #[test]
    fn nf_figure_on_a_narrow_panel_behaves_sanely() {
        let scale = tiny();
        let mut configs: Vec<(Box<dyn TopologyGenerator>, String, usize)> = Vec::new();
        for cutoff in [DegreeCutoff::hard(10), DegreeCutoff::Unbounded] {
            let pa = PreferentialAttachment::new(scale.search_nodes, 2)
                .unwrap()
                .with_cutoff(cutoff);
            configs.push((
                Box::new(pa),
                format!("PA, m=2, {}", cutoff_label(cutoff)),
                2,
            ));
        }
        let output = nf_figure("fig9-test", "narrow NF panel", configs, &scale, 3);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 2);
        for series in &figure.series {
            assert_eq!(series.points.len(), nf_rw_ttls().len());
            let first = series.points.first().unwrap().y;
            let last = series.points.last().unwrap().y;
            assert!(
                last >= first,
                "{}: NF hits should not shrink with tau",
                series.label
            );
            // NF fan-out 2 can reach at most 2 + 4 + ... peers, far below the clique bound.
            assert!(last <= scale.search_nodes as f64);
        }
    }

    #[test]
    fn rw_figure_hits_are_below_nf_hits_for_the_same_budget() {
        // The paper observes that NF does better averaging than a single RW of equal
        // message cost; verify the direction on one PA configuration.
        let scale = tiny();
        let make = || -> Vec<(Box<dyn TopologyGenerator>, String, usize)> {
            vec![(
                Box::new(
                    PreferentialAttachment::new(scale.search_nodes, 2)
                        .unwrap()
                        .with_cutoff(DegreeCutoff::hard(20)),
                ),
                "PA, m=2, k_c=20".to_string(),
                2,
            )]
        };
        let nf = nf_figure("nf-test", "nf", make(), &scale, 5);
        let rw = rw_figure("rw-test", "rw", make(), &scale, 5);
        let nf_last = nf.as_figure().unwrap().series[0].points.last().unwrap().y;
        let rw_last = rw.as_figure().unwrap().series[0].points.last().unwrap().y;
        assert!(
            rw_last <= nf_last * 1.25,
            "RW ({rw_last}) should not significantly exceed NF ({nf_last}) at equal message cost"
        );
    }

    #[test]
    fn helper_grids_have_expected_sizes() {
        let scale = tiny();
        assert_eq!(cutoff_sweep().len(), 5);
        assert_eq!(panel_configs(&scale).len(), 3 * (2 * 5 + 2 * 3));
        assert_eq!(dapa_configs(&scale).len(), 3 * 3 * 4);
        // The normalized flooding used in the figures reports its name correctly.
        assert_eq!(NormalizedFlooding::new(2).name(), "NF");
    }
}
