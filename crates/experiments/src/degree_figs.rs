//! Degree-distribution figures: Figs. 1(a-c), 2, 3, 4, and 4(g).
//!
//! Sizes follow the active [`Scale`]: the paper's degree distributions use `N = 10^5`
//! (PA/CM/HAPA) and `N_O = 10^4` over an `N_S = 2·10^4` GRN substrate (DAPA). DAPA figures
//! use `scale.search_nodes` rather than `scale.degree_nodes` because every join performs a
//! bounded substrate BFS, which dominates the runtime.
//!
//! Every `P(k)` panel is expressed as a [`TopologySpec`] handed to the scenario layer
//! through [`degree_distribution_series`], with the figure's historical legend string
//! as the curve-label override — the legend salts the realization streams, so the
//! migrated panels are bit-identical to the bespoke loops they replaced. The exponent
//! panels (1(c), 4(g)) keep generating directly: a power-law fit needs raw
//! per-realization histograms, which a binned degree report deliberately does not
//! carry.

use crate::helpers::{degree_distribution_series, fitted_exponent};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::{DataPoint, DataSeries, FigureData};
use sfo_core::dapa::DapaOverGrn;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::DegreeCutoff;
use sfo_scenario::TopologySpec;

fn cutoff_label(cutoff: Option<usize>) -> String {
    match cutoff {
        None => "no k_c".to_string(),
        Some(k_c) => format!("k_c={k_c}"),
    }
}

/// Fig. 1(a): PA degree distributions without a hard cutoff, `m = 1, 2, 3`.
pub fn fig1a(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig1a",
        "Degree distributions of the PA model without hard cutoff",
        "k",
        "P(k)",
    );
    for m in [1usize, 2, 3] {
        let topology = TopologySpec::Pa {
            nodes: scale.degree_nodes,
            m,
            cutoff: None,
        };
        let label = format!("m={m}");
        figure.push_series(degree_distribution_series(topology, &label, scale, seed));
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 1(b): PA degree distributions for different hard cutoffs.
pub fn fig1b(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig1b",
        "Degree distributions of the PA model with hard cutoffs",
        "k",
        "P(k)",
    );
    let cutoffs = [None, Some(100usize), Some(40), Some(10)];
    for m in [1usize, 3] {
        for cutoff in cutoffs {
            let topology = TopologySpec::Pa {
                nodes: scale.degree_nodes,
                m,
                cutoff,
            };
            let label = format!("m={m}, {}", cutoff_label(cutoff));
            figure.push_series(degree_distribution_series(topology, &label, scale, seed));
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 1(c): fitted PA degree exponent versus the hard cutoff, `m = 1, 2, 3`.
pub fn fig1c(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig1c",
        "PA degree-distribution exponent vs hard cutoff",
        "k_c",
        "gamma",
    );
    for m in [1usize, 2, 3] {
        let mut series = DataSeries::new(format!("m={m}"));
        for k_c in [10usize, 20, 30, 40, 50] {
            let generator = PreferentialAttachment::new(scale.degree_nodes, m)
                .expect("scale sizes exceed the PA seed")
                .with_cutoff(DegreeCutoff::hard(k_c));
            let label = format!("m={m}, k_c={k_c}");
            // Fit window stops just below the cutoff so the accumulation spike does not
            // drag the slope (paper, Fig. 1(c) methodology).
            let summary =
                fitted_exponent(&generator, &label, m, k_c.saturating_sub(1), scale, seed);
            series.push(DataPoint::from_summary(k_c as f64, &summary));
        }
        figure.push_series(series);
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 2: CM degree distributions for target exponents 2.2, 2.6, and 3.0.
pub fn fig2(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig2",
        "Degree distributions of the configuration model (target gamma = 2.2, 2.6, 3.0)",
        "k",
        "P(k)",
    );
    for gamma in [2.2f64, 2.6, 3.0] {
        for m in [1usize, 3] {
            for cutoff in [None, Some(40usize), Some(10)] {
                let topology = TopologySpec::Cm {
                    nodes: scale.degree_nodes,
                    gamma,
                    m,
                    cutoff,
                };
                let label = format!("gamma={gamma}, m={m}, {}", cutoff_label(cutoff));
                figure.push_series(degree_distribution_series(topology, &label, scale, seed));
            }
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 3: HAPA degree distributions (star-like without a cutoff, power-law-like with one).
pub fn fig3(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig3",
        "Degree distributions of the HAPA model",
        "k",
        "P(k)",
    );
    for m in [1usize, 3] {
        for cutoff in [None, Some(50usize), Some(10)] {
            let topology = TopologySpec::Hapa {
                nodes: scale.degree_nodes,
                m,
                cutoff,
            };
            let label = format!("m={m}, {}", cutoff_label(cutoff));
            figure.push_series(degree_distribution_series(topology, &label, scale, seed));
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 4(a-f): DAPA degree distributions as the local TTL `τ_sub`, the connectedness `m`,
/// and the hard cutoff vary.
pub fn fig4(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig4",
        "Degree distributions of the DAPA model over a GRN substrate",
        "k",
        "P(k)",
    );
    let tau_subs = [2u32, 4, 10, 20];
    for m in [1usize, 3] {
        for cutoff in [None, Some(40usize), Some(10)] {
            for tau_sub in tau_subs {
                let topology = TopologySpec::DapaGrn {
                    nodes: scale.search_nodes,
                    m,
                    tau_sub,
                    cutoff,
                };
                let label = format!("m={m}, {}, tau_sub={tau_sub}", cutoff_label(cutoff));
                figure.push_series(degree_distribution_series(topology, &label, scale, seed));
            }
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 4(g): fitted DAPA degree exponent versus the hard cutoff, `m = 1, 2, 3`.
pub fn fig4g(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig4g",
        "DAPA degree-distribution exponent vs hard cutoff (tau_sub = 10)",
        "k_c",
        "gamma",
    );
    for m in [1usize, 2, 3] {
        let mut series = DataSeries::new(format!("m={m}"));
        for k_c in [10usize, 20, 40] {
            let generator = DapaOverGrn::new(scale.search_nodes, m, 10)
                .expect("scale sizes are valid for DAPA")
                .with_cutoff(DegreeCutoff::hard(k_c));
            let label = format!("m={m}, k_c={k_c}");
            let summary = fitted_exponent(
                &generator,
                &label,
                m.max(1),
                k_c.saturating_sub(1),
                scale,
                seed,
            );
            series.push(DataPoint::from_summary(k_c as f64, &summary));
        }
        figure.push_series(series);
    }
    ExperimentOutput::Figure(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny scale so unit tests stay fast in debug builds.
    fn tiny() -> Scale {
        Scale {
            degree_nodes: 600,
            search_nodes: 300,
            realizations: 1,
            searches_per_point: 5,
        }
    }

    #[test]
    fn fig1a_produces_three_decreasing_series() {
        let output = fig1a(&tiny(), 1);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 3);
        for series in &figure.series {
            assert!(
                series.points.len() >= 3,
                "{} has too few bins",
                series.label
            );
            assert!(series.points.first().unwrap().y > series.points.last().unwrap().y);
        }
    }

    #[test]
    fn fig1b_cutoff_series_have_bounded_support() {
        let output = fig1b(&tiny(), 2);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 8);
        let capped = figure.series_by_label("m=1, k_c=10").unwrap();
        // Log-bin centers can sit slightly above the largest sample, so allow one bin of
        // slack beyond the cutoff of 10.
        assert!(
            capped.points.iter().all(|p| p.x <= 14.0),
            "support must stop at the cutoff"
        );
        let free = figure.series_by_label("m=1, no k_c").unwrap();
        assert!(free.points.last().unwrap().x > capped.points.last().unwrap().x);
    }

    #[test]
    fn fig1c_exponent_growths_with_cutoff() {
        // Paper, Fig. 1(c): the exponent degrades (decreases) as the cutoff shrinks, i.e. it
        // grows with k_c. With a tiny test network we only require the trend between the
        // extremes, allowing noise in between.
        let scale = Scale {
            degree_nodes: 2_500,
            ..tiny()
        };
        let output = fig1c(&scale, 3);
        let figure = output.as_figure().unwrap();
        let m1 = figure.series_by_label("m=1").unwrap();
        let at_10 = m1.y_at(10.0).unwrap();
        let at_50 = m1.y_at(50.0).unwrap();
        assert!(
            at_50 > at_10 - 0.3,
            "exponent at k_c=50 ({at_50}) should not be far below the k_c=10 value ({at_10})"
        );
        for series in &figure.series {
            for p in &series.points {
                assert!((1.0..=4.5).contains(&p.y), "implausible exponent {}", p.y);
            }
        }
    }

    #[test]
    fn fig3_star_series_reaches_larger_degrees_than_capped_series() {
        let output = fig3(&tiny(), 4);
        let figure = output.as_figure().unwrap();
        let star = figure.series_by_label("m=1, no k_c").unwrap();
        let capped = figure.series_by_label("m=1, k_c=10").unwrap();
        let star_max_k = star.points.iter().map(|p| p.x).fold(0.0f64, f64::max);
        let capped_max_k = capped.points.iter().map(|p| p.x).fold(0.0f64, f64::max);
        assert!(star_max_k > capped_max_k);
        // One log-bin of slack beyond the cutoff of 10 (bin centers exceed the samples).
        assert!(capped_max_k <= 14.0);
    }

    #[test]
    fn fig4g_exponents_are_positive_and_finite() {
        let scale = Scale {
            degree_nodes: 600,
            search_nodes: 500,
            realizations: 1,
            searches_per_point: 5,
        };
        let output = fig4g(&scale, 5);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 3);
        for series in &figure.series {
            for p in &series.points {
                assert!(
                    p.y.is_finite() && p.y > 0.0,
                    "{}: bad exponent {}",
                    series.label,
                    p.y
                );
            }
        }
    }
}
