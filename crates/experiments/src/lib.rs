//! # sfo-experiments
//!
//! Harness reproducing every figure and table of *"Scale-Free Overlay Topologies with Hard
//! Cutoffs for Unstructured Peer-to-Peer Networks"* (Guclu & Yuksel, ICDCS 2007).
//!
//! Each experiment is registered in [`all_experiments`] under the identifier used in
//! `DESIGN.md` (`fig1a` ... `fig12`, `table1`, `table2`, `msg-complexity`,
//! `ablation-minlinks`, `churn`) and can be run either through the library API or the
//! `reproduce` binary:
//!
//! ```text
//! cargo run --release -p sfo-experiments --bin reproduce -- --scale reduced fig9
//! ```
//!
//! Scales control the network size and realization count: [`Scale::paper`] matches the
//! paper's parameters (`N = 10^4` search topologies, `N = 10^5` degree distributions, 10
//! realizations), [`Scale::reduced`] is a laptop-friendly compromise, and [`Scale::smoke`]
//! is small enough for CI and the test suite. The paper's qualitative conclusions (who
//! wins, how cutoffs shift the curves) are visible at every scale; absolute hit counts
//! shrink with the network.
//!
//! # Example
//!
//! ```
//! use sfo_experiments::{run_experiment, Scale};
//!
//! let output = run_experiment("table2", &Scale::smoke(), 7).expect("table2 is registered");
//! println!("{output}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degree_figs;
pub mod extensions;
pub mod extras;
pub mod helpers;
pub mod nf_rw_figs;
pub mod search_figs;
pub mod tables;

use serde::{Deserialize, Serialize};
use sfo_analysis::{FigureData, TextTable};
use std::fmt;

/// Experiment sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Number of nodes for degree-distribution topologies (Figs. 1-4).
    pub degree_nodes: usize,
    /// Number of nodes for search topologies (Figs. 6-12).
    pub search_nodes: usize,
    /// Independent network realizations averaged per data point.
    pub realizations: usize,
    /// Searches (random sources) per TTL value per realization.
    pub searches_per_point: usize,
}

impl Scale {
    /// The paper's parameters: slow, intended for full reproduction runs.
    pub fn paper() -> Self {
        Scale {
            degree_nodes: 100_000,
            search_nodes: 10_000,
            realizations: 10,
            searches_per_point: 100,
        }
    }

    /// A laptop-friendly compromise that preserves every qualitative trend.
    pub fn reduced() -> Self {
        Scale {
            degree_nodes: 20_000,
            search_nodes: 4_000,
            realizations: 3,
            searches_per_point: 60,
        }
    }

    /// Small enough for CI and unit tests.
    pub fn smoke() -> Self {
        Scale {
            degree_nodes: 3_000,
            search_nodes: 1_000,
            realizations: 2,
            searches_per_point: 20,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::reduced()
    }
}

/// What an experiment produces: a figure (curves) or a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// A figure made of labelled curves.
    Figure(FigureData),
    /// A fixed-width text table.
    Table(TextTable),
}

impl ExperimentOutput {
    /// Returns the figure, if this output is one.
    pub fn as_figure(&self) -> Option<&FigureData> {
        match self {
            ExperimentOutput::Figure(f) => Some(f),
            ExperimentOutput::Table(_) => None,
        }
    }

    /// Returns the table, if this output is one.
    pub fn as_table(&self) -> Option<&TextTable> {
        match self {
            ExperimentOutput::Table(t) => Some(t),
            ExperimentOutput::Figure(_) => None,
        }
    }

    /// Renders the output as CSV (figures) or as its text form (tables).
    pub fn to_csv(&self) -> String {
        match self {
            ExperimentOutput::Figure(f) => f.to_csv(),
            ExperimentOutput::Table(t) => t.to_string(),
        }
    }
}

impl fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentOutput::Figure(fig) => write!(f, "{fig}"),
            ExperimentOutput::Table(table) => write!(f, "{table}"),
        }
    }
}

/// A registered experiment.
#[derive(Clone, Copy)]
pub struct ExperimentSpec {
    /// Identifier used in `DESIGN.md` and on the `reproduce` command line.
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runner: `(scale, seed) -> output`.
    pub run: fn(&Scale, u64) -> ExperimentOutput,
}

impl fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// Returns every registered experiment, in the order they appear in the paper.
pub fn all_experiments() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            id: "fig1a",
            title: "PA degree distributions without cutoff",
            run: degree_figs::fig1a,
        },
        ExperimentSpec {
            id: "fig1b",
            title: "PA degree distributions with hard cutoffs",
            run: degree_figs::fig1b,
        },
        ExperimentSpec {
            id: "fig1c",
            title: "PA degree exponent vs hard cutoff",
            run: degree_figs::fig1c,
        },
        ExperimentSpec {
            id: "fig2",
            title: "CM degree distributions (gamma = 2.2, 2.6, 3)",
            run: degree_figs::fig2,
        },
        ExperimentSpec {
            id: "fig3",
            title: "HAPA degree distributions",
            run: degree_figs::fig3,
        },
        ExperimentSpec {
            id: "fig4",
            title: "DAPA degree distributions vs tau_sub",
            run: degree_figs::fig4,
        },
        ExperimentSpec {
            id: "fig4g",
            title: "DAPA degree exponent vs hard cutoff",
            run: degree_figs::fig4g,
        },
        ExperimentSpec {
            id: "table1",
            title: "Scale-free network diameter behavior",
            run: tables::table1,
        },
        ExperimentSpec {
            id: "table2",
            title: "Topology generators vs global information",
            run: tables::table2,
        },
        ExperimentSpec {
            id: "fig6",
            title: "FL hits vs tau on PA and HAPA",
            run: search_figs::fig6,
        },
        ExperimentSpec {
            id: "fig7",
            title: "FL hits vs tau on CM",
            run: search_figs::fig7,
        },
        ExperimentSpec {
            id: "fig8",
            title: "FL hits vs tau on DAPA",
            run: search_figs::fig8,
        },
        ExperimentSpec {
            id: "fig9",
            title: "NF hits vs tau on PA, CM, HAPA",
            run: nf_rw_figs::fig9,
        },
        ExperimentSpec {
            id: "fig10",
            title: "NF hits vs tau on DAPA",
            run: nf_rw_figs::fig10,
        },
        ExperimentSpec {
            id: "fig11",
            title: "RW hits vs tau on PA, CM, HAPA",
            run: nf_rw_figs::fig11,
        },
        ExperimentSpec {
            id: "fig12",
            title: "RW hits vs tau on DAPA",
            run: nf_rw_figs::fig12,
        },
        ExperimentSpec {
            id: "msg-complexity",
            title: "Messages per search: NF vs RW",
            run: extras::msg_complexity,
        },
        ExperimentSpec {
            id: "ablation-minlinks",
            title: "Effect of minimum connectedness m under a hard cutoff",
            run: extras::ablation_minlinks,
        },
        ExperimentSpec {
            id: "resilience",
            title: "Random failures vs hub attacks, with and without cutoffs",
            run: extras::resilience,
        },
        ExperimentSpec {
            id: "churn",
            title: "Overlay health and search success under churn",
            run: extras::churn,
        },
        ExperimentSpec {
            id: "generator-zoo",
            title: "Structural summary of every topology generator, with and without cutoffs",
            run: extensions::generator_zoo,
        },
        ExperimentSpec {
            id: "search-strategies",
            title: "Hits vs tau for all search strategies on PA topologies",
            run: extensions::search_strategies,
        },
        ExperimentSpec {
            id: "replication",
            title: "Uniform vs proportional vs square-root replication",
            run: extensions::replication,
        },
        ExperimentSpec {
            id: "hub-load",
            title: "Hub-load redistribution under hard cutoffs",
            run: extensions::hub_load,
        },
        ExperimentSpec {
            id: "substrate-comparison",
            title: "DAPA over a GRN vs a 2D mesh substrate",
            run: extensions::substrate_comparison,
        },
        ExperimentSpec {
            id: "churn-trace",
            title: "Identical churn trace replayed with/without cutoffs and repair",
            run: extensions::churn_trace,
        },
    ]
}

/// Runs the experiment with the given id, or returns `None` if it is not registered.
pub fn run_experiment(id: &str, scale: &Scale, seed: u64) -> Option<ExperimentOutput> {
    all_experiments()
        .into_iter()
        .find(|e| e.id == id)
        .map(|e| (e.run)(scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_cover_design_md() {
        let experiments = all_experiments();
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        for required in [
            "fig1a",
            "fig1b",
            "fig1c",
            "fig2",
            "fig3",
            "fig4",
            "fig4g",
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "msg-complexity",
            "ablation-minlinks",
            "churn",
        ] {
            assert!(ids.contains(&required), "missing experiment {required}");
        }
    }

    #[test]
    fn unknown_experiment_returns_none() {
        assert!(run_experiment("fig99", &Scale::smoke(), 1).is_none());
    }

    #[test]
    fn scales_are_ordered_by_size() {
        let paper = Scale::paper();
        let reduced = Scale::reduced();
        let smoke = Scale::smoke();
        assert!(
            paper.degree_nodes > reduced.degree_nodes && reduced.degree_nodes > smoke.degree_nodes
        );
        assert!(
            paper.search_nodes > reduced.search_nodes && reduced.search_nodes > smoke.search_nodes
        );
        assert_eq!(Scale::default(), reduced);
    }

    #[test]
    fn experiment_output_accessors() {
        let fig = ExperimentOutput::Figure(FigureData::new("x", "t", "a", "b"));
        assert!(fig.as_figure().is_some());
        assert!(fig.as_table().is_none());
        let table = ExperimentOutput::Table(TextTable::new(vec!["c"]));
        assert!(table.as_table().is_some());
        assert!(table.as_figure().is_none());
        assert!(fig.to_csv().contains("series"));
        assert!(format!("{fig}").contains("# x"));
    }

    #[test]
    fn spec_debug_is_informative() {
        let spec = &all_experiments()[0];
        let text = format!("{spec:?}");
        assert!(text.contains("fig1a"));
    }
}
