//! Experiments beyond the paper's plotted figures: messaging complexity (§V-B.2, results
//! "available upon request"), the minimum-connectedness ablation behind the paper's "2-3
//! links" guideline, and the churn extension built on `sfo-sim`.
//!
//! All three run through the declarative scenario layer: the sweeps are
//! [`ScenarioSpec`]s over the PA grid, and the churn experiment is a pair of
//! churn-dynamics scenarios whose [`sfo_scenario::ChurnRealization`] samples become the
//! plotted series.

use crate::helpers::{nf_rw_ttls, realization_rng, scenario_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::{DataPoint, DataSeries, FigureData, Summary};
use sfo_core::pa::PreferentialAttachment;
use sfo_core::DegreeCutoff;
use sfo_graph::resilience::{robustness_profile, RemovalStrategy};
use sfo_scenario::{
    ScenarioRunner, ScenarioSpec, SearchSpec, SweepMetric, SweepSpec, TopologySpec,
};
use sfo_sim::overlay::{JoinStrategy, OverlayConfig};
use sfo_sim::query::QueryMethod;
use sfo_sim::simulation::SimulationConfig;

/// The PA `m × k_c` grid shared by the messaging and ablation sweeps.
fn pa_grid(
    name: impl Into<String>,
    search: SearchSpec,
    stubs: Vec<usize>,
    cutoffs: Vec<Option<usize>>,
    ttls: Vec<u32>,
    scale: &Scale,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec::sweep(
        name,
        TopologySpec::Pa {
            nodes: scale.search_nodes,
            m: 1,
            cutoff: None,
        },
        search,
        SweepSpec::grid(stubs, cutoffs, ttls, scale.searches_per_point),
        seed,
        scale.realizations,
    )
}

/// Messaging complexity: mean messages per search for NF and message-normalized RW on PA
/// topologies, across cutoffs (§V-B.2).
///
/// The paper reports that NF consistently costs no more than RW at equal nominal τ, that
/// the gap shrinks for `m = 1`, and that the messaging penalty of hard cutoffs is minimal.
pub fn msg_complexity(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "msg-complexity",
        "Messages per search: NF vs message-normalized RW on PA topologies",
        "tau",
        "messages",
    );
    let cutoffs = vec![Some(10), Some(50), None];
    let nf = scenario_series(
        &pa_grid(
            "msg-complexity-nf",
            SearchSpec::NormalizedFlooding { k_min: None },
            vec![1, 2, 3],
            cutoffs.clone(),
            nf_rw_ttls(),
            scale,
            seed,
        ),
        SweepMetric::Messages,
    );
    let rw = scenario_series(
        &pa_grid(
            "msg-complexity-rw",
            SearchSpec::RwNormalizedToNf { k_min: None },
            vec![1, 2, 3],
            cutoffs,
            nf_rw_ttls(),
            scale,
            seed,
        ),
        SweepMetric::Messages,
    );
    // Keep the historical legend: the same grid point appears once per algorithm, with
    // the topology-family prefix swapped for the algorithm name.
    for (mut nf_series, mut rw_series) in nf.into_iter().zip(rw) {
        nf_series.label = nf_series.label.replacen("PA,", "NF,", 1);
        rw_series.label = rw_series.label.replacen("PA,", "RW,", 1);
        figure.push_series(nf_series);
        figure.push_series(rw_series);
    }
    ExperimentOutput::Figure(figure)
}

/// Minimum-connectedness ablation: FL and NF hits at a fixed τ as `m` varies under a tight
/// cutoff (`k_c = 10`), quantifying the paper's guideline that 2-3 links per peer remove
/// most of the cutoff penalty.
pub fn ablation_minlinks(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "ablation-minlinks",
        "Effect of minimum connectedness m on search efficiency under k_c=10 (PA topologies)",
        "m",
        "hits",
    );
    let fl_ttl = 6u32;
    let nf_ttl = 8u32;
    let stubs = vec![1usize, 2, 3];
    let sweeps = [
        (
            format!("FL, tau={fl_ttl}"),
            pa_grid(
                "ablation-fl",
                SearchSpec::Flooding,
                stubs.clone(),
                vec![Some(10)],
                vec![fl_ttl],
                scale,
                seed,
            ),
        ),
        (
            format!("NF, tau={nf_ttl}"),
            pa_grid(
                "ablation-nf",
                SearchSpec::NormalizedFlooding { k_min: None },
                stubs.clone(),
                vec![Some(10)],
                vec![nf_ttl],
                scale,
                seed,
            ),
        ),
        (
            format!("FL, tau={fl_ttl}, no k_c"),
            pa_grid(
                "ablation-fl-free",
                SearchSpec::Flooding,
                stubs.clone(),
                vec![None],
                vec![fl_ttl],
                scale,
                seed,
            ),
        ),
    ];
    for (label, spec) in sweeps {
        // One curve per m, each with a single TTL point; re-plot hits against m.
        let mut series = DataSeries::new(label);
        for (m, curve) in stubs.iter().zip(scenario_series(&spec, SweepMetric::Hits)) {
            series.push(DataPoint::single(*m as f64, curve.points[0].y));
        }
        figure.push_series(series);
    }
    ExperimentOutput::Figure(figure)
}

/// Robustness extension ("robust yet fragile", paper §III): giant-component fraction of PA
/// overlays after removing a growing fraction of peers, either uniformly at random (peer
/// failures) or highest-degree first (a targeted attack on the hubs), with and without a
/// hard cutoff.
pub fn resilience(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "resilience",
        "Giant-component fraction under random failures vs targeted attacks (PA overlays)",
        "removed fraction",
        "giant component fraction",
    );
    let fractions = [0.0f64, 0.02, 0.05, 0.1, 0.2, 0.3];
    let strategies = [
        ("random failures", RemovalStrategy::Random),
        ("hub attack", RemovalStrategy::HighestDegree),
    ];
    for (cutoff_name, cutoff) in [
        ("no k_c", DegreeCutoff::Unbounded),
        ("k_c=10", DegreeCutoff::hard(10)),
    ] {
        let generator = PreferentialAttachment::new(scale.search_nodes, 2)
            .expect("scale sizes exceed the PA seed")
            .with_cutoff(cutoff);
        for (strategy_name, strategy) in strategies {
            let label = format!("{strategy_name}, {cutoff_name}");
            let mut per_fraction = vec![Summary::new(); fractions.len()];
            for r in 0..scale.realizations {
                let mut rng = realization_rng(seed, label.len() as u64, r);
                let graph = generator
                    .generate(&mut rng)
                    .expect("PA generation succeeds");
                for (summary, point) in per_fraction
                    .iter_mut()
                    .zip(robustness_profile(&graph, strategy, &fractions, &mut rng))
                {
                    summary.add(point.giant_component_fraction);
                }
            }
            let mut series = DataSeries::new(label);
            for (&fraction, summary) in fractions.iter().zip(&per_fraction) {
                series.push(DataPoint::from_summary(fraction, summary));
            }
            figure.push_series(series);
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Churn extension: overlay health (giant-component fraction) and query success rate over
/// time under join/leave/crash churn, for a hard cutoff versus an unbounded overlay.
pub fn churn(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "churn",
        "Overlay health and query success under churn (sfo-sim)",
        "time",
        "value",
    );
    let initial_peers = scale.search_nodes.clamp(200, 2_000);
    for (label, cutoff) in [
        ("k_c=10", DegreeCutoff::hard(10)),
        ("no k_c", DegreeCutoff::Unbounded),
    ] {
        let config = SimulationConfig {
            initial_peers,
            duration: 300,
            join_rate: 1.0,
            leave_rate: 0.8,
            crash_rate: 0.2,
            query_rate: 4.0,
            query_ttl: 6,
            query_method: QueryMethod::NormalizedFlooding { k_min: 3 },
            overlay: OverlayConfig {
                stubs: 3,
                cutoff,
                join_strategy: JoinStrategy::HopAndAttempt {
                    max_hops_per_link: 200,
                },
                repair_on_leave: true,
            },
            catalog_items: 100,
            catalog_skew: 1.0,
            base_replicas: (initial_peers / 20).max(4),
            snapshot_interval: 30,
        };
        let spec = ScenarioSpec::churn(format!("churn {label}"), config, seed, 1);
        let report = ScenarioRunner::new()
            .run(&spec)
            .unwrap_or_else(|e| panic!("churn scenario '{}' failed: {e}", spec.name));
        let run = &report.churn_realizations().expect("churn result")[0];

        let mut giant = DataSeries::new(format!("giant component fraction, {label}"));
        for sample in &run.samples {
            giant.push(DataPoint::single(
                sample.time as f64,
                sample.giant_component_fraction,
            ));
        }
        figure.push_series(giant);

        let mut success = DataSeries::new(format!("query success rate, {label}"));
        success.push(DataPoint::single(config.duration as f64, run.success_rate));
        figure.push_series(success);

        let mut churn_cost = DataSeries::new(format!("control messages per churn event, {label}"));
        churn_cost.push(DataPoint::single(
            config.duration as f64,
            run.mean_churn_messages,
        ));
        figure.push_series(churn_cost);
    }
    ExperimentOutput::Figure(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            degree_nodes: 300,
            search_nodes: 300,
            realizations: 1,
            searches_per_point: 8,
        }
    }

    #[test]
    fn ablation_minlinks_shows_higher_m_helps_under_a_cutoff() {
        let output = ablation_minlinks(&tiny(), 1);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 3);
        let fl = &figure.series[0];
        assert_eq!(fl.points.len(), 3);
        let m1 = fl.y_at(1.0).unwrap();
        let m3 = fl.y_at(3.0).unwrap();
        assert!(
            m3 > m1,
            "flooding with m=3 ({m3}) should beat m=1 ({m1}) under k_c=10"
        );
    }

    #[test]
    fn resilience_hub_attacks_hurt_unbounded_overlays_more_than_capped_ones() {
        let scale = Scale {
            search_nodes: 600,
            ..tiny()
        };
        let output = resilience(&scale, 7);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 4);
        for series in &figure.series {
            assert!(
                (series.y_at(0.0).unwrap() - 1.0).abs() < 1e-9,
                "{}",
                series.label
            );
            for p in &series.points {
                assert!((0.0..=1.0).contains(&p.y));
            }
        }
        // Random failures barely hurt a scale-free overlay; a hub attack of the same size
        // hurts it more ("robust yet fragile").
        let random = figure
            .series_by_label("random failures, no k_c")
            .unwrap()
            .y_at(0.2)
            .unwrap();
        let attack = figure
            .series_by_label("hub attack, no k_c")
            .unwrap()
            .y_at(0.2)
            .unwrap();
        assert!(
            attack < random,
            "hub attack ({attack:.2}) should hurt more than random failures ({random:.2})"
        );
    }

    #[test]
    fn churn_reports_health_and_success_series_for_both_cutoffs() {
        let scale = Scale {
            search_nodes: 200,
            ..tiny()
        };
        let output = churn(&scale, 2);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 6);
        let giant = figure
            .series_by_label("giant component fraction, k_c=10")
            .expect("giant-component series present");
        assert!(!giant.points.is_empty());
        for p in &giant.points {
            assert!((0.0..=1.0).contains(&p.y));
        }
        let success = figure
            .series_by_label("query success rate, k_c=10")
            .unwrap();
        assert!(
            success.points[0].y > 0.2,
            "query success {} too low",
            success.points[0].y
        );
    }

    #[test]
    fn msg_complexity_nf_and_rw_message_costs_track_each_other() {
        // RW budgets are defined per search as the NF message count, but the NF and RW
        // series are measured on independent random sources, so only require the means to
        // track each other within a generous band.
        let scale = tiny();
        let output = msg_complexity(&scale, 3);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 18);
        let nf = figure.series_by_label("NF, m=2, k_c=10").unwrap();
        let rw = figure.series_by_label("RW, m=2, k_c=10").unwrap();
        for (a, b) in nf.points.iter().zip(&rw.points) {
            assert!(
                b.y <= a.y * 1.5 + 2.0,
                "RW messages {} drift far above the NF budget {}",
                b.y,
                a.y
            );
            assert!(b.y > 0.0);
        }
    }
}
