//! Extension experiments: the generator zoo, alternative search strategies, replication
//! strategies, and hub-load redistribution.
//!
//! These go beyond the paper's plotted figures but stay inside its problem statement. The
//! generator zoo covers the modified preferential-attachment models the paper cites in
//! §III-C as alternative routes to tunable exponents; the search-strategy comparison adds
//! the practical algorithms its related-work section points to; the replication experiment
//! quantifies the Cohen-Shenker allocation rules its §II cites; and the hub-load experiment
//! measures how hard cutoffs redistribute forwarding load away from hubs, the fairness
//! argument that motivates the whole paper.

use crate::helpers::{nf_rw_ttls, realization_rng, scenario_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::kmin::select_k_min;
use sfo_analysis::TextTable;
use sfo_core::attractiveness::InitialAttractiveness;
use sfo_core::cm::ConfigurationModel;
use sfo_core::fitness::{FitnessDistribution, FitnessModel};
use sfo_core::hapa::HopAndAttempt;
use sfo_core::local_events::LocalEventsModel;
use sfo_core::nonlinear::NonlinearPreferentialAttachment;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::ucm::UncorrelatedConfigurationModel;
use sfo_core::{DegreeCutoff, TopologyGenerator};
use sfo_graph::{centrality, correlations, kcore, metrics, traversal};
use sfo_scenario::{ScenarioSpec, SearchSpec, SweepMetric, SweepSpec, TopologySpec};
use sfo_sim::catalog::Catalog;
use sfo_sim::overlay::{JoinStrategy, OverlayConfig, OverlayNetwork};
use sfo_sim::query::{run_query, QueryMethod};
use sfo_sim::replication::{allocate, expected_search_size, place, ReplicationStrategy};

fn cutoff_label(cutoff: DegreeCutoff) -> String {
    match cutoff.value() {
        None => "no k_c".to_string(),
        Some(k_c) => format!("k_c={k_c}"),
    }
}

fn format_f64(value: f64) -> String {
    format!("{value:.3}")
}

/// Generator zoo: structural summary of every implemented topology-construction mechanism,
/// with and without a hard cutoff (`k_c = 10`).
///
/// Columns: generator, cutoff, maximum degree, mean degree, fitted exponent (MLE with a
/// Clauset-style `k_min` scan; `-` when the distribution is not power-law-like), and
/// giant-component fraction.
pub fn generator_zoo(scale: &Scale, seed: u64) -> ExperimentOutput {
    let nodes = scale.search_nodes;
    /// One zoo row: label, uncapped generator, capped generator.
    type ZooEntry = (
        String,
        Box<dyn TopologyGenerator>,
        Box<dyn TopologyGenerator>,
    );
    let generators: Vec<ZooEntry> = vec![
        zoo_entry(
            "PA m=2",
            PreferentialAttachment::new(nodes, 2).expect("valid PA config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "NLPA alpha=0.5 m=2",
            NonlinearPreferentialAttachment::new(nodes, 2, 0.5).expect("valid NLPA config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "NLPA alpha=1.5 m=1",
            NonlinearPreferentialAttachment::new(nodes, 1, 1.5).expect("valid NLPA config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "DMS gamma=2.5 m=2",
            InitialAttractiveness::with_target_gamma(nodes, 2, 2.5).expect("valid DMS config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "Fitness exp(1) m=2",
            FitnessModel::new(nodes, 2)
                .expect("valid fitness config")
                .with_distribution(FitnessDistribution::Exponential { rate: 1.0 }),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "LocalEvents p=q=0.2 m=2",
            LocalEventsModel::new(nodes, 2, 0.2, 0.2).expect("valid local-events config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "CM gamma=2.6 m=2",
            ConfigurationModel::new(nodes, 2.6, 2).expect("valid CM config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "UCM gamma=2.6 m=2",
            UncorrelatedConfigurationModel::new(nodes, 2.6, 2).expect("valid UCM config"),
            |g, c| g.with_cutoff(c),
        ),
        zoo_entry(
            "HAPA m=2",
            HopAndAttempt::new(nodes, 2).expect("valid HAPA config"),
            |g, c| g.with_cutoff(c),
        ),
    ];

    let mut table = TextTable::new(vec![
        "generator",
        "cutoff",
        "max k",
        "mean k",
        "gamma (MLE)",
        "giant component",
    ]);
    for (name, unbounded, capped) in &generators {
        for (generator, cutoff) in [
            (unbounded, DegreeCutoff::Unbounded),
            (capped, DegreeCutoff::hard(10)),
        ] {
            let mut rng = realization_rng(seed, 0x5A00, name.len() + cutoff.value().unwrap_or(0));
            let graph = generator
                .generate(&mut rng)
                .unwrap_or_else(|e| panic!("generator {name} failed: {e}"));
            let hist = metrics::degree_histogram(&graph);
            let fit_max = cutoff
                .value()
                .map(|k| k.saturating_sub(1))
                .unwrap_or_else(|| hist.max_degree().unwrap_or(1));
            let gamma = select_k_min(&graph.degrees(), 1, 6, fit_max.max(2))
                .map(|s| format_f64(s.fit.gamma))
                .unwrap_or_else(|| "-".to_string());
            table.push_row(vec![
                name.clone(),
                cutoff_label(cutoff),
                graph.max_degree().unwrap_or(0).to_string(),
                format_f64(graph.average_degree()),
                gamma,
                format_f64(traversal::giant_component_fraction(&graph)),
            ]);
        }
    }
    ExperimentOutput::Table(table)
}

/// Helper building one generator-zoo entry: the unbounded generator plus its `k_c = 10`
/// variant, both boxed as trait objects.
fn zoo_entry<G>(
    name: &str,
    generator: G,
    with_cutoff: impl Fn(G, DegreeCutoff) -> G,
) -> (
    String,
    Box<dyn TopologyGenerator>,
    Box<dyn TopologyGenerator>,
)
where
    G: TopologyGenerator + Clone + 'static,
{
    let capped = with_cutoff(generator.clone(), DegreeCutoff::hard(10));
    (name.to_string(), Box::new(generator), Box::new(capped))
}

/// Search-strategy comparison: hits versus TTL for every implemented search algorithm on PA
/// topologies (`m = 2`), with and without a hard cutoff.
///
/// FL is the coverage ceiling, NF/pFL/expanding-ring are the practical flooding variants,
/// and RW/HD-RW are the walk variants; the figure shows which of them benefit from hard
/// cutoffs (the paper's NF/RW observation) and which lose their hub shortcut (HD-RW).
pub fn search_strategies(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = sfo_analysis::FigureData::new(
        "search-strategies",
        "Hits vs tau for all search strategies on PA topologies (m=2)",
        "tau",
        "hits",
    );
    let algorithms: Vec<(&str, SearchSpec)> = vec![
        ("FL", SearchSpec::Flooding),
        (
            "NF k_min=2",
            SearchSpec::NormalizedFlooding { k_min: Some(2) },
        ),
        ("pFL p=0.5", SearchSpec::ProbabilisticFlooding { p: 0.5 }),
        (
            "ring 1+2",
            SearchSpec::ExpandingRing {
                initial_ttl: 1,
                increment: 2,
            },
        ),
        ("RW", SearchSpec::RandomWalk),
        ("HD-RW", SearchSpec::DegreeBiasedWalk),
    ];
    for cutoff in [DegreeCutoff::Unbounded, DegreeCutoff::hard(10)] {
        for (name, search) in &algorithms {
            // One single-curve scenario per algorithm. The curve label (and so the RNG
            // stream) is the topology's, so every algorithm sees identical realizations
            // for a given cutoff — an exact like-for-like comparison.
            let spec = ScenarioSpec::sweep(
                format!("search-strategies {name} {}", cutoff_label(cutoff)),
                TopologySpec::Pa {
                    nodes: scale.search_nodes,
                    m: 2,
                    cutoff: cutoff.value(),
                },
                search.clone(),
                SweepSpec::single(nf_rw_ttls(), scale.searches_per_point),
                seed,
                scale.realizations,
            );
            let mut series = scenario_series(&spec, SweepMetric::Hits).remove(0);
            series.label = format!("{name}, {}", cutoff_label(cutoff));
            figure.push_series(series);
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Replication-strategy comparison (Cohen & Shenker, ref. \[22\]): expected search size and
/// simulated normalized-flooding success rate for uniform, proportional, and square-root
/// replica allocation over a live overlay with hard cutoffs.
pub fn replication(scale: &Scale, seed: u64) -> ExperimentOutput {
    let peers = (scale.search_nodes / 2).clamp(200, 2_000);
    let items = 50usize;
    let budget = items * 6;
    let queries = (scale.searches_per_point * 10).max(100);
    let ttl = 5u32;

    let catalog = Catalog::new(items, 1.0).expect("valid catalog");
    let mut table = TextTable::new(vec![
        "strategy",
        "expected search size",
        "success rate",
        "mean messages/query",
    ]);
    for (name, strategy) in [
        ("uniform", ReplicationStrategy::Uniform),
        ("proportional", ReplicationStrategy::Proportional),
        ("square-root", ReplicationStrategy::SquareRoot),
    ] {
        let mut rng = realization_rng(seed, 0xA110C, name.len());
        let mut overlay = OverlayNetwork::new(OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(10),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        })
        .expect("valid overlay config");
        for _ in 0..peers {
            overlay.join(&mut rng);
        }
        let allocation = allocate(&catalog, strategy, budget).expect("budget covers the catalog");
        place(&mut overlay, &allocation, &mut rng).expect("overlay is non-empty");

        let mut successes = 0usize;
        let mut messages = 0usize;
        for _ in 0..queries {
            let source = overlay.random_peer(&mut rng).expect("overlay is non-empty");
            let item = catalog.sample_query(&mut rng);
            let outcome = run_query(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 3 },
                source,
                item,
                ttl,
                &mut rng,
            )
            .expect("query parameters are valid");
            if outcome.found {
                successes += 1;
            }
            messages += outcome.messages;
        }
        table.push_row(vec![
            name.to_string(),
            format_f64(expected_search_size(&catalog, &allocation, peers)),
            format_f64(successes as f64 / queries as f64),
            format_f64(messages as f64 / queries as f64),
        ]);
    }
    ExperimentOutput::Table(table)
}

/// Substrate comparison for DAPA (paper §IV-B): the geometric random network used
/// throughout the paper versus the two-dimensional regular mesh it mentions as the
/// alternative.
///
/// For the same overlay size, stub count, and local TTL, the table reports the largest hub
/// the overlay grows and the normalized-flooding coverage at a fixed search TTL. The mesh's
/// horizons grow only quadratically with `τ_sub`, so its overlays are lighter-tailed and
/// need larger `τ_sub` to reach the same search efficiency — the locality/scale-freeness
/// trade-off of Table II in substrate form.
pub fn substrate_comparison(scale: &Scale, seed: u64) -> ExperimentOutput {
    let nodes = scale.search_nodes;
    let nf_ttl = 8u32;
    let mut table = TextTable::new(vec![
        "substrate",
        "tau_sub",
        "cutoff",
        "max k",
        "mean k",
        "NF hits @ tau=8",
    ]);
    for tau_sub in [2u32, 4, 10] {
        for cutoff in [DegreeCutoff::Unbounded, DegreeCutoff::hard(10)] {
            let configs: Vec<(&str, TopologySpec)> = vec![
                (
                    "GRN",
                    TopologySpec::DapaGrn {
                        nodes,
                        m: 2,
                        tau_sub,
                        cutoff: cutoff.value(),
                    },
                ),
                (
                    "mesh",
                    TopologySpec::DapaMesh {
                        nodes,
                        m: 2,
                        tau_sub,
                        cutoff: cutoff.value(),
                    },
                ),
            ];
            for (name, topology) in &configs {
                let generator = topology.build().expect("valid DAPA config");
                let mut rng = realization_rng(
                    seed,
                    0x5B5,
                    name.len() + tau_sub as usize + cutoff.value().unwrap_or(0),
                );
                let graph = generator
                    .generate(&mut rng)
                    .unwrap_or_else(|e| panic!("DAPA over {name} failed: {e}"));
                let spec = ScenarioSpec::sweep(
                    format!(
                        "substrate-comparison {name} t{tau_sub} {}",
                        cutoff_label(cutoff)
                    ),
                    topology.clone(),
                    SearchSpec::NormalizedFlooding { k_min: Some(2) },
                    SweepSpec::single(vec![nf_ttl], scale.searches_per_point),
                    seed,
                    scale.realizations,
                );
                let nf = scenario_series(&spec, SweepMetric::Hits).remove(0);
                table.push_row(vec![
                    name.to_string(),
                    tau_sub.to_string(),
                    cutoff_label(cutoff),
                    graph.max_degree().unwrap_or(0).to_string(),
                    format_f64(graph.average_degree()),
                    format_f64(nf.points[0].y),
                ]);
            }
        }
    }
    ExperimentOutput::Table(table)
}

/// Controlled churn comparison: the *same* heavy-tailed churn trace (Pareto sessions,
/// Poisson arrivals, 25% crashes) replayed against overlays with and without a hard cutoff
/// and with and without leave repair.
///
/// Unlike the `churn` experiment (which draws churn on the fly), the trace-replay design
/// guarantees that all four configurations face the identical sequence of arrivals and
/// departures, so differences in lookup success and connectivity are attributable to the
/// overlay policy alone — the controlled experiment the paper's future-work section asks
/// for.
pub fn churn_trace(scale: &Scale, seed: u64) -> ExperimentOutput {
    use sfo_sim::churn::{generate_trace, ChurnTraceConfig, SessionModel};
    use sfo_sim::trace_runner::{run_trace, TraceRunConfig};

    let bootstrap = (scale.search_nodes / 4).clamp(100, 1_000);
    let duration = 600u64;
    let trace_config = ChurnTraceConfig {
        duration,
        arrival_rate: bootstrap as f64 / duration as f64,
        sessions: SessionModel::Pareto {
            shape: 1.6,
            minimum: 30.0,
        },
        crash_fraction: 0.25,
    };
    let mut trace_rng = realization_rng(seed, 0xC4A2, 0);
    let trace = generate_trace(&trace_config, &mut trace_rng).expect("valid trace config");

    let mut table = TextTable::new(vec![
        "cutoff",
        "leave repair",
        "lookup success",
        "worst giant component",
        "final max degree",
        "control msgs / churn event",
    ]);
    for (cutoff, repair) in [
        (DegreeCutoff::hard(10), true),
        (DegreeCutoff::hard(10), false),
        (DegreeCutoff::Unbounded, true),
        (DegreeCutoff::Unbounded, false),
    ] {
        let mut config = TraceRunConfig::small();
        config.bootstrap_peers = bootstrap;
        config.overlay = OverlayConfig {
            stubs: 3,
            cutoff,
            join_strategy: JoinStrategy::HopAndAttempt {
                max_hops_per_link: 100,
            },
            repair_on_leave: repair,
        };
        config.replica_budget = config.catalog_items * 5;
        let mut rng = realization_rng(
            seed,
            0xC4A2,
            1 + usize::from(repair) + 2 * cutoff.value().unwrap_or(0),
        );
        let report = run_trace(&config, &trace, &mut rng).expect("trace replay succeeds");
        let churn_events = (report.arrivals_applied + report.leaves_applied).max(1);
        table.push_row(vec![
            cutoff_label(cutoff),
            if repair {
                "yes".to_string()
            } else {
                "no".to_string()
            },
            format_f64(report.success_rate()),
            format_f64(report.worst_connectivity()),
            report
                .samples
                .last()
                .map(|s| s.max_degree)
                .unwrap_or(0)
                .to_string(),
            format_f64(report.control_messages as f64 / churn_events as f64),
        ]);
    }
    ExperimentOutput::Table(table)
}

/// Hub-load redistribution: how a hard cutoff changes the structural load concentration of
/// PA and HAPA overlays.
///
/// Columns: maximum betweenness (the forwarding-load share of the most loaded peer),
/// degeneracy (depth of the densest core), degree assortativity, rich-club coefficient
/// above the mean degree, and the fraction of nodes sitting at the modal degree.
pub fn hub_load(scale: &Scale, seed: u64) -> ExperimentOutput {
    let nodes = scale.search_nodes;
    let mut table = TextTable::new(vec![
        "topology",
        "cutoff",
        "max betweenness",
        "degeneracy",
        "assortativity",
        "rich club (k > mean)",
        "modal degree fraction",
    ]);
    let configs: Vec<(String, Box<dyn TopologyGenerator>)> = vec![
        (
            "PA m=2".to_string(),
            Box::new(PreferentialAttachment::new(nodes, 2).expect("valid PA")),
        ),
        (
            "PA m=2 k_c=10".to_string(),
            Box::new(
                PreferentialAttachment::new(nodes, 2)
                    .expect("valid PA")
                    .with_cutoff(DegreeCutoff::hard(10)),
            ),
        ),
        (
            "HAPA m=2".to_string(),
            Box::new(HopAndAttempt::new(nodes, 2).expect("valid HAPA")),
        ),
        (
            "HAPA m=2 k_c=10".to_string(),
            Box::new(
                HopAndAttempt::new(nodes, 2)
                    .expect("valid HAPA")
                    .with_cutoff(DegreeCutoff::hard(10)),
            ),
        ),
    ];
    for (name, generator) in &configs {
        let mut rng = realization_rng(seed, 0x10AD, name.len());
        let graph = generator
            .generate(&mut rng)
            .unwrap_or_else(|e| panic!("generator {name} failed: {e}"));
        let betweenness = centrality::betweenness_centrality_sampled(
            &graph,
            64.min(graph.node_count()),
            &mut rng,
        );
        let decomposition = kcore::core_decomposition(&graph);
        let assortativity = metrics::degree_assortativity(&graph)
            .map(format_f64)
            .unwrap_or_else(|| "-".to_string());
        let mean_degree = graph.average_degree();
        let rich_club = correlations::rich_club_coefficients(&graph)
            .into_iter()
            .find(|p| p.degree as f64 >= mean_degree)
            .map(|p| format_f64(p.coefficient))
            .unwrap_or_else(|| "-".to_string());
        let cutoff = if name.contains("k_c") {
            "k_c=10"
        } else {
            "no k_c"
        };
        table.push_row(vec![
            name.split(" k_c").next().unwrap_or(name).to_string(),
            cutoff.to_string(),
            format_f64(betweenness.max()),
            decomposition.degeneracy.to_string(),
            assortativity,
            rich_club,
            format_f64(correlations::modal_degree_fraction(&graph)),
        ]);
    }
    ExperimentOutput::Table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            degree_nodes: 500,
            search_nodes: 400,
            realizations: 1,
            searches_per_point: 5,
        }
    }

    #[test]
    fn generator_zoo_lists_every_generator_twice() {
        let output = generator_zoo(&tiny_scale(), 3);
        let table = output.as_table().expect("zoo is a table");
        assert_eq!(table.row_count(), 18, "9 generators x 2 cutoffs");
        assert_eq!(table.column_count(), 6);
    }

    #[test]
    fn search_strategies_produces_all_series() {
        let output = search_strategies(&tiny_scale(), 5);
        let figure = output.as_figure().expect("comparison is a figure");
        assert_eq!(figure.series.len(), 12, "6 algorithms x 2 cutoffs");
        // FL dominates every other algorithm at the deepest TTL without a cutoff.
        let fl = figure
            .series_by_label("FL, no k_c")
            .unwrap()
            .max_y()
            .unwrap();
        for s in &figure.series {
            if s.label.ends_with("no k_c") {
                assert!(s.max_y().unwrap() <= fl + 1e-9, "{} exceeds FL", s.label);
            }
        }
    }

    #[test]
    fn replication_orders_expected_search_size() {
        let output = replication(&tiny_scale(), 7);
        let table = output.as_table().expect("replication is a table");
        assert_eq!(table.row_count(), 3);
        let ess: Vec<f64> = (0..3)
            .map(|r| table.cell(r, 1).unwrap().parse::<f64>().unwrap())
            .collect();
        // Square-root (row 2) beats uniform (row 0).
        assert!(ess[2] <= ess[0] + 1e-9);
    }

    #[test]
    fn churn_trace_compares_four_policies() {
        let output = churn_trace(&tiny_scale(), 13);
        let table = output.as_table().expect("churn trace is a table");
        assert_eq!(table.row_count(), 4);
        assert_eq!(table.column_count(), 6);
        // Cutoff rows report a final max degree bounded by 10.
        let capped_max: usize = table.cell(0, 4).unwrap().parse().unwrap();
        assert!(capped_max <= 10);
        // Every success rate is a probability.
        for row in 0..4 {
            let rate: f64 = table.cell(row, 2).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn substrate_comparison_covers_both_substrates() {
        let output = substrate_comparison(&tiny_scale(), 11);
        let table = output.as_table().expect("substrate comparison is a table");
        assert_eq!(
            table.row_count(),
            12,
            "3 tau_sub x 2 cutoffs x 2 substrates"
        );
        assert_eq!(table.column_count(), 6);
        // Column 0 alternates GRN / mesh.
        assert_eq!(table.cell(0, 0), Some("GRN"));
        assert_eq!(table.cell(1, 0), Some("mesh"));
    }

    #[test]
    fn hub_load_reports_four_rows_and_cutoffs_reduce_peak_betweenness() {
        let output = hub_load(&tiny_scale(), 9);
        let table = output.as_table().expect("hub load is a table");
        assert_eq!(table.row_count(), 4);
        let pa_free: f64 = table.cell(0, 2).unwrap().parse().unwrap();
        let pa_capped: f64 = table.cell(1, 2).unwrap().parse().unwrap();
        assert!(
            pa_capped <= pa_free + 0.05,
            "cutoff should not concentrate more load on the top peer ({pa_capped} vs {pa_free})"
        );
    }
}
