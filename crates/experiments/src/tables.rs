//! Table I (diameter scaling) and Table II (locality of the generators).

use crate::helpers::realization_rng;
use crate::{ExperimentOutput, Scale};
use sfo_analysis::TextTable;
use sfo_core::cm::ConfigurationModel;
use sfo_core::cutoff::{diameter_class, predicted_diameter, DiameterClass};
use sfo_core::dapa::DapaOverGrn;
use sfo_core::hapa::HopAndAttempt;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::{Locality, TopologyGenerator};
use sfo_graph::metrics::path_statistics_sampled;

fn class_label(class: DiameterClass) -> &'static str {
    match class {
        DiameterClass::UltraSmall => "ln ln N",
        DiameterClass::LogOverLogLog => "ln N / ln ln N",
        DiameterClass::Logarithmic => "ln N",
    }
}

/// Table I: measured average shortest paths versus the predicted diameter scaling class
/// for representative `(γ, m)` combinations.
///
/// The measurement generates CM topologies (whose exponent can be dialed exactly) at two
/// sizes and reports both the measured growth factor and the growth factor the scaling law
/// of Table I predicts, so the qualitative ordering of the classes can be checked.
pub fn table1(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut table = TextTable::new(vec![
        "gamma",
        "m",
        "diameter class",
        "avg path (N_small)",
        "avg path (N_large)",
        "measured growth",
        "predicted growth",
    ]);
    let n_large = scale.search_nodes.max(1_000);
    let n_small = (n_large / 4).max(250);
    let cases: [(f64, usize); 4] = [(2.2, 2), (2.6, 2), (3.0, 1), (3.0, 2)];
    for (case_index, (gamma, m)) in cases.into_iter().enumerate() {
        let class = diameter_class(gamma, m).expect("table cases are within Table I's domain");
        let mut paths = Vec::new();
        for (size_index, n) in [n_small, n_large].into_iter().enumerate() {
            let mut total = 0.0;
            for r in 0..scale.realizations {
                let mut rng = realization_rng(seed, (case_index * 2 + size_index) as u64 + 1, r);
                let graph = ConfigurationModel::new(n, gamma, m)
                    .expect("table sizes are valid for CM")
                    .generate(&mut rng)
                    .expect("CM generation cannot fail for these parameters");
                let stats = path_statistics_sampled(&graph, 64, &mut rng);
                total += stats.average_shortest_path;
            }
            paths.push(total / scale.realizations as f64);
        }
        let measured_growth = if paths[0] > 0.0 {
            paths[1] / paths[0]
        } else {
            0.0
        };
        let predicted_growth =
            predicted_diameter(class, n_large) / predicted_diameter(class, n_small);
        table.push_row(vec![
            format!("{gamma}"),
            format!("{m}"),
            class_label(class).to_string(),
            format!("{:.3}", paths[0]),
            format!("{:.3}", paths[1]),
            format!("{measured_growth:.3}"),
            format!("{predicted_growth:.3}"),
        ]);
    }
    ExperimentOutput::Table(table)
}

/// Table II: how much global information each construction mechanism needs, verified
/// directly from the generators' [`Locality`] declarations.
pub fn table2(scale: &Scale, _seed: u64) -> ExperimentOutput {
    let generators: Vec<Box<dyn TopologyGenerator>> = vec![
        Box::new(
            PreferentialAttachment::new(scale.search_nodes.max(10), 1).expect("valid PA config"),
        ),
        Box::new(
            ConfigurationModel::new(scale.search_nodes.max(10), 2.6, 1).expect("valid CM config"),
        ),
        Box::new(HopAndAttempt::new(scale.search_nodes.max(10), 1).expect("valid HAPA config")),
        Box::new(DapaOverGrn::new(scale.search_nodes.max(10), 1, 4).expect("valid DAPA config")),
    ];
    let mut table = TextTable::new(vec!["Procedure", "Usage of Global Information"]);
    for generator in &generators {
        let usage = match generator.locality() {
            Locality::Global => "Yes",
            Locality::Partial => "Partial",
            Locality::Local => "No",
        };
        table.push_row(vec![generator.name().to_string(), usage.to_string()]);
    }
    ExperimentOutput::Table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        // Three realizations: with a single one, the sampled path statistics of the
        // fragmented m = 1 configuration-model rows are noisy enough to flip the
        // growth-factor comparison for unlucky seeds.
        Scale {
            degree_nodes: 400,
            search_nodes: 1_000,
            realizations: 3,
            searches_per_point: 5,
        }
    }

    #[test]
    fn table2_matches_the_paper() {
        let output = table2(&tiny(), 0);
        let table = output.as_table().unwrap();
        assert_eq!(table.row_count(), 4);
        assert_eq!(table.cell(0, 0), Some("PA"));
        assert_eq!(table.cell(0, 1), Some("Yes"));
        assert_eq!(table.cell(1, 0), Some("CM"));
        assert_eq!(table.cell(1, 1), Some("Yes"));
        assert_eq!(table.cell(2, 0), Some("HAPA"));
        assert_eq!(table.cell(2, 1), Some("Partial"));
        assert_eq!(table.cell(3, 0), Some("DAPA"));
        assert_eq!(table.cell(3, 1), Some("No"));
    }

    #[test]
    fn table1_reports_growing_paths_with_network_size() {
        let output = table1(&tiny(), 3);
        let table = output.as_table().unwrap();
        assert_eq!(table.row_count(), 4);
        for row in 0..table.row_count() {
            let small: f64 = table.cell(row, 3).unwrap().parse().unwrap();
            let large: f64 = table.cell(row, 4).unwrap().parse().unwrap();
            assert!(
                small > 1.0,
                "row {row}: implausibly small average path {small}"
            );
            // The growth check only holds reliably for the m = 2 rows: with m = 1 the CM
            // graph fragments and the sampled giant-component paths fluctuate by tens of
            // percent between realizations at this test scale, so that row is exempt.
            let m: usize = table.cell(row, 1).unwrap().parse().unwrap();
            if m >= 2 {
                assert!(
                    large >= small * 0.9,
                    "row {row}: larger networks should not shrink paths much"
                );
            }
            let predicted: f64 = table.cell(row, 6).unwrap().parse().unwrap();
            assert!(predicted >= 1.0);
        }
    }

    #[test]
    fn class_labels_cover_every_class() {
        assert_eq!(class_label(DiameterClass::UltraSmall), "ln ln N");
        assert_eq!(class_label(DiameterClass::LogOverLogLog), "ln N / ln ln N");
        assert_eq!(class_label(DiameterClass::Logarithmic), "ln N");
    }
}
