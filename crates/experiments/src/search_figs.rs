//! Flooding search-efficiency figures: Figs. 6, 7, and 8.
//!
//! Every curve reports the mean number of hits (distinct peers reached) per flooding search
//! of time-to-live `τ`, averaged over random sources and network realizations, on
//! `scale.search_nodes`-node topologies (the paper uses `N = 10^4`).
//!
//! Each figure is expressed as declarative [`ScenarioSpec`]s — one per topology family,
//! sweeping the paper's `m × k_c` grid — handed to the shared scenario runner; curve
//! labels and RNG streams are the spec layer's, so a curve here is bit-identical to the
//! same curve run from a JSON spec file.

use crate::helpers::{flooding_ttls, scenario_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::FigureData;
use sfo_scenario::{ScenarioSpec, SearchSpec, SweepMetric, SweepSpec, TopologySpec};

/// The hard-cutoff axis the paper sweeps in Figs. 6 and 8 (`k_c = 10, 50, none`).
fn fig6_cutoffs() -> Vec<Option<usize>> {
    vec![Some(10), Some(50), None]
}

/// Builds the flooding sweep spec of one topology family for a figure.
fn flooding_spec(
    name: impl Into<String>,
    topology: TopologySpec,
    cutoffs: Vec<Option<usize>>,
    scale: &Scale,
    seed: u64,
) -> ScenarioSpec {
    ScenarioSpec::sweep(
        name,
        topology,
        SearchSpec::Flooding,
        SweepSpec::grid(
            vec![1, 2, 3],
            cutoffs,
            flooding_ttls(),
            scale.searches_per_point,
        ),
        seed,
        scale.realizations,
    )
}

fn figure_from_specs(id: &str, title: &str, specs: Vec<ScenarioSpec>) -> ExperimentOutput {
    let mut figure = FigureData::new(id, title, "tau", "hits");
    for spec in &specs {
        for series in scenario_series(spec, SweepMetric::Hits) {
            figure.push_series(series);
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 6(a,b): FL hits versus `τ` on PA and HAPA topologies.
pub fn fig6(scale: &Scale, seed: u64) -> ExperimentOutput {
    let pa = TopologySpec::Pa {
        nodes: scale.search_nodes,
        m: 1,
        cutoff: None,
    };
    let hapa = TopologySpec::Hapa {
        nodes: scale.search_nodes,
        m: 1,
        cutoff: None,
    };
    figure_from_specs(
        "fig6",
        "Flooding search efficiency on PA and HAPA topologies",
        vec![
            flooding_spec("fig6-pa", pa, fig6_cutoffs(), scale, seed),
            flooding_spec("fig6-hapa", hapa, fig6_cutoffs(), scale, seed),
        ],
    )
}

/// Fig. 7: FL hits versus `τ` on CM topologies with target exponents 2.2, 2.6, and 3.0.
pub fn fig7(scale: &Scale, seed: u64) -> ExperimentOutput {
    let specs = [2.2f64, 2.6, 3.0]
        .into_iter()
        .map(|gamma| {
            flooding_spec(
                format!("fig7-cm-gamma{gamma}"),
                TopologySpec::Cm {
                    nodes: scale.search_nodes,
                    gamma,
                    m: 1,
                    cutoff: None,
                },
                vec![Some(10), Some(40), None],
                scale,
                seed,
            )
        })
        .collect();
    figure_from_specs(
        "fig7",
        "Flooding search efficiency on configuration-model topologies",
        specs,
    )
}

/// Fig. 8: FL hits versus `τ` on DAPA topologies for different local TTLs `τ_sub`.
pub fn fig8(scale: &Scale, seed: u64) -> ExperimentOutput {
    let specs = [2u32, 4, 10, 20]
        .into_iter()
        .map(|tau_sub| {
            flooding_spec(
                format!("fig8-dapa-tau{tau_sub}"),
                TopologySpec::DapaGrn {
                    nodes: scale.search_nodes,
                    m: 1,
                    tau_sub,
                    cutoff: None,
                },
                fig6_cutoffs(),
                scale,
                seed,
            )
        })
        .collect();
    figure_from_specs(
        "fig8",
        "Flooding search efficiency on DAPA topologies",
        specs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            degree_nodes: 400,
            search_nodes: 350,
            realizations: 1,
            searches_per_point: 8,
        }
    }

    #[test]
    fn fig6_hits_grow_with_ttl_and_saturate_near_system_size() {
        let scale = tiny();
        let output = fig6(&scale, 1);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 18);
        for series in &figure.series {
            let first = series.points.first().unwrap().y;
            let last = series.points.last().unwrap().y;
            assert!(
                last >= first,
                "{}: hits must not shrink with ttl",
                series.label
            );
            assert!(
                last <= (scale.search_nodes - 1) as f64 + 1e-9,
                "{}: hits cannot exceed the system size",
                series.label
            );
        }
        // Without a cutoff and with m=3, a deep flood covers essentially the whole network.
        let unbounded = figure.series_by_label("PA, m=3, no k_c").unwrap();
        assert!(unbounded.points.last().unwrap().y > 0.9 * scale.search_nodes as f64);
    }

    #[test]
    fn fig7_m1_floods_stall_below_system_size() {
        // Paper: CM with m=1 is disconnected, so even very deep floods cannot reach the
        // whole network, unlike m=3.
        let scale = tiny();
        let output = fig7(&scale, 2);
        let figure = output.as_figure().unwrap();
        let m1 = figure.series_by_label("CM gamma=2.6, m=1, no k_c").unwrap();
        let m3 = figure.series_by_label("CM gamma=2.6, m=3, no k_c").unwrap();
        let m1_final = m1.points.last().unwrap().y;
        let m3_final = m3.points.last().unwrap().y;
        assert!(
            m1_final < 0.9 * scale.search_nodes as f64,
            "m=1 flood should stall below system size, got {m1_final}"
        );
        assert!(
            m3_final > m1_final,
            "m=3 coverage {m3_final} should exceed m=1 coverage {m1_final}"
        );
    }
}
