//! Flooding search-efficiency figures: Figs. 6, 7, and 8.
//!
//! Every curve reports the mean number of hits (distinct peers reached) per flooding search
//! of time-to-live `τ`, averaged over random sources and network realizations, on
//! `scale.search_nodes`-node topologies (the paper uses `N = 10^4`).

use crate::helpers::{flooding_ttls, search_series};
use crate::{ExperimentOutput, Scale};
use sfo_analysis::FigureData;
use sfo_core::cm::ConfigurationModel;
use sfo_core::dapa::DapaOverGrn;
use sfo_core::hapa::HopAndAttempt;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::DegreeCutoff;
use sfo_search::flooding::Flooding;

fn cutoff_label(cutoff: DegreeCutoff) -> String {
    match cutoff.value() {
        None => "no k_c".to_string(),
        Some(k_c) => format!("k_c={k_c}"),
    }
}

/// The `(m, k_c)` grid the paper sweeps in Figs. 6 and 7.
fn m_kc_grid() -> Vec<(usize, DegreeCutoff)> {
    let mut grid = Vec::new();
    for m in [1usize, 2, 3] {
        for cutoff in [
            DegreeCutoff::hard(10),
            DegreeCutoff::hard(50),
            DegreeCutoff::Unbounded,
        ] {
            grid.push((m, cutoff));
        }
    }
    grid
}

/// Fig. 6(a,b): FL hits versus `τ` on PA and HAPA topologies.
pub fn fig6(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig6",
        "Flooding search efficiency on PA and HAPA topologies",
        "tau",
        "hits",
    );
    let ttls = flooding_ttls();
    for (m, cutoff) in m_kc_grid() {
        let pa = PreferentialAttachment::new(scale.search_nodes, m)
            .expect("scale sizes exceed the PA seed")
            .with_cutoff(cutoff);
        let label = format!("PA, m={m}, {}", cutoff_label(cutoff));
        figure.push_series(search_series(
            &pa,
            &Flooding::new(),
            &label,
            &ttls,
            scale,
            seed,
        ));

        let hapa = HopAndAttempt::new(scale.search_nodes, m)
            .expect("scale sizes exceed the HAPA seed")
            .with_cutoff(cutoff);
        let label = format!("HAPA, m={m}, {}", cutoff_label(cutoff));
        figure.push_series(search_series(
            &hapa,
            &Flooding::new(),
            &label,
            &ttls,
            scale,
            seed,
        ));
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 7: FL hits versus `τ` on CM topologies with target exponents 2.2, 2.6, and 3.0.
pub fn fig7(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig7",
        "Flooding search efficiency on configuration-model topologies",
        "tau",
        "hits",
    );
    let ttls = flooding_ttls();
    for gamma in [2.2f64, 2.6, 3.0] {
        for m in [1usize, 2, 3] {
            for cutoff in [
                DegreeCutoff::hard(10),
                DegreeCutoff::hard(40),
                DegreeCutoff::Unbounded,
            ] {
                let cm = ConfigurationModel::new(scale.search_nodes, gamma, m)
                    .expect("scale sizes are valid for CM")
                    .with_cutoff(cutoff);
                let label = format!("CM gamma={gamma}, m={m}, {}", cutoff_label(cutoff));
                figure.push_series(search_series(
                    &cm,
                    &Flooding::new(),
                    &label,
                    &ttls,
                    scale,
                    seed,
                ));
            }
        }
    }
    ExperimentOutput::Figure(figure)
}

/// Fig. 8: FL hits versus `τ` on DAPA topologies for different local TTLs `τ_sub`.
pub fn fig8(scale: &Scale, seed: u64) -> ExperimentOutput {
    let mut figure = FigureData::new(
        "fig8",
        "Flooding search efficiency on DAPA topologies",
        "tau",
        "hits",
    );
    let ttls = flooding_ttls();
    let tau_subs = [2u32, 4, 10, 20];
    for m in [1usize, 2, 3] {
        for cutoff in [
            DegreeCutoff::hard(10),
            DegreeCutoff::hard(50),
            DegreeCutoff::Unbounded,
        ] {
            for tau_sub in tau_subs {
                let dapa = DapaOverGrn::new(scale.search_nodes, m, tau_sub)
                    .expect("scale sizes are valid for DAPA")
                    .with_cutoff(cutoff);
                let label = format!("DAPA m={m}, {}, tau_sub={tau_sub}", cutoff_label(cutoff));
                figure.push_series(search_series(
                    &dapa,
                    &Flooding::new(),
                    &label,
                    &ttls,
                    scale,
                    seed,
                ));
            }
        }
    }
    ExperimentOutput::Figure(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            degree_nodes: 400,
            search_nodes: 350,
            realizations: 1,
            searches_per_point: 8,
        }
    }

    #[test]
    fn fig6_hits_grow_with_ttl_and_saturate_near_system_size() {
        let scale = tiny();
        let output = fig6(&scale, 1);
        let figure = output.as_figure().unwrap();
        assert_eq!(figure.series.len(), 18);
        for series in &figure.series {
            let first = series.points.first().unwrap().y;
            let last = series.points.last().unwrap().y;
            assert!(
                last >= first,
                "{}: hits must not shrink with ttl",
                series.label
            );
            assert!(
                last <= (scale.search_nodes - 1) as f64 + 1e-9,
                "{}: hits cannot exceed the system size",
                series.label
            );
        }
        // Without a cutoff and with m=3, a deep flood covers essentially the whole network.
        let unbounded = figure.series_by_label("PA, m=3, no k_c").unwrap();
        assert!(unbounded.points.last().unwrap().y > 0.9 * scale.search_nodes as f64);
    }

    #[test]
    fn fig7_m1_floods_stall_below_system_size() {
        // Paper: CM with m=1 is disconnected, so even very deep floods cannot reach the
        // whole network, unlike m=3.
        let scale = tiny();
        let output = fig7(&scale, 2);
        let figure = output.as_figure().unwrap();
        let m1 = figure.series_by_label("CM gamma=2.6, m=1, no k_c").unwrap();
        let m3 = figure.series_by_label("CM gamma=2.6, m=3, no k_c").unwrap();
        let m1_final = m1.points.last().unwrap().y;
        let m3_final = m3.points.last().unwrap().y;
        assert!(
            m1_final < 0.9 * scale.search_nodes as f64,
            "m=1 flood should stall below system size, got {m1_final}"
        );
        assert!(
            m3_final > m1_final,
            "m=3 coverage {m3_final} should exceed m=1 coverage {m1_final}"
        );
    }
}
