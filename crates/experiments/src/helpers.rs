//! Shared building blocks for the figure reproductions: realization loops, degree-sample
//! collection, and TTL sweeps averaged across realizations.
//!
//! Search sweeps follow the build-once/query-many split: every generated realization is
//! frozen into a [`CsrGraph`] snapshot once, and all TTL sweeps for that realization run
//! against the flat snapshot.

use crate::Scale;
use rand::rngs::StdRng;
use sfo_analysis::histogram::log_binned_distribution;
use sfo_analysis::powerlaw_fit::fit_exponent_from_counts;
use sfo_analysis::{DataPoint, DataSeries, Summary};
use sfo_core::TopologyGenerator;
use sfo_graph::{metrics, CsrGraph};
use sfo_search::experiment::{rw_normalized_to_nf, stream_rng, ttl_sweep};
use sfo_search::SearchAlgorithm;

/// Number of logarithmic bins per decade used for all degree-distribution figures.
pub const BINS_PER_DECADE: usize = 8;

/// Derives the RNG for realization `index` of a generator labelled by `salt`.
///
/// Delegates to [`stream_rng`], the workspace's single stream-derivation rule, so
/// realization streams here and worker-thread streams in `sfo-search` are seeded
/// identically.
pub fn realization_rng(seed: u64, salt: u64, index: usize) -> StdRng {
    stream_rng(seed, salt, index)
}

fn label_salt(label: &str) -> u64 {
    label.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Generates `scale.realizations` independent topologies and concatenates the degrees of
/// all their nodes into one sample, the input of the paper's `P(k)` plots.
pub fn degree_samples(
    generator: &dyn TopologyGenerator,
    label: &str,
    scale: &Scale,
    seed: u64,
) -> Vec<usize> {
    let salt = label_salt(label);
    let mut samples = Vec::new();
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let graph = generator.generate(&mut rng).unwrap_or_else(|e| {
            panic!(
                "generator {} failed for series '{label}': {e}",
                generator.name()
            )
        });
        samples.extend(graph.degrees());
    }
    samples
}

/// Builds a `P(k)` series (log-binned density versus degree) for one generator
/// configuration.
pub fn degree_distribution_series(
    generator: &dyn TopologyGenerator,
    label: &str,
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    let samples = degree_samples(generator, label, scale, seed);
    let mut series = DataSeries::new(label);
    for bin in log_binned_distribution(&samples, BINS_PER_DECADE) {
        series.push(DataPoint {
            x: bin.center,
            y: bin.density,
            y_error: 0.0,
            realizations: scale.realizations,
        });
    }
    series
}

/// Estimates the degree-distribution exponent of one generator configuration, averaged over
/// realizations. The fit window is `[m, fit_max]`; the paper stops the window just below
/// the hard cutoff so the accumulation spike does not drag the slope.
pub fn fitted_exponent(
    generator: &dyn TopologyGenerator,
    label: &str,
    m: usize,
    fit_max: usize,
    scale: &Scale,
    seed: u64,
) -> Summary {
    let salt = label_salt(label);
    let mut summary = Summary::new();
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let graph = generator.generate(&mut rng).unwrap_or_else(|e| {
            panic!(
                "generator {} failed for series '{label}': {e}",
                generator.name()
            )
        });
        let hist = metrics::degree_histogram(&graph);
        if let Some(fit) = fit_exponent_from_counts(&hist.counts, m, fit_max) {
            summary.add(fit.gamma);
        }
    }
    summary
}

/// Runs a TTL sweep of `algorithm` on `scale.realizations` topologies from `generator` and
/// averages the hit counts per TTL, returning one labelled series.
pub fn search_series(
    generator: &dyn TopologyGenerator,
    algorithm: &dyn SearchAlgorithm<CsrGraph>,
    label: &str,
    ttls: &[u32],
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    sweep_series(
        label,
        ttls,
        scale,
        seed,
        |graph, rng| {
            ttl_sweep(graph, algorithm, ttls, scale.searches_per_point, rng)
                .into_iter()
                .map(|o| o.mean_hits)
                .collect()
        },
        generator,
    )
}

/// Like [`search_series`] but reporting the mean number of messages instead of hits.
pub fn message_series(
    generator: &dyn TopologyGenerator,
    algorithm: &dyn SearchAlgorithm<CsrGraph>,
    label: &str,
    ttls: &[u32],
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    sweep_series(
        label,
        ttls,
        scale,
        seed,
        |graph, rng| {
            ttl_sweep(graph, algorithm, ttls, scale.searches_per_point, rng)
                .into_iter()
                .map(|o| o.mean_messages)
                .collect()
        },
        generator,
    )
}

/// Runs the message-normalized random-walk sweep (Figs. 11-12) on topologies from
/// `generator`: for each TTL, the RW hop budget equals the message count of an NF search
/// with fan-out `k_min`.
pub fn rw_series(
    generator: &dyn TopologyGenerator,
    k_min: usize,
    label: &str,
    ttls: &[u32],
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    sweep_series(
        label,
        ttls,
        scale,
        seed,
        |graph, rng| {
            rw_normalized_to_nf(graph, k_min, ttls, scale.searches_per_point, rng)
                .into_iter()
                .map(|o| o.mean_hits)
                .collect()
        },
        generator,
    )
}

/// Like [`rw_series`] but reporting the mean number of messages the walks actually spent.
pub fn rw_message_series(
    generator: &dyn TopologyGenerator,
    k_min: usize,
    label: &str,
    ttls: &[u32],
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    sweep_series(
        label,
        ttls,
        scale,
        seed,
        |graph, rng| {
            rw_normalized_to_nf(graph, k_min, ttls, scale.searches_per_point, rng)
                .into_iter()
                .map(|o| o.mean_messages)
                .collect()
        },
        generator,
    )
}

fn sweep_series(
    label: &str,
    ttls: &[u32],
    scale: &Scale,
    seed: u64,
    per_realization: impl Fn(&CsrGraph, &mut StdRng) -> Vec<f64>,
    generator: &dyn TopologyGenerator,
) -> DataSeries {
    let salt = label_salt(label);
    let mut per_ttl: Vec<Summary> = vec![Summary::new(); ttls.len()];
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let frozen = generator
            .generate(&mut rng)
            .unwrap_or_else(|e| {
                panic!(
                    "generator {} failed for series '{label}': {e}",
                    generator.name()
                )
            })
            .freeze();
        let values = per_realization(&frozen, &mut rng);
        debug_assert_eq!(values.len(), ttls.len());
        for (summary, value) in per_ttl.iter_mut().zip(values) {
            summary.add(value);
        }
    }
    let mut series = DataSeries::new(label);
    for (&ttl, summary) in ttls.iter().zip(&per_ttl) {
        series.push(DataPoint::from_summary(f64::from(ttl), summary));
    }
    series
}

/// Standard TTL grid for flooding figures (the paper sweeps τ until the flood saturates).
pub fn flooding_ttls() -> Vec<u32> {
    vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20]
}

/// Standard TTL grid for NF and RW figures (the paper uses τ up to 10).
pub fn nf_rw_ttls() -> Vec<u32> {
    vec![2, 3, 4, 5, 6, 7, 8, 9, 10]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::pa::PreferentialAttachment;
    use sfo_core::DegreeCutoff;
    use sfo_search::flooding::Flooding;

    fn tiny_scale() -> Scale {
        Scale {
            degree_nodes: 400,
            search_nodes: 300,
            realizations: 2,
            searches_per_point: 5,
        }
    }

    #[test]
    fn realization_rngs_differ_across_indices_and_labels() {
        use rand::RngCore;
        let a = realization_rng(1, label_salt("a"), 0).next_u64();
        let b = realization_rng(1, label_salt("a"), 1).next_u64();
        let c = realization_rng(1, label_salt("b"), 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic for identical inputs.
        assert_eq!(a, realization_rng(1, label_salt("a"), 0).next_u64());
    }

    #[test]
    fn degree_samples_concatenate_realizations() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.degree_nodes, 1).unwrap();
        let samples = degree_samples(&generator, "m=1", &scale, 3);
        assert_eq!(samples.len(), scale.degree_nodes * scale.realizations);
    }

    #[test]
    fn degree_distribution_series_is_decreasing_for_pa() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.degree_nodes, 1).unwrap();
        let series = degree_distribution_series(&generator, "m=1", &scale, 5);
        assert!(series.points.len() >= 3);
        assert!(series.points.first().unwrap().y > series.points.last().unwrap().y);
    }

    #[test]
    fn fitted_exponent_is_plausible_for_pa() {
        let scale = Scale {
            degree_nodes: 2_000,
            ..tiny_scale()
        };
        let generator = PreferentialAttachment::new(scale.degree_nodes, 2).unwrap();
        let summary = fitted_exponent(&generator, "m=2", 2, 60, &scale, 7);
        assert_eq!(summary.count(), scale.realizations);
        let gamma = summary.mean();
        assert!(
            (1.5..=3.8).contains(&gamma),
            "fitted exponent {gamma} far outside the scale-free range"
        );
    }

    #[test]
    fn search_series_hits_grow_with_ttl() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.search_nodes, 2)
            .unwrap()
            .with_cutoff(DegreeCutoff::hard(20));
        let ttls = [1, 2, 4, 8];
        let series = search_series(&generator, &Flooding::new(), "fl", &ttls, &scale, 9);
        assert_eq!(series.points.len(), ttls.len());
        assert!(series.y_at(8.0).unwrap() > series.y_at(1.0).unwrap());
        for p in &series.points {
            assert_eq!(p.realizations, scale.realizations);
        }
    }

    #[test]
    fn rw_series_hits_are_bounded_by_message_budget() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.search_nodes, 2).unwrap();
        let ttls = [2, 4];
        let hits = rw_series(&generator, 2, "rw", &ttls, &scale, 11);
        let msgs = rw_message_series(&generator, 2, "rw", &ttls, &scale, 11);
        for (h, m) in hits.points.iter().zip(&msgs.points) {
            assert!(
                h.y <= m.y + 1e-9,
                "hits {} cannot exceed messages {}",
                h.y,
                m.y
            );
        }
    }

    #[test]
    fn ttl_grids_are_increasing() {
        for grid in [flooding_ttls(), nf_rw_ttls()] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
