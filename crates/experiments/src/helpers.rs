//! Shared building blocks for the figure reproductions.
//!
//! Both measurement families run through the declarative scenario layer: search
//! figures build sweep [`ScenarioSpec`]s and hand them to [`scenario_series`]; the
//! `P(k)` figures build degree-distribution specs and hand them to
//! [`degree_distribution_series`], using the spec's `curve_label` override so the
//! historical legend strings keep salting the *identical* RNG streams the bespoke
//! loops always used. What remains in-crate is the exponent-fit machinery (which needs
//! raw per-realization histograms, not binned reports) and the TTL grids.

use crate::Scale;
use rand::rngs::StdRng;
use sfo_analysis::powerlaw_fit::fit_exponent_from_counts;
use sfo_analysis::{DataSeries, Summary};
use sfo_core::TopologyGenerator;
use sfo_graph::metrics;
use sfo_scenario::{ScenarioRunner, ScenarioSpec, SweepMetric, TopologySpec};
use sfo_search::experiment::{label_salt, stream_rng};

/// Number of logarithmic bins per decade used for all degree-distribution figures.
pub const BINS_PER_DECADE: usize = 8;

/// Derives the RNG for realization `index` of a generator labelled by `salt`.
///
/// Delegates to [`stream_rng`], the workspace's single stream-derivation rule, so
/// realization streams here, worker-thread streams in `sfo-search`, and scenario-runner
/// streams in `sfo-scenario` are seeded identically.
pub fn realization_rng(seed: u64, salt: u64, index: usize) -> StdRng {
    stream_rng(seed, salt, index)
}

/// Runs a static scenario spec through the shared [`ScenarioRunner`] and converts its
/// sweep report into one labelled series per expanded curve.
///
/// # Panics
///
/// Panics when the spec is invalid or a generator fails — figure code treats both as
/// programming errors, exactly like the old bespoke loops did.
pub fn scenario_series(spec: &ScenarioSpec, metric: SweepMetric) -> Vec<DataSeries> {
    ScenarioRunner::new()
        .run(spec)
        .unwrap_or_else(|e| panic!("scenario '{}' failed: {e}", spec.name))
        .series(metric)
}

/// Builds a `P(k)` series (log-binned density versus degree) for one topology
/// configuration, as a degree-distribution scenario.
///
/// The figure legends predate [`TopologySpec::label`] (a PA panel says `"m=1"`, not
/// `"PA, m=1, no k_c"`), and those legend strings salt the realization streams — so
/// the spec carries `label` as its `curve_label` override, which makes the runner use
/// it for both the legend and the salt. The resulting series is bit-identical to the
/// bespoke generate-and-bin loop this helper replaced.
///
/// # Panics
///
/// Panics when the spec is invalid or a generator fails — figure code treats both as
/// programming errors, exactly like the old bespoke loops did.
pub fn degree_distribution_series(
    topology: TopologySpec,
    label: &str,
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    let mut spec = ScenarioSpec::degree_distribution(
        format!("degree-series-{label}"),
        topology,
        None,
        BINS_PER_DECADE,
        seed,
        scale.realizations,
    );
    spec.curve_label = Some(label.to_string());
    let report = ScenarioRunner::new()
        .run(&spec)
        .unwrap_or_else(|e| panic!("scenario '{}' failed: {e}", spec.name));
    report
        .degree_series()
        .pop()
        .expect("a single-curve degree scenario yields one series")
}

/// Estimates the degree-distribution exponent of one generator configuration, averaged over
/// realizations. The fit window is `[m, fit_max]`; the paper stops the window just below
/// the hard cutoff so the accumulation spike does not drag the slope.
pub fn fitted_exponent(
    generator: &dyn TopologyGenerator,
    label: &str,
    m: usize,
    fit_max: usize,
    scale: &Scale,
    seed: u64,
) -> Summary {
    let salt = label_salt(label);
    let mut summary = Summary::new();
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let graph = generator.generate(&mut rng).unwrap_or_else(|e| {
            panic!(
                "generator {} failed for series '{label}': {e}",
                generator.name()
            )
        });
        let hist = metrics::degree_histogram(&graph);
        if let Some(fit) = fit_exponent_from_counts(&hist.counts, m, fit_max) {
            summary.add(fit.gamma);
        }
    }
    summary
}

/// Standard TTL grid for flooding figures (the paper sweeps τ until the flood saturates).
pub fn flooding_ttls() -> Vec<u32> {
    vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20]
}

/// Standard TTL grid for NF and RW figures (the paper uses τ up to 10).
pub fn nf_rw_ttls() -> Vec<u32> {
    vec![2, 3, 4, 5, 6, 7, 8, 9, 10]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::pa::PreferentialAttachment;
    use sfo_scenario::{SearchSpec, SweepSpec, TopologySpec};

    fn tiny_scale() -> Scale {
        Scale {
            degree_nodes: 400,
            search_nodes: 300,
            realizations: 2,
            searches_per_point: 5,
        }
    }

    #[test]
    fn realization_rngs_differ_across_indices_and_labels() {
        use rand::RngCore;
        let a = realization_rng(1, label_salt("a"), 0).next_u64();
        let b = realization_rng(1, label_salt("a"), 1).next_u64();
        let c = realization_rng(1, label_salt("b"), 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic for identical inputs.
        assert_eq!(a, realization_rng(1, label_salt("a"), 0).next_u64());
    }

    #[test]
    fn degree_distribution_series_is_decreasing_for_pa() {
        let scale = tiny_scale();
        let topology = TopologySpec::Pa {
            nodes: scale.degree_nodes,
            m: 1,
            cutoff: None,
        };
        let series = degree_distribution_series(topology, "m=1", &scale, 5);
        assert_eq!(series.label, "m=1");
        assert!(series.points.len() >= 3);
        assert!(series.points.first().unwrap().y > series.points.last().unwrap().y);
        assert!(series.points.iter().all(|p| p.realizations == 2));
    }

    #[test]
    fn degree_series_preserve_the_legacy_label_salted_streams() {
        // The migration contract: the spec-based series must reproduce, bit for bit,
        // what the old bespoke loop produced — generate each realization on
        // stream_rng(seed, label_salt(legend label), r), concatenate degrees, log-bin.
        use sfo_analysis::histogram::log_binned_distribution;
        let scale = tiny_scale();
        let topology = TopologySpec::Pa {
            nodes: scale.degree_nodes,
            m: 2,
            cutoff: Some(10),
        };
        let series = degree_distribution_series(topology.clone(), "m=2, k_c=10", &scale, 7);

        let generator = topology.build().unwrap();
        let mut samples = Vec::new();
        for r in 0..scale.realizations {
            let mut rng = realization_rng(7, label_salt("m=2, k_c=10"), r);
            samples.extend(sfo_graph::GraphView::degrees(
                &generator.generate(&mut rng).unwrap(),
            ));
        }
        let expected = log_binned_distribution(&samples, BINS_PER_DECADE);
        assert_eq!(series.points.len(), expected.len());
        for (point, bin) in series.points.iter().zip(&expected) {
            assert_eq!(point.x, bin.center);
            assert_eq!(point.y, bin.density);
            assert_eq!(point.y_error, 0.0);
        }
    }

    #[test]
    fn fitted_exponent_is_plausible_for_pa() {
        let scale = Scale {
            degree_nodes: 2_000,
            ..tiny_scale()
        };
        let generator = PreferentialAttachment::new(scale.degree_nodes, 2).unwrap();
        let summary = fitted_exponent(&generator, "m=2", 2, 60, &scale, 7);
        assert_eq!(summary.count(), scale.realizations);
        let gamma = summary.mean();
        assert!(
            (1.5..=3.8).contains(&gamma),
            "fitted exponent {gamma} far outside the scale-free range"
        );
    }

    #[test]
    fn scenario_series_hits_grow_with_ttl() {
        let scale = tiny_scale();
        let spec = ScenarioSpec::sweep(
            "helpers-test",
            TopologySpec::Pa {
                nodes: scale.search_nodes,
                m: 2,
                cutoff: Some(20),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2, 4, 8], scale.searches_per_point),
            9,
            scale.realizations,
        );
        let series = scenario_series(&spec, SweepMetric::Hits);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].label, "PA, m=2, k_c=20");
        assert_eq!(series[0].points.len(), 4);
        assert!(series[0].y_at(8.0).unwrap() > series[0].y_at(1.0).unwrap());
        for p in &series[0].points {
            assert_eq!(p.realizations, scale.realizations);
        }
    }

    #[test]
    #[should_panic(expected = "scenario 'broken' failed")]
    fn scenario_series_panics_on_invalid_specs() {
        let spec = ScenarioSpec::sweep(
            "broken",
            TopologySpec::Pa {
                nodes: 0,
                m: 2,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1], 1),
            1,
            1,
        );
        let _ = scenario_series(&spec, SweepMetric::Hits);
    }

    #[test]
    fn ttl_grids_are_increasing() {
        for grid in [flooding_ttls(), nf_rw_ttls()] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
