//! Shared building blocks for the figure reproductions.
//!
//! Search sweeps run through the declarative scenario layer: a figure builds
//! [`ScenarioSpec`]s and [`scenario_series`] hands them to the shared
//! [`ScenarioRunner`], which freezes every realization once and fans the work across
//! threads (build-once/query-many). What remains here is the degree-distribution
//! machinery (sample collection, log-binning, exponent fits) that the `P(k)` figures
//! use, plus the TTL grids.

use crate::Scale;
use rand::rngs::StdRng;
use sfo_analysis::histogram::log_binned_distribution;
use sfo_analysis::powerlaw_fit::fit_exponent_from_counts;
use sfo_analysis::{DataPoint, DataSeries, Summary};
use sfo_core::TopologyGenerator;
use sfo_graph::metrics;
use sfo_scenario::{ScenarioRunner, ScenarioSpec, SweepMetric};
use sfo_search::experiment::{label_salt, stream_rng};

/// Number of logarithmic bins per decade used for all degree-distribution figures.
pub const BINS_PER_DECADE: usize = 8;

/// Derives the RNG for realization `index` of a generator labelled by `salt`.
///
/// Delegates to [`stream_rng`], the workspace's single stream-derivation rule, so
/// realization streams here, worker-thread streams in `sfo-search`, and scenario-runner
/// streams in `sfo-scenario` are seeded identically.
pub fn realization_rng(seed: u64, salt: u64, index: usize) -> StdRng {
    stream_rng(seed, salt, index)
}

/// Runs a static scenario spec through the shared [`ScenarioRunner`] and converts its
/// sweep report into one labelled series per expanded curve.
///
/// # Panics
///
/// Panics when the spec is invalid or a generator fails — figure code treats both as
/// programming errors, exactly like the old bespoke loops did.
pub fn scenario_series(spec: &ScenarioSpec, metric: SweepMetric) -> Vec<DataSeries> {
    ScenarioRunner::new()
        .run(spec)
        .unwrap_or_else(|e| panic!("scenario '{}' failed: {e}", spec.name))
        .series(metric)
}

/// Generates `scale.realizations` independent topologies and concatenates the degrees of
/// all their nodes into one sample, the input of the paper's `P(k)` plots.
pub fn degree_samples(
    generator: &dyn TopologyGenerator,
    label: &str,
    scale: &Scale,
    seed: u64,
) -> Vec<usize> {
    let salt = label_salt(label);
    let mut samples = Vec::new();
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let graph = generator.generate(&mut rng).unwrap_or_else(|e| {
            panic!(
                "generator {} failed for series '{label}': {e}",
                generator.name()
            )
        });
        samples.extend(graph.degrees());
    }
    samples
}

/// Builds a `P(k)` series (log-binned density versus degree) for one generator
/// configuration.
pub fn degree_distribution_series(
    generator: &dyn TopologyGenerator,
    label: &str,
    scale: &Scale,
    seed: u64,
) -> DataSeries {
    let samples = degree_samples(generator, label, scale, seed);
    let mut series = DataSeries::new(label);
    for bin in log_binned_distribution(&samples, BINS_PER_DECADE) {
        series.push(DataPoint {
            x: bin.center,
            y: bin.density,
            y_error: 0.0,
            realizations: scale.realizations,
        });
    }
    series
}

/// Estimates the degree-distribution exponent of one generator configuration, averaged over
/// realizations. The fit window is `[m, fit_max]`; the paper stops the window just below
/// the hard cutoff so the accumulation spike does not drag the slope.
pub fn fitted_exponent(
    generator: &dyn TopologyGenerator,
    label: &str,
    m: usize,
    fit_max: usize,
    scale: &Scale,
    seed: u64,
) -> Summary {
    let salt = label_salt(label);
    let mut summary = Summary::new();
    for r in 0..scale.realizations {
        let mut rng = realization_rng(seed, salt, r);
        let graph = generator.generate(&mut rng).unwrap_or_else(|e| {
            panic!(
                "generator {} failed for series '{label}': {e}",
                generator.name()
            )
        });
        let hist = metrics::degree_histogram(&graph);
        if let Some(fit) = fit_exponent_from_counts(&hist.counts, m, fit_max) {
            summary.add(fit.gamma);
        }
    }
    summary
}

/// Standard TTL grid for flooding figures (the paper sweeps τ until the flood saturates).
pub fn flooding_ttls() -> Vec<u32> {
    vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20]
}

/// Standard TTL grid for NF and RW figures (the paper uses τ up to 10).
pub fn nf_rw_ttls() -> Vec<u32> {
    vec![2, 3, 4, 5, 6, 7, 8, 9, 10]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfo_core::pa::PreferentialAttachment;
    use sfo_scenario::{SearchSpec, SweepSpec, TopologySpec};

    fn tiny_scale() -> Scale {
        Scale {
            degree_nodes: 400,
            search_nodes: 300,
            realizations: 2,
            searches_per_point: 5,
        }
    }

    #[test]
    fn realization_rngs_differ_across_indices_and_labels() {
        use rand::RngCore;
        let a = realization_rng(1, label_salt("a"), 0).next_u64();
        let b = realization_rng(1, label_salt("a"), 1).next_u64();
        let c = realization_rng(1, label_salt("b"), 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic for identical inputs.
        assert_eq!(a, realization_rng(1, label_salt("a"), 0).next_u64());
    }

    #[test]
    fn degree_samples_concatenate_realizations() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.degree_nodes, 1).unwrap();
        let samples = degree_samples(&generator, "m=1", &scale, 3);
        assert_eq!(samples.len(), scale.degree_nodes * scale.realizations);
    }

    #[test]
    fn degree_distribution_series_is_decreasing_for_pa() {
        let scale = tiny_scale();
        let generator = PreferentialAttachment::new(scale.degree_nodes, 1).unwrap();
        let series = degree_distribution_series(&generator, "m=1", &scale, 5);
        assert!(series.points.len() >= 3);
        assert!(series.points.first().unwrap().y > series.points.last().unwrap().y);
    }

    #[test]
    fn fitted_exponent_is_plausible_for_pa() {
        let scale = Scale {
            degree_nodes: 2_000,
            ..tiny_scale()
        };
        let generator = PreferentialAttachment::new(scale.degree_nodes, 2).unwrap();
        let summary = fitted_exponent(&generator, "m=2", 2, 60, &scale, 7);
        assert_eq!(summary.count(), scale.realizations);
        let gamma = summary.mean();
        assert!(
            (1.5..=3.8).contains(&gamma),
            "fitted exponent {gamma} far outside the scale-free range"
        );
    }

    #[test]
    fn scenario_series_hits_grow_with_ttl() {
        let scale = tiny_scale();
        let spec = ScenarioSpec::sweep(
            "helpers-test",
            TopologySpec::Pa {
                nodes: scale.search_nodes,
                m: 2,
                cutoff: Some(20),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1, 2, 4, 8], scale.searches_per_point),
            9,
            scale.realizations,
        );
        let series = scenario_series(&spec, SweepMetric::Hits);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].label, "PA, m=2, k_c=20");
        assert_eq!(series[0].points.len(), 4);
        assert!(series[0].y_at(8.0).unwrap() > series[0].y_at(1.0).unwrap());
        for p in &series[0].points {
            assert_eq!(p.realizations, scale.realizations);
        }
    }

    #[test]
    #[should_panic(expected = "scenario 'broken' failed")]
    fn scenario_series_panics_on_invalid_specs() {
        let spec = ScenarioSpec::sweep(
            "broken",
            TopologySpec::Pa {
                nodes: 0,
                m: 2,
                cutoff: None,
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1], 1),
            1,
            1,
        );
        let _ = scenario_series(&spec, SweepMetric::Hits);
    }

    #[test]
    fn ttl_grids_are_increasing() {
        for grid in [flooding_ttls(), nf_rw_ttls()] {
            for w in grid.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
