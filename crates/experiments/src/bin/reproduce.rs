//! Command-line driver regenerating the paper's figures and tables.
//!
//! ```text
//! reproduce [--scale paper|reduced|smoke] [--seed N] [--csv] [--gnuplot] [--out DIR] [EXPERIMENT ...]
//! reproduce --list
//! ```
//!
//! Without experiment ids, every registered experiment is run. Output goes to stdout, and
//! additionally to `<out>/<id>.csv` when `--out` is given; `--gnuplot` additionally writes a
//! self-contained `<out>/<id>.gp` gnuplot script for every figure-shaped experiment.

use sfo_analysis::export::{suggested_scale, to_gnuplot};
use sfo_experiments::{all_experiments, run_experiment, ExperimentOutput, Scale};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    scale: Scale,
    seed: u64,
    csv: bool,
    gnuplot: bool,
    out_dir: Option<PathBuf>,
    experiments: Vec<String>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        scale: Scale::reduced(),
        seed: 42,
        csv: false,
        gnuplot: false,
        out_dir: None,
        experiments: Vec::new(),
        list: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().ok_or("--scale requires a value")?;
                options.scale = match value.as_str() {
                    "paper" => Scale::paper(),
                    "reduced" => Scale::reduced(),
                    "smoke" => Scale::smoke(),
                    other => {
                        return Err(format!(
                            "unknown scale '{other}' (expected paper, reduced, or smoke)"
                        ))
                    }
                };
            }
            "--seed" => {
                let value = iter.next().ok_or("--seed requires a value")?;
                options.seed = value
                    .parse()
                    .map_err(|_| format!("invalid seed '{value}'"))?;
            }
            "--csv" => options.csv = true,
            "--gnuplot" => options.gnuplot = true,
            "--out" => {
                let value = iter.next().ok_or("--out requires a directory")?;
                options.out_dir = Some(PathBuf::from(value));
            }
            "--list" => options.list = true,
            "--help" | "-h" => {
                return Err(usage());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'\n{}", usage()))
            }
            other => options.experiments.push(other.to_string()),
        }
    }
    Ok(options)
}

fn usage() -> String {
    let mut text = String::from(
        "usage: reproduce [--scale paper|reduced|smoke] [--seed N] [--csv] [--gnuplot] [--out DIR] [EXPERIMENT ...]\n\
         \n  --list             list registered experiments\n\nexperiments:\n",
    );
    for spec in all_experiments() {
        text.push_str(&format!("  {:<18} {}\n", spec.id, spec.title));
    }
    text
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if options.list {
        for spec in all_experiments() {
            println!("{:<18} {}", spec.id, spec.title);
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<String> = if options.experiments.is_empty() {
        all_experiments().iter().map(|s| s.id.to_string()).collect()
    } else {
        options.experiments.clone()
    };

    if let Some(dir) = &options.out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    for id in &ids {
        eprintln!("running {id} ...");
        let Some(output) = run_experiment(id, &options.scale, options.seed) else {
            eprintln!("unknown experiment '{id}'\n{}", usage());
            return ExitCode::FAILURE;
        };
        if options.csv {
            println!("{}", output.to_csv());
        } else {
            println!("{output}");
        }
        if let Some(dir) = &options.out_dir {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = std::fs::write(&path, output.to_csv()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            if options.gnuplot {
                if let ExperimentOutput::Figure(figure) = &output {
                    let script = to_gnuplot(figure, suggested_scale(id));
                    let path = dir.join(format!("{id}.gp"));
                    if let Err(e) = std::fs::write(&path, script) {
                        eprintln!("cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    }
    ExitCode::SUCCESS
}
