//! Aggregation of repeated measurements.
//!
//! Every data point in the paper's figures averages several independent network
//! realizations ("for every data point 10 different realizations of the network have been
//! used"). [`Summary`] collects such repeated observations and exposes the mean, spread,
//! and standard error used for error bars.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming summary statistics of a sequence of observations (Welford's algorithm).
///
/// # Example
///
/// ```
/// use sfo_analysis::Summary;
///
/// let summary: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].iter().copied().collect();
/// assert_eq!(summary.count(), 8);
/// assert!((summary.mean() - 5.0).abs() < 1e-12);
/// assert!((summary.std_dev() - 2.138089935299395).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Returns the arithmetic mean, or 0.0 if no observations were added.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the sample standard deviation (denominator `n - 1`), or 0.0 with fewer than
    /// two observations.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Returns the standard error of the mean, or 0.0 with fewer than two observations.
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Returns the smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Returns the largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another summary into this one, as if all its observations had been added
    /// here.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={})",
            self.mean(),
            self.std_error(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [3.5].iter().copied().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn known_statistics() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .iter()
            .copied()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
        assert!((s.std_error() - s.std_dev() / 8f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64).sin() * 10.0 + i as f64 / 3.0)
            .collect();
        let (a, b) = data.split_at(37);
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let whole: Summary = data.iter().copied().collect();
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.std_dev() - whole.std_dev()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].iter().copied().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_adds_observations() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_mean_and_count() {
        let s: Summary = [1.0, 3.0].iter().copied().collect();
        let text = s.to_string();
        assert!(text.contains("2.0000"));
        assert!(text.contains("n=2"));
    }
}
