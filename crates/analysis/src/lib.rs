//! # sfo-analysis
//!
//! Statistics used to turn raw topology and search measurements into the paper's figures
//! and tables:
//!
//! * [`histogram`] — linear and logarithmically binned empirical distributions (the degree
//!   distributions of Figs. 1-4 are log-binned).
//! * [`powerlaw_fit`] — estimation of the degree-distribution exponent `γ`, both by
//!   least-squares regression on the log-log distribution (what the paper plots in
//!   Figs. 1(c) and 4(g)) and by discrete maximum likelihood.
//! * [`summary`] — mean / standard deviation / standard error across realizations; every
//!   data point in the paper averages 10 network realizations.
//! * [`stats`] — bootstrap confidence intervals, Kolmogorov-Smirnov goodness of fit, and
//!   correlation, for quantifying the "quite large error bars" the paper mentions.
//! * [`kmin`] — Clauset-style selection of the power-law fit window lower bound.
//! * [`export`] — self-contained gnuplot scripts for any figure, with the paper's axis
//!   conventions.
//! * [`series`] — labelled data series, figures as collections of series, and CSV/plain
//!   text rendering used by the `reproduce` binary.
//! * [`table`] — a small fixed-width text table renderer for Table I / Table II style
//!   output.
//!
//! # Example
//!
//! ```
//! use sfo_analysis::powerlaw_fit::fit_exponent_least_squares;
//!
//! // A perfect power law P(k) ~ k^-2.5 yields the exponent back.
//! let points: Vec<(f64, f64)> = (1..200).map(|k| (k as f64, (k as f64).powf(-2.5))).collect();
//! let fit = fit_exponent_least_squares(&points).unwrap();
//! assert!((fit.gamma - 2.5).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod histogram;
pub mod kmin;
pub mod powerlaw_fit;
pub mod series;
pub mod stats;
pub mod summary;
pub mod table;

pub use histogram::{log_binned_distribution, LogBin};
pub use kmin::{select_k_min, KminSelection};
pub use powerlaw_fit::{fit_exponent_least_squares, fit_exponent_mle, ExponentFit};
pub use series::{DataPoint, DataSeries, FigureData};
pub use stats::{bootstrap_mean_ci, ks_distance_powerlaw, pearson_correlation, ConfidenceInterval};
pub use summary::Summary;
pub use table::TextTable;
