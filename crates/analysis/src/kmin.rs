//! Clauset-Shalizi-Newman style selection of the fit window's lower bound `k_min`.
//!
//! Least-squares fits of degree distributions are sensitive to where the power-law region
//! starts: the body of a cutoff-limited distribution bends away from a pure power law at
//! small `k` (and piles up at `k = k_c`). The standard remedy is to fit the exponent by
//! maximum likelihood for every candidate `k_min`, measure the Kolmogorov-Smirnov distance
//! between the model and the data above that `k_min`, and keep the `k_min` that minimizes
//! the distance. The paper does not describe its fit windows (one reason its Fig. 4(g)
//! error bars are large); this module makes the reproduction's choice explicit and
//! reproducible.

use crate::powerlaw_fit::{fit_exponent_mle, ExponentFit};
use crate::stats::ks_distance_powerlaw;
use serde::{Deserialize, Serialize};

/// Result of scanning candidate `k_min` values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KminSelection {
    /// The selected lower bound of the power-law region.
    pub k_min: usize,
    /// The exponent fitted with that lower bound.
    pub fit: ExponentFit,
    /// Kolmogorov-Smirnov distance of the selected fit.
    pub ks_distance: f64,
    /// Number of candidate `k_min` values that produced a valid fit.
    pub candidates_evaluated: usize,
}

/// Scans `k_min` over `[lower, upper]`, fits the exponent by maximum likelihood for each
/// candidate, and returns the candidate minimizing the KS distance between the fitted
/// bounded power law and the sample restricted to `[k_min, k_max]`.
///
/// `k_max` bounds the fitted support; pass the hard cutoff when one was applied (so the
/// accumulation spike is excluded via `k_max = k_c - 1`) or the maximum degree otherwise.
/// Returns `None` when no candidate produces a valid fit.
///
/// # Example
///
/// ```
/// use sfo_analysis::kmin::select_k_min;
///
/// // Synthetic sample following k^-2.5 from k = 3 upward, with extra mass at k = 1, 2.
/// let mut samples = vec![1usize; 3_000];
/// samples.extend(std::iter::repeat(2usize).take(2_000));
/// for k in 3usize..=80 {
///     let copies = (60_000.0 * (k as f64).powf(-2.5)).round() as usize;
///     samples.extend(std::iter::repeat(k).take(copies));
/// }
/// let selection = select_k_min(&samples, 1, 10, 80).unwrap();
/// assert!(selection.k_min >= 2, "the distorted head should be excluded");
/// assert!((selection.fit.gamma - 2.5).abs() < 0.35);
/// ```
pub fn select_k_min(
    samples: &[usize],
    lower: usize,
    upper: usize,
    k_max: usize,
) -> Option<KminSelection> {
    if lower == 0 || lower > upper {
        return None;
    }
    let mut best: Option<KminSelection> = None;
    let mut evaluated = 0usize;
    for k_min in lower..=upper.min(k_max) {
        let Some(fit) = fit_exponent_mle(samples, k_min) else {
            continue;
        };
        let Some(ks) = ks_distance_powerlaw(samples, fit.gamma, k_min, k_max) else {
            continue;
        };
        evaluated += 1;
        let candidate = KminSelection {
            k_min,
            fit,
            ks_distance: ks,
            candidates_evaluated: 0,
        };
        match &best {
            Some(current) if current.ks_distance <= ks => {}
            _ => best = Some(candidate),
        }
    }
    best.map(|mut selection| {
        selection.candidates_evaluated = evaluated;
        selection
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic degree sample: pure power law `k^-gamma` on `[start, end]`, each degree
    /// repeated proportionally to its probability.
    fn powerlaw_sample(gamma: f64, start: usize, end: usize, scale: f64) -> Vec<usize> {
        let mut samples = Vec::new();
        for k in start..=end {
            let copies = (scale * (k as f64).powf(-gamma)).round() as usize;
            samples.extend(std::iter::repeat_n(k, copies));
        }
        samples
    }

    #[test]
    fn rejects_degenerate_windows() {
        let samples = powerlaw_sample(2.5, 1, 50, 10_000.0);
        assert!(select_k_min(&samples, 0, 5, 50).is_none());
        assert!(select_k_min(&samples, 6, 5, 50).is_none());
        assert!(select_k_min(&[], 1, 5, 50).is_none());
    }

    #[test]
    fn clean_power_law_recovers_gamma_with_a_small_ks_distance() {
        let samples = powerlaw_sample(2.5, 1, 100, 500_000.0);
        let selection = select_k_min(&samples, 1, 10, 100).unwrap();
        assert!((1..=10).contains(&selection.k_min));
        assert!(
            (selection.fit.gamma - 2.5).abs() < 0.3,
            "gamma {}",
            selection.fit.gamma
        );
        assert!(selection.ks_distance < 0.05);
        assert!(selection.candidates_evaluated >= 5);
    }

    #[test]
    fn distorted_head_pushes_k_min_up() {
        // Power law from 4 upward, but with a flat (non-power-law) head at 1..=3.
        let mut samples = vec![1usize; 5_000];
        samples.extend(std::iter::repeat_n(2usize, 5_000));
        samples.extend(std::iter::repeat_n(3usize, 5_000));
        samples.extend(powerlaw_sample(2.2, 4, 120, 200_000.0));
        let selection = select_k_min(&samples, 1, 12, 120).unwrap();
        assert!(
            selection.k_min >= 3,
            "selected k_min {} should skip the flat head",
            selection.k_min
        );
        assert!(
            (selection.fit.gamma - 2.2).abs() < 0.4,
            "gamma {}",
            selection.fit.gamma
        );
    }

    #[test]
    fn selection_reports_the_minimum_ks_distance_among_candidates() {
        let samples = powerlaw_sample(3.0, 1, 60, 300_000.0);
        let selection = select_k_min(&samples, 1, 8, 60).unwrap();
        // Re-evaluate every candidate independently and confirm none beats the selection.
        for k_min in 1..=8usize {
            if let Some(fit) = fit_exponent_mle(&samples, k_min) {
                if let Some(ks) = ks_distance_powerlaw(&samples, fit.gamma, k_min, 60) {
                    assert!(
                        selection.ks_distance <= ks + 1e-12,
                        "k_min {k_min} beats the selection"
                    );
                }
            }
        }
    }
}
