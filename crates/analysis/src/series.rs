//! Labelled data series and figure containers.
//!
//! Each paper figure is a set of curves ("number of hits vs τ for m=1, k_c=10", ...).
//! [`DataSeries`] holds one such curve with optional error bars, [`FigureData`] collects
//! the curves of one figure, and both render to CSV or aligned plain text so the
//! `reproduce` binary can print paper-comparable output without a plotting dependency.

use crate::Summary;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// One point of a data series: an x value, the mean y value, and the spread across
/// realizations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// Abscissa (for example the TTL `τ` or the degree `k`).
    pub x: f64,
    /// Mean ordinate across realizations.
    pub y: f64,
    /// Standard error of the ordinate (0 when only one realization was run).
    pub y_error: f64,
    /// Number of realizations averaged into this point.
    pub realizations: usize,
}

impl DataPoint {
    /// Creates a point from a single observation.
    pub fn single(x: f64, y: f64) -> Self {
        DataPoint {
            x,
            y,
            y_error: 0.0,
            realizations: 1,
        }
    }

    /// Creates a point from a summary of repeated observations.
    pub fn from_summary(x: f64, summary: &Summary) -> Self {
        DataPoint {
            x,
            y: summary.mean(),
            y_error: summary.std_error(),
            realizations: summary.count(),
        }
    }
}

/// A labelled curve, e.g. `"m=2, k_c=10"`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataSeries {
    /// Curve label, matching the legend entries used in the paper's figures.
    pub label: String,
    /// Points sorted by the caller (typically in increasing x).
    pub points: Vec<DataPoint>,
}

impl DataSeries {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        DataSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, point: DataPoint) {
        self.points.push(point);
    }

    /// Returns the y value at the given x, if a point with exactly that abscissa exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-12)
            .map(|p| p.y)
    }

    /// Returns the largest y value in the series, or `None` if empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.y)
            .fold(None, |acc, y| match acc {
                None => Some(y),
                Some(m) => Some(m.max(y)),
            })
    }
}

/// All the curves of one reproduced figure or table.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FigureData {
    /// Short experiment identifier, e.g. `"fig9"`.
    pub id: String,
    /// Human-readable description of what the figure shows.
    pub title: String,
    /// Name of the x axis (e.g. `"tau"` or `"k"`).
    pub x_label: String,
    /// Name of the y axis (e.g. `"hits"` or `"P(k)"`).
    pub y_label: String,
    /// The curves.
    pub series: Vec<DataSeries>,
}

impl FigureData {
    /// Creates an empty figure container.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series to the figure.
    pub fn push_series(&mut self, series: DataSeries) {
        self.series.push(series);
    }

    /// Returns the series with the given label, if present.
    pub fn series_by_label(&self, label: &str) -> Option<&DataSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as CSV with columns `series,x,y,y_error,realizations`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,x,y,y_error,realizations\n");
        for series in &self.series {
            for p in &series.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{}",
                    escape_csv(&series.label),
                    p.x,
                    p.y,
                    p.y_error,
                    p.realizations
                );
            }
        }
        out
    }

    /// Renders the figure as aligned plain text suitable for terminal comparison with the
    /// paper's plots.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# x = {}, y = {}", self.x_label, self.y_label);
        for series in &self.series {
            let _ = writeln!(out, "## {}", series.label);
            for p in &series.points {
                let _ = writeln!(
                    out,
                    "  {:>12.4}  {:>14.6}  ±{:>12.6}  ({} runs)",
                    p.x, p.y, p.y_error, p.realizations
                );
            }
        }
        out
    }
}

impl fmt::Display for FigureData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureData {
        let mut fig = FigureData::new("fig9", "NF hits vs tau", "tau", "hits");
        let mut s1 = DataSeries::new("m=1, k_c=10");
        s1.push(DataPoint::single(2.0, 3.1));
        s1.push(DataPoint::single(4.0, 3.4));
        let mut s2 = DataSeries::new("m=2, k_c=10");
        let summary: Summary = [100.0, 110.0, 90.0].iter().copied().collect();
        s2.push(DataPoint::from_summary(2.0, &summary));
        fig.push_series(s1);
        fig.push_series(s2);
        fig
    }

    #[test]
    fn data_point_constructors() {
        let p = DataPoint::single(1.0, 2.0);
        assert_eq!(p.realizations, 1);
        assert_eq!(p.y_error, 0.0);
        let summary: Summary = [2.0, 4.0].iter().copied().collect();
        let q = DataPoint::from_summary(5.0, &summary);
        assert_eq!(q.x, 5.0);
        assert_eq!(q.y, 3.0);
        assert!(q.y_error > 0.0);
        assert_eq!(q.realizations, 2);
    }

    #[test]
    fn series_lookup_helpers() {
        let fig = sample_figure();
        let s = fig.series_by_label("m=1, k_c=10").unwrap();
        assert_eq!(s.y_at(4.0), Some(3.4));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.max_y(), Some(3.4));
        assert!(fig.series_by_label("missing").is_none());
        assert_eq!(DataSeries::new("empty").max_y(), None);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines[0], "series,x,y,y_error,realizations");
        assert_eq!(lines.len(), 4);
        // The label contains a comma, so it is quoted in the CSV output.
        assert!(lines[1].starts_with("\"m=1, k_c=10\",2,3.1"));
        assert!(lines[3].contains(",3"));
    }

    #[test]
    fn csv_escapes_special_characters() {
        assert_eq!(escape_csv("plain"), "plain");
        assert_eq!(escape_csv("a,b"), "\"a,b\"");
        assert_eq!(escape_csv("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn text_output_mentions_labels_and_axes() {
        let fig = sample_figure();
        let text = fig.to_text();
        assert!(text.contains("# fig9"));
        assert!(text.contains("x = tau"));
        assert!(text.contains("## m=2, k_c=10"));
        assert!(text.contains("3 runs"));
        assert_eq!(text, fig.to_string());
    }
}
