//! General statistics: bootstrap confidence intervals, Kolmogorov-Smirnov distances, and
//! correlation.
//!
//! The paper reports every data point as an average over 10 network realizations and notes
//! that some of its exponent estimates carry "quite large error bars". This module provides
//! the machinery to make such statements quantitative in the reproduction:
//!
//! * [`bootstrap_mean_ci`] — a percentile bootstrap confidence interval for the mean of a
//!   small sample (realization averages);
//! * [`ks_distance_powerlaw`] — the Kolmogorov-Smirnov distance between an empirical degree
//!   sample and a discrete bounded power law, the goodness-of-fit statistic behind the
//!   `k_min` selection of [`crate::kmin`];
//! * [`pearson_correlation`] — linear correlation between paired measurements (for example
//!   hit counts of two search algorithms across the same sources).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval for a statistic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the statistic on the full sample).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level the interval targets (for example 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Returns the half-width `(upper - lower) / 2` of the interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Percentile-bootstrap confidence interval for the mean of `samples`.
///
/// Returns `None` for an empty sample, a non-positive number of resamples, or a confidence
/// level outside `(0, 1)`. With a single observation the interval collapses onto it.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    samples: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Option<ConfidenceInterval> {
    if samples.is_empty() || resamples == 0 || !(0.0..1.0).contains(&level) || level <= 0.0 {
        return None;
    }
    let n = samples.len();
    let estimate = samples.iter().sum::<f64>() / n as f64;
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut sum = 0.0;
            for _ in 0..n {
                sum += samples[rng.gen_range(0..n)];
            }
            sum / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("bootstrap means are finite"));
    let alpha = (1.0 - level) / 2.0;
    let lower_idx = ((resamples as f64) * alpha).floor() as usize;
    let upper_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    Some(ConfidenceInterval {
        estimate,
        lower: means[lower_idx],
        upper: means[upper_idx],
        level,
    })
}

/// Kolmogorov-Smirnov distance between the empirical distribution of integer `samples`
/// (restricted to values in `[k_min, k_max]`) and the discrete bounded power law
/// `P(k) ∝ k^{-gamma}` on the same support.
///
/// Returns `None` if no samples fall in the window, the window is empty, or `gamma` is not
/// finite.
pub fn ks_distance_powerlaw(
    samples: &[usize],
    gamma: f64,
    k_min: usize,
    k_max: usize,
) -> Option<f64> {
    if k_min == 0 || k_min > k_max || !gamma.is_finite() {
        return None;
    }
    let windowed: Vec<usize> = samples
        .iter()
        .copied()
        .filter(|&k| (k_min..=k_max).contains(&k))
        .collect();
    if windowed.is_empty() {
        return None;
    }
    let n = windowed.len() as f64;

    // Empirical counts per degree within the window.
    let mut counts = vec![0usize; k_max - k_min + 1];
    for &k in &windowed {
        counts[k - k_min] += 1;
    }

    // Model pmf, normalized over the same window.
    let weights: Vec<f64> = (k_min..=k_max).map(|k| (k as f64).powf(-gamma)).collect();
    let total_weight: f64 = weights.iter().sum();

    let mut empirical_cdf = 0.0;
    let mut model_cdf = 0.0;
    let mut max_gap: f64 = 0.0;
    for (i, &count) in counts.iter().enumerate() {
        empirical_cdf += count as f64 / n;
        model_cdf += weights[i] / total_weight;
        max_gap = max_gap.max((empirical_cdf - model_cdf).abs());
    }
    Some(max_gap)
}

/// Pearson linear correlation between two paired samples.
///
/// Returns `None` if the samples differ in length, have fewer than two elements, or either
/// has zero variance.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x).powi(2);
        syy += (y - mean_y).powi(2);
        sxy += (x - mean_x) * (y - mean_y);
    }
    if sxx < 1e-300 || syy < 1e-300 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn bootstrap_rejects_degenerate_inputs() {
        let mut r = rng(0);
        assert!(bootstrap_mean_ci(&[], 100, 0.95, &mut r).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, &mut r).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 0.0, &mut r).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.5, &mut r).is_none());
    }

    #[test]
    fn bootstrap_interval_contains_the_sample_mean() {
        let samples: Vec<f64> = (0..40).map(|i| 10.0 + (i % 7) as f64).collect();
        let ci = bootstrap_mean_ci(&samples, 2_000, 0.95, &mut rng(1)).unwrap();
        assert!(ci.contains(ci.estimate));
        assert!(ci.lower <= ci.upper);
        assert!(ci.half_width() > 0.0);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn bootstrap_single_observation_collapses() {
        let ci = bootstrap_mean_ci(&[4.2], 500, 0.9, &mut rng(2)).unwrap();
        assert_eq!(ci.estimate, 4.2);
        assert_eq!(ci.lower, 4.2);
        assert_eq!(ci.upper, 4.2);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn bootstrap_interval_narrows_with_more_data() {
        let small: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let large: Vec<f64> = (0..1_000).map(|i| (i % 5) as f64).collect();
        let ci_small = bootstrap_mean_ci(&small, 1_000, 0.95, &mut rng(3)).unwrap();
        let ci_large = bootstrap_mean_ci(&large, 1_000, 0.95, &mut rng(3)).unwrap();
        assert!(ci_large.half_width() < ci_small.half_width());
    }

    #[test]
    fn ks_distance_is_small_for_matching_samples() {
        // Build a synthetic sample that follows k^-2.5 closely on [2, 100].
        let mut samples = Vec::new();
        for k in 2usize..=100 {
            let copies = (200_000.0 * (k as f64).powf(-2.5)).round() as usize;
            samples.extend(std::iter::repeat_n(k, copies));
        }
        let good = ks_distance_powerlaw(&samples, 2.5, 2, 100).unwrap();
        let bad = ks_distance_powerlaw(&samples, 1.5, 2, 100).unwrap();
        assert!(
            good < 0.01,
            "matching exponent should give a tiny KS distance, got {good}"
        );
        assert!(
            bad > good * 5.0,
            "wrong exponent should fit much worse ({bad} vs {good})"
        );
    }

    #[test]
    fn ks_distance_edge_cases() {
        assert!(ks_distance_powerlaw(&[], 2.5, 1, 10).is_none());
        assert!(ks_distance_powerlaw(&[5, 6], 2.5, 0, 10).is_none());
        assert!(ks_distance_powerlaw(&[5, 6], 2.5, 10, 5).is_none());
        assert!(ks_distance_powerlaw(&[50, 60], 2.5, 1, 10).is_none());
        assert!(ks_distance_powerlaw(&[5, 6], f64::NAN, 1, 10).is_none());
        // A degenerate single-value window always matches perfectly.
        let d = ks_distance_powerlaw(&[3, 3, 3], 2.0, 3, 3).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn pearson_correlation_detects_linear_relationships() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys_up: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let ys_down: Vec<f64> = xs.iter().map(|x| -2.0 * x + 7.0).collect();
        assert!((pearson_correlation(&xs, &ys_up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson_correlation(&xs, &ys_down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_correlation_edge_cases() {
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
        let xs = [1.0, 2.0, 3.0, 4.0];
        let noise = [0.3, -0.4, 0.2, -0.1];
        let r = pearson_correlation(&xs, &noise).unwrap();
        assert!(r.abs() <= 1.0);
    }
}
