//! Estimation of the degree-distribution exponent `γ`.
//!
//! The paper reports fitted exponents in Fig. 1(a) ("power-law fits ... have exponents
//! between (−2.9, −2.8)"), Fig. 1(c) (exponent versus hard cutoff for PA), and Fig. 4(g)
//! (the same for DAPA). Those fits are straight lines on the log-log degree distribution;
//! [`fit_exponent_least_squares`] reproduces that estimator. A discrete maximum-likelihood
//! estimator ([`fit_exponent_mle`]) is provided as a more robust cross-check, since
//! least-squares fits of binned tails are known to be noisy — the paper itself notes the
//! large error bars of Fig. 4(g).

use serde::{Deserialize, Serialize};

/// Result of a power-law exponent fit, `P(k) ∝ k^{-γ}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentFit {
    /// Estimated exponent `γ` (reported positive; the slope of the log-log fit is `-γ`).
    pub gamma: f64,
    /// Coefficient of determination of the log-log regression (1.0 for a perfect power
    /// law); `None` for the MLE estimator.
    pub r_squared: Option<f64>,
    /// Number of points (or samples) the fit used.
    pub points_used: usize,
}

/// Fits `γ` by least squares on `ln P(k)` versus `ln k`.
///
/// `points` are `(k, P(k))` pairs; entries with non-positive `k` or `P(k)` are ignored.
/// Returns `None` if fewer than two usable points remain or if all abscissae coincide.
///
/// # Example
///
/// ```
/// use sfo_analysis::powerlaw_fit::fit_exponent_least_squares;
///
/// let pts: Vec<(f64, f64)> = (1..100).map(|k| (k as f64, 7.0 * (k as f64).powf(-3.0))).collect();
/// let fit = fit_exponent_least_squares(&pts).unwrap();
/// assert!((fit.gamma - 3.0).abs() < 1e-9);
/// assert!(fit.r_squared.unwrap() > 0.9999);
/// ```
pub fn fit_exponent_least_squares(points: &[(f64, f64)]) -> Option<ExponentFit> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|(k, p)| *k > 0.0 && *p > 0.0 && k.is_finite() && p.is_finite())
        .map(|&(k, p)| (k.ln(), p.ln()))
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let n = usable.len() as f64;
    let mean_x = usable.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = usable.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = usable.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if sxx < 1e-15 {
        return None;
    }
    let sxy: f64 = usable
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = usable.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = usable
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-15 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(ExponentFit {
        gamma: -slope,
        r_squared: Some(r_squared),
        points_used: usable.len(),
    })
}

/// Fits `γ` from a degree histogram by least squares, restricted to degrees within
/// `[k_min, k_max]`.
///
/// `counts[k]` is the number of nodes of degree `k` (as produced by
/// `sfo_graph::metrics::degree_histogram`). The restriction is how the paper handles the
/// spike at the hard cutoff: the fit window stops just below `k_c` so the accumulation bin
/// does not drag the slope.
pub fn fit_exponent_from_counts(
    counts: &[usize],
    k_min: usize,
    k_max: usize,
) -> Option<ExponentFit> {
    let total: usize = counts.iter().sum();
    if total == 0 || k_min > k_max {
        return None;
    }
    let points: Vec<(f64, f64)> = counts
        .iter()
        .enumerate()
        .skip(k_min)
        .take(k_max.saturating_sub(k_min) + 1)
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| (k as f64, c as f64 / total as f64))
        .collect();
    fit_exponent_least_squares(&points)
}

/// Discrete maximum-likelihood estimate of `γ` from raw degree samples, using the standard
/// continuous approximation `γ̂ = 1 + n / Σ ln(k_i / (k_min - 1/2))` (Clauset, Shalizi &
/// Newman).
///
/// Samples below `k_min` are ignored. Returns `None` when fewer than two samples remain or
/// the estimate degenerates.
pub fn fit_exponent_mle(samples: &[usize], k_min: usize) -> Option<ExponentFit> {
    if k_min == 0 {
        return None;
    }
    let usable: Vec<f64> = samples
        .iter()
        .filter(|&&k| k >= k_min)
        .map(|&k| k as f64)
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let shift = k_min as f64 - 0.5;
    let log_sum: f64 = usable.iter().map(|&k| (k / shift).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    let gamma = 1.0 + usable.len() as f64 / log_sum;
    Some(ExponentFit {
        gamma,
        r_squared: None,
        points_used: usable.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_exponent() {
        for gamma in [2.2f64, 2.6, 3.0] {
            let pts: Vec<(f64, f64)> = (1..500)
                .map(|k| (k as f64, 3.0 * (k as f64).powf(-gamma)))
                .collect();
            let fit = fit_exponent_least_squares(&pts).unwrap();
            assert!(
                (fit.gamma - gamma).abs() < 1e-9,
                "gamma {gamma} vs {}",
                fit.gamma
            );
            assert!(fit.r_squared.unwrap() > 0.999999);
            assert_eq!(fit.points_used, 499);
        }
    }

    #[test]
    fn least_squares_ignores_invalid_points() {
        let mut pts: Vec<(f64, f64)> = (1..100)
            .map(|k| (k as f64, (k as f64).powf(-2.0)))
            .collect();
        pts.push((0.0, 1.0));
        pts.push((5.0, 0.0));
        pts.push((f64::NAN, 0.1));
        let fit = fit_exponent_least_squares(&pts).unwrap();
        assert!((fit.gamma - 2.0).abs() < 1e-9);
        assert_eq!(fit.points_used, 99);
    }

    #[test]
    fn least_squares_needs_two_distinct_points() {
        assert!(fit_exponent_least_squares(&[]).is_none());
        assert!(fit_exponent_least_squares(&[(2.0, 0.5)]).is_none());
        assert!(fit_exponent_least_squares(&[(2.0, 0.5), (2.0, 0.4)]).is_none());
    }

    #[test]
    fn fit_from_counts_respects_window() {
        // counts ~ k^-2.5 for k in 1..=50, plus a huge spurious spike at k=60 which the
        // window excludes.
        let mut counts = vec![0usize; 61];
        for (k, count) in counts.iter_mut().enumerate().take(51).skip(1) {
            *count = (1_000_000.0 * (k as f64).powf(-2.5)).round() as usize;
        }
        counts[60] = 500_000;
        let windowed = fit_exponent_from_counts(&counts, 1, 50).unwrap();
        assert!(
            (windowed.gamma - 2.5).abs() < 0.05,
            "windowed fit {}",
            windowed.gamma
        );
        let unwindowed = fit_exponent_from_counts(&counts, 1, 60).unwrap();
        assert!(
            (unwindowed.gamma - 2.5).abs() > (windowed.gamma - 2.5).abs(),
            "the spike should bias the unwindowed fit more"
        );
        assert!(fit_exponent_from_counts(&[], 1, 10).is_none());
        assert!(fit_exponent_from_counts(&counts, 10, 5).is_none());
    }

    #[test]
    fn mle_recovers_exponent_of_synthetic_samples() {
        // Deterministic synthetic sample: value k repeated proportional to k^-2.5.
        let mut samples = Vec::new();
        for k in 1usize..=300 {
            let copies = (3_000_000.0 * (k as f64).powf(-2.5)).round() as usize;
            samples.extend(std::iter::repeat_n(k, copies));
        }
        // The continuous approximation carries a known bias for small k_min, so the check
        // uses a generous tolerance.
        let fit = fit_exponent_mle(&samples, 5).unwrap();
        assert!((fit.gamma - 2.5).abs() < 0.2, "mle estimate {}", fit.gamma);
        assert!(fit.r_squared.is_none());
    }

    #[test]
    fn mle_edge_cases() {
        assert!(fit_exponent_mle(&[], 1).is_none());
        assert!(fit_exponent_mle(&[5], 1).is_none());
        assert!(fit_exponent_mle(&[3, 4, 5], 0).is_none());
        assert!(fit_exponent_mle(&[1, 2, 3], 10).is_none());
    }
}
