//! Linear and logarithmic binning of empirical distributions.
//!
//! Degree distributions of scale-free networks span several orders of magnitude in both
//! `k` and `P(k)`; the paper's Figs. 1-4 are therefore presented on log-log axes. Raw
//! per-degree frequencies become extremely noisy in the tail (most degrees occur zero or
//! one time), so the standard remedy — also used here — is logarithmic binning: bins whose
//! widths grow geometrically, with counts converted to densities.

use serde::{Deserialize, Serialize};

/// One logarithmic bin of a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogBin {
    /// Inclusive lower edge of the bin.
    pub lower: f64,
    /// Exclusive upper edge of the bin.
    pub upper: f64,
    /// Geometric center of the bin, the natural abscissa on a log axis.
    pub center: f64,
    /// Probability density in the bin: (fraction of samples) / (bin width).
    pub density: f64,
    /// Raw number of samples that fell into the bin.
    pub count: usize,
}

/// Builds a linear histogram of non-negative integer samples: `counts[v]` is the number of
/// samples equal to `v`.
///
/// Returns an empty vector for an empty input.
pub fn linear_counts(samples: &[usize]) -> Vec<usize> {
    let max = match samples.iter().max() {
        Some(&m) => m,
        None => return Vec::new(),
    };
    let mut counts = vec![0usize; max + 1];
    for &s in samples {
        counts[s] += 1;
    }
    counts
}

/// Converts per-value counts into a normalized probability mass function, omitting zero
/// counts. Returns `(value, probability)` pairs.
pub fn normalized_distribution(counts: &[usize]) -> Vec<(usize, f64)> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(v, &c)| (v, c as f64 / total as f64))
        .collect()
}

/// Logarithmically bins positive integer samples (values of zero are ignored, as degree
/// zero cannot be placed on a log axis).
///
/// `bins_per_decade` controls the resolution; the paper-style plots use around 10. Empty
/// bins are omitted from the output.
///
/// # Panics
///
/// Panics if `bins_per_decade` is zero.
///
/// # Example
///
/// ```
/// use sfo_analysis::histogram::log_binned_distribution;
///
/// let samples: Vec<usize> = (1..=1000).collect();
/// let bins = log_binned_distribution(&samples, 5);
/// assert!(!bins.is_empty());
/// // Densities of a uniform sample are roughly constant.
/// let first = bins.first().unwrap().density;
/// let last = bins.last().unwrap().density;
/// assert!((first / last) < 3.0 && (last / first) < 3.0);
/// ```
pub fn log_binned_distribution(samples: &[usize], bins_per_decade: usize) -> Vec<LogBin> {
    assert!(bins_per_decade > 0, "bins_per_decade must be positive");
    let positive: Vec<usize> = samples.iter().copied().filter(|&s| s > 0).collect();
    if positive.is_empty() {
        return Vec::new();
    }
    let total = positive.len() as f64;
    let max = *positive.iter().max().expect("non-empty") as f64;
    let ratio = 10f64.powf(1.0 / bins_per_decade as f64);

    // Bin edges start at 1 and grow geometrically until they cover the maximum.
    let mut edges = vec![1.0f64];
    while *edges.last().expect("non-empty") <= max {
        let next = edges.last().expect("non-empty") * ratio;
        edges.push(next);
    }

    let mut bins: Vec<LogBin> = edges
        .windows(2)
        .map(|w| LogBin {
            lower: w[0],
            upper: w[1],
            center: (w[0] * w[1]).sqrt(),
            density: 0.0,
            count: 0,
        })
        .collect();

    for &s in &positive {
        let v = s as f64;
        // Find the bin whose [lower, upper) interval contains v.
        let idx = bins.partition_point(|b| b.upper <= v).min(bins.len() - 1);
        bins[idx].count += 1;
    }

    for bin in &mut bins {
        let width = bin.upper - bin.lower;
        bin.density = bin.count as f64 / total / width;
    }
    bins.retain(|b| b.count > 0);
    bins
}

/// Computes the complementary cumulative distribution `P(K >= k)` of integer samples,
/// returning `(k, probability)` pairs for every distinct value present.
///
/// The CCDF is a smoother alternative to the binned PMF and is convenient for verifying
/// power-law tails (a power law of exponent `γ` has a CCDF exponent of `γ - 1`).
pub fn ccdf(samples: &[usize]) -> Vec<(usize, f64)> {
    if samples.is_empty() {
        return Vec::new();
    }
    let counts = linear_counts(samples);
    let total = samples.len() as f64;
    let mut remaining = samples.len();
    let mut out = Vec::new();
    for (value, &count) in counts.iter().enumerate() {
        if count > 0 {
            out.push((value, remaining as f64 / total));
        }
        remaining -= count;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_counts_basic() {
        assert_eq!(linear_counts(&[]), Vec::<usize>::new());
        assert_eq!(linear_counts(&[0, 1, 1, 3]), vec![1, 2, 0, 1]);
    }

    #[test]
    fn normalized_distribution_sums_to_one() {
        let counts = linear_counts(&[1, 1, 2, 5, 5, 5]);
        let dist = normalized_distribution(&counts);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(dist[0], (1, 2.0 / 6.0));
        assert!(normalized_distribution(&[]).is_empty());
        assert!(normalized_distribution(&[0, 0]).is_empty());
    }

    #[test]
    fn log_bins_cover_all_positive_samples() {
        let samples: Vec<usize> = vec![1, 2, 3, 10, 100, 1000, 0, 0];
        let bins = log_binned_distribution(&samples, 10);
        let counted: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(counted, 6, "zeros are excluded, everything else is binned");
        for b in &bins {
            assert!(b.lower < b.upper);
            assert!(b.center > b.lower && b.center < b.upper);
            assert!(b.density > 0.0);
        }
    }

    #[test]
    fn log_bins_of_power_law_have_decreasing_density() {
        // Construct an exact discrete power-law-ish sample: value k appears ~ C k^-2 times.
        let mut samples = Vec::new();
        for k in 1usize..=200 {
            let copies = (200_000.0 * (k as f64).powf(-2.0)).round() as usize;
            samples.extend(std::iter::repeat_n(k, copies));
        }
        let bins = log_binned_distribution(&samples, 5);
        assert!(bins.len() >= 5);
        for w in bins.windows(2) {
            assert!(
                w[1].density < w[0].density,
                "density must decrease along a power-law tail"
            );
        }
    }

    #[test]
    fn log_bins_empty_input() {
        assert!(log_binned_distribution(&[], 10).is_empty());
        assert!(log_binned_distribution(&[0, 0, 0], 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "bins_per_decade")]
    fn log_bins_reject_zero_resolution() {
        let _ = log_binned_distribution(&[1, 2, 3], 0);
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_one() {
        let samples = vec![1, 2, 2, 3, 7];
        let c = ccdf(&samples);
        assert_eq!(c.first().unwrap().1, 1.0);
        for w in c.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(c.last().unwrap(), &(7, 0.2));
        assert!(ccdf(&[]).is_empty());
    }
}
