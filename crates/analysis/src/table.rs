//! Fixed-width text tables for Table I / Table II style output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple text table with a header row and string cells.
///
/// # Example
///
/// ```
/// use sfo_analysis::TextTable;
///
/// let mut table = TextTable::new(vec!["Procedure", "Global info"]);
/// table.push_row(vec!["PA", "yes"]);
/// table.push_row(vec!["DAPA", "no"]);
/// let rendered = table.to_string();
/// assert!(rendered.contains("Procedure"));
/// assert!(rendered.contains("DAPA"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty cells; longer rows
    /// are truncated to the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Returns the number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Returns the number of columns.
    pub fn column_count(&self) -> usize {
        self.header.len()
    }

    /// Returns the cell at the given row and column, if present.
    pub fn cell(&self, row: usize, column: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(column))
            .map(String::as_str)
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.header.is_empty() {
            return Ok(());
        }
        let widths = self.column_widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(&widths) {
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(width - cell.len()));
                line.push_str(" |");
            }
            writeln!(f, "{line}")
        };
        write_row(f, &self.header)?;
        let mut separator = String::from("|");
        for width in &widths {
            separator.push_str(&"-".repeat(width + 2));
            separator.push('|');
        }
        writeln!(f, "{separator}")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let mut table = TextTable::new(vec!["Diameter", "Exponent", "# of stubs"]);
        table.push_row(vec!["ln ln N", "(2,3)", ">= 1"]);
        table.push_row(vec!["ln N / ln ln N", "3", ">= 2"]);
        let text = table.to_string();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Diameter"));
        assert!(lines[1].chars().all(|c| c == '|' || c == '-'));
        assert!(lines[2].contains("ln ln N"));
        assert!(lines[3].contains(">= 2"));
        // All lines are equally wide thanks to padding.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn short_and_long_rows_are_normalized() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
        table.push_row(vec!["x", "y", "overflow"]);
        assert_eq!(table.row_count(), 2);
        assert_eq!(table.column_count(), 2);
        assert_eq!(table.cell(0, 1), Some(""));
        assert_eq!(table.cell(1, 1), Some("y"));
        assert_eq!(table.cell(1, 2), None);
        assert_eq!(table.cell(5, 0), None);
    }

    #[test]
    fn empty_table_renders_to_nothing() {
        let table = TextTable::new(Vec::<String>::new());
        assert_eq!(table.to_string(), "");
    }
}
