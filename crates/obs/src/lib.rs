//! # sfo-obs
//!
//! The workspace's telemetry substrate: lock-free [`Counter`]s, log-bucketed latency
//! [`Histogram`]s with p50/p95/p99/max extraction, monotonic [`PhaseTimer`]s, and a
//! named-metric [`Registry`] whose [`MetricsSnapshot`] travels over the SFNF wire
//! protocol and through the scenario JSON dialect.
//!
//! The crate exists so the runtime layers — `sfo-engine`'s worker pool, `sfo-net`'s
//! server and dispatcher, the `sfo-overlay` failure detector, `sfo-scenario`'s runner —
//! can be *observed* without being *perturbed*. Two rules make that possible, and every
//! instrumented call site in the workspace is audited against them:
//!
//! 1. **Telemetry never touches an RNG stream.** Recording is pure memory traffic
//!    (relaxed atomics) plus monotonic-clock reads; no metric derives from or advances
//!    any random state, so the workspace's `stream_rng` determinism contract — results
//!    byte-identical across worker counts, shard counts, and transports — is untouched.
//! 2. **Telemetry never reorders work.** Counters and histograms are recorded at
//!    points the schedulers already pass through; no lock added for metrics is held
//!    across job execution, and no instrumented path gains a new branch that depends
//!    on a metric's value.
//!
//! Consequently a metrics-on run produces a byte-identical `ScenarioReport` to a
//! metrics-off run of the same spec and seed (the workspace tests pin this). Placed
//! (shard-routed) execution leans on this harder than any other layer: the
//! `placed.*` family — `placed.frontiers_served` / `placed.frontiers_forwarded` /
//! `placed.frontier_entries_scanned` / `placed.frontier_entries_cross` on workers,
//! `placed.frontiers_sent` and the `placed.hop_micros` histogram on the dispatcher —
//! observes cross-host frontier traffic whose *results* must remain byte-identical
//! to the serial run, so every one of those call sites obeys rules 1 and 2. On a
//! full flood, `frontier_entries_cross / frontier_entries_scanned` equals the
//! topology's `boundary_fraction()` exactly (an integer identity the workspace
//! tests pin).
//!
//! # Bucketing
//!
//! Histograms are log2-bucketed: sample `v` lands in bucket `64 - v.leading_zeros()`
//! (bucket 0 holds exactly the value 0, bucket `b ≥ 1` holds `[2^(b-1), 2^b - 1]`).
//! Quantiles return the inclusive upper bound of the bucket containing the requested
//! rank, clamped to the exact observed maximum — a deliberate overestimate of at most
//! 2x, in exchange for constant memory and wait-free recording. Snapshots of the same
//! bucketing merge exactly (bucket-wise sums), so per-worker histograms can be combined
//! by a dispatcher without loss beyond the original bucketing.
//!
//! # Example
//!
//! ```
//! use sfo_obs::{PhaseTimer, Registry};
//!
//! let registry = Registry::new();
//! registry.counter("engine.jobs").add(128);
//! let hist = registry.histogram("net.request_micros");
//! for v in [120, 130, 900, 15_000] {
//!     hist.record(v);
//! }
//! let timer = PhaseTimer::start();
//! registry.histogram("scenario.sweep_micros").record(timer.elapsed_micros());
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("engine.jobs"), Some(128));
//! let req = snapshot.histogram("net.request_micros").unwrap();
//! assert_eq!(req.count, 4);
//! assert_eq!(req.max, 15_000);
//! assert_eq!(req.quantile(0.50), 255); // bucket [128, 255]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 for the value 0, plus one bucket per
/// possible bit width of a non-zero `u64` sample.
pub const BUCKET_COUNT: usize = 65;

/// The bucket a sample lands in: 0 for 0, otherwise the sample's bit width
/// (`64 - leading_zeros`), so bucket `b ≥ 1` spans `[2^(b-1), 2^b - 1]`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket: 0 for bucket 0, `2^b - 1` otherwise
/// (`u64::MAX` for the top bucket).
///
/// # Panics
///
/// Panics if `bucket >= BUCKET_COUNT`.
#[must_use]
pub fn bucket_bound(bucket: usize) -> u64 {
    assert!(bucket < BUCKET_COUNT, "bucket {bucket} out of range");
    match bucket {
        0 => 0,
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// A lock-free monotonically increasing counter.
///
/// All operations are relaxed atomics: recording threads never synchronize with each
/// other through a counter, and readers see a value that is exact once the writers
/// have quiesced (which is when snapshots are taken).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A wait-free log2-bucketed histogram (see the crate docs for the bucketing rule).
///
/// Recording is three relaxed `fetch_add`s and one `fetch_max`; there is no lock and
/// no allocation on the hot path. Quantiles and merging operate on
/// [`HistogramSnapshot`]s.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow, like the atomics beneath).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram as plain data.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..BUCKET_COUNT)
            .filter_map(|b| {
                let n = self.buckets[b].load(Ordering::Relaxed);
                (n > 0).then_some((b as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }

    /// Convenience quantile over a fresh snapshot; see [`HistogramSnapshot::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Plain-data copy of a [`Histogram`]: occupied buckets only, in ascending bucket
/// order, plus the exact count/sum/max at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Exact largest sample (0 when empty).
    pub max: u64,
    /// `(bucket index, samples in bucket)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// The quantile estimate for `q` in `[0, 1]`: the inclusive upper bound of the
    /// bucket containing the `ceil(q * count)`-th smallest sample, clamped to the
    /// exact observed maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bound(bucket as usize).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (`quantile(0.50)`).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The exact combination of two snapshots of the same bucketing: bucket-wise and
    /// field-wise sums (max of maxes). Associative and commutative, with the empty
    /// snapshot as identity — a dispatcher can fold per-worker snapshots in any order.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(bucket, n) in &other.buckets {
            *buckets.entry(bucket).or_insert(0) += n;
        }
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
            buckets: buckets.into_iter().collect(),
        }
    }
}

/// A started monotonic timer for one phase of work; read it with
/// [`elapsed_micros`](PhaseTimer::elapsed_micros) and record the result into a
/// [`Histogram`]. Wall-clock only — never part of any deterministic computation.
#[derive(Debug)]
pub struct PhaseTimer {
    start: Instant,
}

impl PhaseTimer {
    /// Starts the timer now.
    #[must_use]
    pub fn start() -> Self {
        PhaseTimer {
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`PhaseTimer::start`], saturated to `u64`.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records the elapsed microseconds into `hist` and returns them.
    pub fn observe(&self, hist: &Histogram) -> u64 {
        let micros = self.elapsed_micros();
        hist.record(micros);
        micros
    }
}

impl Default for PhaseTimer {
    fn default() -> Self {
        PhaseTimer::start()
    }
}

/// A named-metric registry: the one object an instrumented subsystem shares.
///
/// Metrics are created on first use and live for the registry's lifetime; callers
/// resolve a name once (a brief `Mutex`-guarded map lookup) and then record through
/// the returned `Arc` without any further locking. Snapshots list metrics in
/// name-sorted order, so two registries with the same recorded history serialize
/// identically.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned (a recording thread panicked).
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned (a recording thread panicked).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry lock");
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A point-in-time copy of every metric, name-sorted.
    ///
    /// # Panics
    ///
    /// Panics if a registry mutex is poisoned (a recording thread panicked).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry lock")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`Registry`]: plain data, name-sorted, ready to encode
/// as an SFNF `StatsReport` frame or through the scenario JSON dialect.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in ascending name order.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, in ascending name order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of the counter named `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshot of the histogram named `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Name-wise union of two snapshots: counters add, histograms
    /// [`merge`](HistogramSnapshot::merge), names stay sorted. Associative and
    /// commutative — fold any number of per-worker snapshots in any order.
    #[must_use]
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = self.counters.iter().cloned().collect();
        for (name, v) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        let mut histograms: BTreeMap<String, HistogramSnapshot> =
            self.histograms.iter().cloned().collect();
        for (name, h) in &other.histograms {
            let merged = match histograms.get(name) {
                Some(mine) => mine.merge(h),
                None => h.clone(),
            };
            histograms.insert(name.clone(), merged);
        }
        MetricsSnapshot {
            counters: counters.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
        }
    }

    /// True when the snapshot holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_their_ranges() {
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(10), 1023);
        assert_eq!(bucket_bound(64), u64::MAX);
        // Every non-top bucket's bound is the largest value mapping back to it.
        for b in 1..64 {
            assert_eq!(bucket_index(bucket_bound(b)), b);
            assert_eq!(bucket_index(bucket_bound(b) + 1), b + 1);
        }
    }

    #[test]
    fn counter_adds_and_reads() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_value_stream_is_exact_at_every_quantile() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(7);
        }
        let s = h.snapshot();
        // All samples sit in bucket 3 with bound 7; the max clamp makes it exact.
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 7000);
        assert_eq!(s.max, 7);
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p95(), 7);
        assert_eq!(s.p99(), 7);
        assert_eq!(s.buckets, vec![(3, 1000)]);
    }

    #[test]
    fn uniform_stream_quantiles_match_the_documented_bucketing() {
        let h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // rank 50 = value 50, bucket [32, 63] -> bound 63.
        assert_eq!(s.p50(), 63);
        // rank 95 = value 95, bucket [64, 127] -> bound 127, clamped to max 100.
        assert_eq!(s.p95(), 100);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(0.0), 1); // rank clamps to 1 -> bucket of value 1
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(5);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(0, 2), (3, 1)]);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(1.0), 5);
    }

    fn from_values(values: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_associative_commutative_with_identity() {
        let a = from_values(&[1, 2, 3, 1000]);
        let b = from_values(&[0, 7, 7, 64]);
        let c = from_values(&[u64::MAX, 5]);
        let empty = HistogramSnapshot::default();

        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&empty), a);
        assert_eq!(empty.merge(&a), a);
    }

    #[test]
    fn merge_equals_recording_the_union_stream() {
        let left = [1u64, 5, 9, 200, 200];
        let right = [0u64, 3, 1 << 40];
        let both: Vec<u64> = left.iter().chain(right.iter()).copied().collect();
        assert_eq!(
            from_values(&left).merge(&from_values(&right)),
            from_values(&both)
        );
    }

    #[test]
    fn registry_returns_the_same_metric_for_the_same_name() {
        let r = Registry::new();
        r.counter("a").inc();
        r.counter("a").add(2);
        r.histogram("h").record(9);
        r.histogram("h").record(17);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(3));
        assert_eq!(s.histogram("h").unwrap().count, 2);
        assert_eq!(s.counter("missing"), None);
        assert!(s.histogram("missing").is_none());
    }

    #[test]
    fn snapshots_are_name_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").inc();
        r.histogram("mid").record(1);
        r.histogram("aaa").record(2);
        let s = r.snapshot();
        let counter_names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        let hist_names: Vec<&str> = s.histograms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(counter_names, vec!["alpha", "zeta"]);
        assert_eq!(hist_names, vec!["aaa", "mid"]);
        assert_eq!(r.snapshot(), s);
    }

    #[test]
    fn snapshot_merge_unions_names() {
        let r1 = Registry::new();
        r1.counter("shared").add(2);
        r1.counter("only1").inc();
        r1.histogram("h").record(3);
        let r2 = Registry::new();
        r2.counter("shared").add(5);
        r2.counter("only2").inc();
        r2.histogram("h").record(300);
        r2.histogram("h2").record(1);

        let merged = r1.snapshot().merge(&r2.snapshot());
        assert_eq!(merged.counter("shared"), Some(7));
        assert_eq!(merged.counter("only1"), Some(1));
        assert_eq!(merged.counter("only2"), Some(1));
        assert_eq!(merged.histogram("h").unwrap().count, 2);
        assert_eq!(merged.histogram("h").unwrap().max, 300);
        assert_eq!(merged.histogram("h2").unwrap().count, 1);
        // Merge of snapshots is commutative too.
        assert_eq!(merged, r2.snapshot().merge(&r1.snapshot()));
    }

    #[test]
    fn phase_timer_records_into_a_histogram() {
        let h = Histogram::new();
        let t = PhaseTimer::start();
        let micros = t.observe(&h);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), micros);
        assert!(t.elapsed_micros() >= micros);
    }
}
