//! Cost of the extended search algorithms (probabilistic flooding, expanding ring,
//! degree-biased walk) alongside the paper's three, on the same cutoff-bounded PA overlay.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_bench::{bench_rng, capped_pa_graph, BENCH_NODES};
use sfo_graph::{CsrGraph, NodeId};
use sfo_search::biased_walk::DegreeBiasedWalk;
use sfo_search::expanding_ring::ExpandingRing;
use sfo_search::flooding::Flooding;
use sfo_search::normalized::NormalizedFlooding;
use sfo_search::probabilistic::ProbabilisticFlooding;
use sfo_search::random_walk::RandomWalk;
use sfo_search::SearchAlgorithm;
use std::time::Duration;

fn bench_extended_search(c: &mut Criterion) {
    let graph = capped_pa_graph(BENCH_NODES, 2, 20, 7).freeze();
    let ttl = 6u32;
    let algorithms: Vec<(&str, Box<dyn SearchAlgorithm<CsrGraph>>)> = vec![
        ("fl", Box::new(Flooding::new())),
        ("nf_k2", Box::new(NormalizedFlooding::new(2))),
        ("pfl_05", Box::new(ProbabilisticFlooding::new(0.5))),
        ("ring_1_2", Box::new(ExpandingRing::new(1, 2))),
        ("rw", Box::new(RandomWalk::new())),
        ("hd_rw", Box::new(DegreeBiasedWalk::new())),
    ];
    let mut group = c.benchmark_group("extended_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, algorithm) in &algorithms {
        group.bench_function(*label, |b| {
            let mut rng = bench_rng(11);
            let mut source = 0usize;
            b.iter(|| {
                source = (source + 97) % graph.node_count();
                algorithm.search(&graph, NodeId::new(source), ttl, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extended_search);
criterion_main!(benches);
