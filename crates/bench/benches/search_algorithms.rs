//! Per-search cost of FL, NF, and RW on a capped PA overlay (the workload behind
//! Figs. 6-12), swept over the time-to-live.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfo_bench::{bench_rng, capped_pa_graph};
use sfo_graph::{CsrGraph, NodeId};
use sfo_search::flooding::Flooding;
use sfo_search::normalized::NormalizedFlooding;
use sfo_search::random_walk::{MultipleRandomWalk, RandomWalk};
use sfo_search::SearchAlgorithm;
use std::time::Duration;

fn bench_search_algorithms(c: &mut Criterion) {
    let graph = capped_pa_graph(5_000, 2, 40, 3).freeze();
    let algorithms: Vec<(&'static str, Box<dyn SearchAlgorithm<CsrGraph>>)> = vec![
        ("FL", Box::new(Flooding::new())),
        ("NF", Box::new(NormalizedFlooding::new(2))),
        ("RW", Box::new(RandomWalk::new())),
        ("multi-RW", Box::new(MultipleRandomWalk::new(4))),
    ];

    let mut group = c.benchmark_group("search_algorithms");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for (name, algorithm) in &algorithms {
        for ttl in [4u32, 8] {
            group.bench_with_input(BenchmarkId::new(*name, ttl), &ttl, |b, &ttl| {
                let mut rng = bench_rng(11);
                let mut source = 0usize;
                b.iter(|| {
                    source = (source + 1) % graph.node_count();
                    algorithm.search(&graph, NodeId::new(source), ttl, &mut rng)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_search_algorithms);
criterion_main!(benches);
