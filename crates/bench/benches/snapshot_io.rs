//! Snapshot persistence: save/load throughput of the binary `SFOS` codec versus the
//! regeneration cost it replaces, on paper-scale hard-cutoff PA overlays.
//!
//! The rows answer the build-once/persist/query-many question directly:
//!
//! * `n{N}/generate` — drawing the topology from its generator, the cost every scenario
//!   paid per realization before the persistence layer existed;
//! * `n{N}/save` — encoding the frozen snapshot (checksum included) and writing it;
//! * `n{N}/load` — reading the file back with the full checksum and structural
//!   validation pass;
//! * `n{N}/load_sharded` — the same read through `ShardedCsr::load`, which additionally
//!   reconstructs a 4-shard partition and verifies the stored boundary manifest;
//! * `n{N}/load_mmap` / `n{N}/load_sharded_mmap` — the zero-copy variants: the file is
//!   mapped, checksum-verified once in place, and the CSR arrays are borrowed from the
//!   page cache instead of copied into owned buffers (`docs/FORMATS.md`, "The mmap
//!   contract"). The verification pass is identical, so the delta against the read
//!   rows isolates the copy the mapping avoids.
//!
//! Results are written to `BENCH_snapshot.json` at the workspace root (tracked in git,
//! regenerate with `cargo bench --bench snapshot_io`). Environment knobs for smoke
//! runs: `SFO_BENCH_SNAPSHOT_NODES` (comma-separated node counts, default
//! `10000,100000`) and `SFO_BENCH_SNAPSHOT_OUT` (output path).
//!
//! Reading the numbers: a load is a sequential read plus the checksum and an
//! O(E log k_max) structural sweep — none of it negotiable, since a loaded topology
//! must be provably the saved one — so `load` lands within a small factor of
//! `generate` for capped PA, the *cheapest* generator family (at N=10^5 it is ~1.4×
//! faster; `save` ~4×). The gap widens for the costlier families (UCM rejection
//! sampling, DAPA substrate discovery), and the structural win is categorical: a
//! persisted realization is reusable across processes and sweep runs without spending
//! the generation stream at all, which regeneration cannot offer.

use criterion::Criterion;
use sfo_bench::capped_pa_graph;
use sfo_engine::ShardedCsr;
use sfo_graph::CsrGraph;
use std::time::Duration;

const SHARDS: usize = 4;

fn node_sizes() -> Vec<usize> {
    match std::env::var("SFO_BENCH_SNAPSHOT_NODES") {
        Ok(list) => list
            .split(',')
            .map(|n| {
                n.trim()
                    .parse()
                    .expect("SFO_BENCH_SNAPSHOT_NODES: node counts")
            })
            .collect(),
        Err(_) => vec![10_000, 100_000],
    }
}

fn bench_snapshot_io(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("sfo-bench-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench temp dir");

    for nodes in node_sizes() {
        let csr = capped_pa_graph(nodes, 2, 40, 7).freeze();
        let path = dir.join(format!("n{nodes}.sfos"));
        let sharded_path = dir.join(format!("n{nodes}-sharded.sfos"));
        csr.save(&path).expect("bench save");
        ShardedCsr::from_csr(&csr, SHARDS)
            .save(&sharded_path)
            .expect("bench sharded save");

        let mut group = c.benchmark_group("snapshot_io");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));

        // The baseline the persistence layer replaces: regenerate the realization.
        group.bench_function(format!("n{nodes}/generate"), |b| {
            b.iter(|| capped_pa_graph(nodes, 2, 40, 7))
        });
        group.bench_function(format!("n{nodes}/save"), |b| {
            b.iter(|| csr.save(&path).expect("bench save"))
        });
        group.bench_function(format!("n{nodes}/load"), |b| {
            b.iter(|| CsrGraph::load(&path).expect("bench load"))
        });
        group.bench_function(format!("n{nodes}/load_sharded"), |b| {
            b.iter(|| ShardedCsr::load(&sharded_path).expect("bench sharded load"))
        });
        group.bench_function(format!("n{nodes}/load_mmap"), |b| {
            b.iter(|| CsrGraph::load_mmap(&path).expect("bench mmap load"))
        });
        group.bench_function(format!("n{nodes}/load_sharded_mmap"), |b| {
            b.iter(|| ShardedCsr::load_mmap(&sharded_path).expect("bench sharded mmap load"))
        });
        group.finish();

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&sharded_path).ok();
    }
    std::fs::remove_dir(&dir).ok();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_snapshot_io(&mut criterion);

    // Persist the measurements next to the workspace root so the perf trajectory
    // extends BENCH_csr.json and BENCH_shard.json. Overridable for smoke runs.
    let path = std::env::var("SFO_BENCH_SNAPSHOT_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json").to_string()
    });
    criterion
        .export_json(&path)
        .expect("writing benchmark results");
    println!("\nresults written to {path}");

    // Summarize: how much regeneration cost does one load avoid?
    let mean = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("benchmark ran")
    };
    for nodes in node_sizes() {
        let generate = mean(&format!("snapshot_io/n{nodes}/generate"));
        for row in [
            "save",
            "load",
            "load_sharded",
            "load_mmap",
            "load_sharded_mmap",
        ] {
            let cost = mean(&format!("snapshot_io/n{nodes}/{row}"));
            println!(
                "n={nodes}: generate/{row} = {:.2}x ({row} {:.2} ms)",
                generate / cost,
                cost / 1e6
            );
        }
    }
}
