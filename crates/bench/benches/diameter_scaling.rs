//! Table I support: average-shortest-path measurement cost on configuration-model
//! topologies of increasing size and varying exponent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfo_bench::bench_rng;
use sfo_core::cm::ConfigurationModel;
use sfo_graph::metrics::path_statistics_sampled;
use std::time::Duration;

fn bench_diameter_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("diameter_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (gamma, m) in [(2.2f64, 2usize), (3.0, 1), (3.0, 2)] {
        for n in [1_000usize, 4_000] {
            let graph = ConfigurationModel::new(n, gamma, m)
                .unwrap()
                .generate(&mut bench_rng(17))
                .unwrap();
            let id = format!("gamma{gamma}_m{m}");
            group.bench_with_input(BenchmarkId::new(id, n), &graph, |b, graph| {
                let mut rng = bench_rng(19);
                b.iter(|| path_statistics_sampled(graph, 32, &mut rng));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_diameter_scaling);
criterion_main!(benches);
