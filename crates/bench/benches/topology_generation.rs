//! Generation cost of the four topology-construction mechanisms, with and without a hard
//! cutoff (supports the DESIGN.md discussion of PA/CM being global but cheap and DAPA
//! paying for its locality with substrate BFS work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfo_bench::{bench_rng, BENCH_NODES};
use sfo_core::cm::ConfigurationModel;
use sfo_core::dapa::DapaOverGrn;
use sfo_core::hapa::HopAndAttempt;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::{DegreeCutoff, TopologyGenerator};
use std::time::Duration;

fn generators(cutoff: DegreeCutoff) -> Vec<(&'static str, Box<dyn TopologyGenerator>)> {
    vec![
        (
            "PA",
            Box::new(
                PreferentialAttachment::new(BENCH_NODES, 2)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
        ),
        (
            "CM",
            Box::new(
                ConfigurationModel::new(BENCH_NODES, 2.6, 2)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
        ),
        (
            "HAPA",
            Box::new(
                HopAndAttempt::new(BENCH_NODES, 2)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
        ),
        (
            "DAPA",
            Box::new(
                DapaOverGrn::new(BENCH_NODES, 2, 4)
                    .unwrap()
                    .with_cutoff(cutoff),
            ),
        ),
    ]
}

fn bench_topology_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_generation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for (cutoff_label, cutoff) in [
        ("no_kc", DegreeCutoff::Unbounded),
        ("kc10", DegreeCutoff::hard(10)),
    ] {
        for (name, generator) in generators(cutoff) {
            group.bench_with_input(
                BenchmarkId::new(name, cutoff_label),
                &generator,
                |b, generator| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        generator
                            .generate(&mut bench_rng(seed))
                            .expect("generation succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_topology_generation);
criterion_main!(benches);
