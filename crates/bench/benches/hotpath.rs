//! Hot-path scratch arenas: per-query allocation (`SearchAlgorithm::search`, which
//! builds a fresh `vec![false; N]` visited set and frontier per call) versus arena
//! reuse (`search_with_scratch` over one dirty [`SearchScratch`], the epoch-stamped
//! bitset whose reset is O(1)) — the mechanism every `sfo-engine` pool worker rides.
//!
//! One measurement unit is a run of `QUERIES` searches from rotating sources, because
//! amortization is the point: the arena pays its allocation once across the run while
//! the fresh path pays O(node_count) zeroing per query. Short-TTL searches on large
//! graphs are where the paper's sweeps live (thousands of independent queries per
//! frozen realization), so that is the regime the rows pin down. Outcomes are
//! byte-identical between the two paths by the scratch contract
//! (`tests/scratch_equivalence.rs`); the rows isolate pure allocation cost.
//!
//! Results are written to `BENCH_hotpath.json` at the workspace root (tracked in git,
//! regenerate with `cargo bench --bench hotpath`). Environment knobs for smoke runs:
//! `SFO_BENCH_HOTPATH_NODES` (comma-separated node counts, default `10000,100000`)
//! and `SFO_BENCH_HOTPATH_OUT` (output path).

use criterion::Criterion;
use sfo_bench::{bench_rng, capped_pa_graph};
use sfo_graph::{CsrGraph, NodeId};
use sfo_search::flooding::Flooding;
use sfo_search::random_walk::RandomWalk;
use sfo_search::{SearchAlgorithm, SearchScratch};
use std::time::Duration;

/// Searches per measured run.
const QUERIES: usize = 32;
const FLOOD_TTL: u32 = 3;
const WALK_HOPS: u32 = 256;

fn node_sizes() -> Vec<usize> {
    match std::env::var("SFO_BENCH_HOTPATH_NODES") {
        Ok(list) => list
            .split(',')
            .map(|n| {
                n.trim()
                    .parse()
                    .expect("SFO_BENCH_HOTPATH_NODES: node counts")
            })
            .collect(),
        Err(_) => vec![10_000, 100_000],
    }
}

/// Runs `QUERIES` searches with a fresh allocation per query.
fn run_fresh<A: SearchAlgorithm<CsrGraph>>(graph: &CsrGraph, algorithm: &A, ttl: u32) -> usize {
    let mut rng = bench_rng(17);
    (0..QUERIES)
        .map(|i| {
            let source = NodeId::new((i * 97) % graph.node_count());
            algorithm.search(graph, source, ttl, &mut rng).hits
        })
        .sum()
}

/// The identical run through one reused arena.
fn run_scratch<A: SearchAlgorithm<CsrGraph>>(
    graph: &CsrGraph,
    algorithm: &A,
    ttl: u32,
    scratch: &mut SearchScratch,
) -> usize {
    let mut rng = bench_rng(17);
    (0..QUERIES)
        .map(|i| {
            let source = NodeId::new((i * 97) % graph.node_count());
            algorithm
                .search_with_scratch(graph, source, ttl, &mut rng, scratch)
                .hits
        })
        .sum()
}

fn bench_hotpath(c: &mut Criterion) {
    for nodes in node_sizes() {
        let csr = capped_pa_graph(nodes, 2, 40, 7).freeze();
        let flooding = Flooding::new();
        let walk = RandomWalk::new();

        let mut group = c.benchmark_group("hotpath");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));

        // The arena is deliberately dirty before the first timed iteration, like a
        // pool worker's mid-shift arena; the fresh rows get one untimed warm pass so
        // both sides start with the graph's pages faulted in.
        let mut arena = SearchScratch::new();
        let check = run_fresh(&csr, &flooding, FLOOD_TTL);
        assert_eq!(
            run_scratch(&csr, &flooding, FLOOD_TTL, &mut arena),
            check,
            "scratch contract broken at n{nodes}"
        );

        group.bench_function(format!("n{nodes}/flooding/fresh"), |b| {
            b.iter(|| run_fresh(&csr, &flooding, FLOOD_TTL))
        });
        group.bench_function(format!("n{nodes}/flooding/scratch"), |b| {
            b.iter(|| run_scratch(&csr, &flooding, FLOOD_TTL, &mut arena))
        });
        group.bench_function(format!("n{nodes}/random_walk/fresh"), |b| {
            b.iter(|| run_fresh(&csr, &walk, WALK_HOPS))
        });
        group.bench_function(format!("n{nodes}/random_walk/scratch"), |b| {
            b.iter(|| run_scratch(&csr, &walk, WALK_HOPS, &mut arena))
        });
        group.finish();
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_hotpath(&mut criterion);

    // Persist the measurements next to the workspace root so the perf trajectory
    // extends BENCH_csr.json and BENCH_shard.json. Overridable for smoke runs.
    let path = std::env::var("SFO_BENCH_HOTPATH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
    });
    criterion
        .export_json(&path)
        .expect("writing benchmark results");
    println!("\nresults written to {path}");

    // Summarize: what does arena reuse buy per workload?
    let mean = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("benchmark ran")
    };
    for nodes in node_sizes() {
        for workload in ["flooding", "random_walk"] {
            let fresh = mean(&format!("hotpath/n{nodes}/{workload}/fresh"));
            let scratch = mean(&format!("hotpath/n{nodes}/{workload}/scratch"));
            println!(
                "n={nodes} {workload}: fresh/scratch speedup = {:.2}x \
                 ({:.3} ms -> {:.3} ms per {QUERIES}-query run)",
                fresh / scratch,
                fresh / 1e6,
                scratch / 1e6
            );
        }
    }
}
