//! Ablation benchmarks for the design choices called out in DESIGN.md §4:
//!
//! 1. hard-cutoff enforcement inside PA: efficient stub-list sampling versus the paper's
//!    literal rejection sampling;
//! 2. CM discrepancy handling: how much work the post-wiring simplification step does as
//!    the cutoff varies;
//! 3. DAPA horizon recomputation: the substrate-BFS cost as `τ_sub` grows;
//! 4. RW normalization: message-normalized walks versus raw fixed-budget walks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfo_bench::{bench_rng, capped_pa_graph};
use sfo_core::cm::ConfigurationModel;
use sfo_core::dapa::DiscoverAndAttempt;
use sfo_core::pa::{PaVariant, PreferentialAttachment};
use sfo_core::DegreeCutoff;
use sfo_graph::generators::GeometricRandomNetwork;
use sfo_search::experiment::{rw_normalized_to_nf, ttl_sweep};
use sfo_search::random_walk::RandomWalk;
use std::time::Duration;

fn bench_pa_cutoff_enforcement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cutoff_enforcement");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, variant) in [
        ("stub_list", PaVariant::StubList),
        ("literal_rejection", PaVariant::LiteralRejection),
    ] {
        group.bench_function(label, |b| {
            let generator = PreferentialAttachment::new(800, 2)
                .unwrap()
                .with_cutoff(DegreeCutoff::hard(20))
                .with_variant(variant);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                generator.generate(&mut bench_rng(seed)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_cm_rewire(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cm_rewire");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, cutoff) in [
        ("kc_none", DegreeCutoff::Unbounded),
        ("kc_40", DegreeCutoff::hard(40)),
        ("kc_10", DegreeCutoff::hard(10)),
    ] {
        group.bench_function(label, |b| {
            let generator = ConfigurationModel::new(3_000, 2.2, 1)
                .unwrap()
                .with_cutoff(cutoff);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                generator
                    .generate_with_report(&mut bench_rng(seed))
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_dapa_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dapa_bfs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let (substrate, _) = GeometricRandomNetwork::with_average_degree(2_000, 10.0)
        .unwrap()
        .generate(&mut bench_rng(5))
        .unwrap();
    for tau_sub in [2u32, 6, 20] {
        group.bench_with_input(
            BenchmarkId::new("tau_sub", tau_sub),
            &tau_sub,
            |b, &tau_sub| {
                let generator = DiscoverAndAttempt::new(1_000, 2, tau_sub)
                    .unwrap()
                    .with_cutoff(DegreeCutoff::hard(40));
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    generator
                        .generate_on(&substrate, &mut bench_rng(seed))
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_rw_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_rw_normalization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let graph = capped_pa_graph(3_000, 2, 40, 9);
    group.bench_function("normalized_to_nf", |b| {
        let mut rng = bench_rng(1);
        b.iter(|| rw_normalized_to_nf(&graph, 2, &[6], 20, &mut rng));
    });
    group.bench_function("raw_budget", |b| {
        let mut rng = bench_rng(1);
        b.iter(|| ttl_sweep(&graph, &RandomWalk::new(), &[126], 20, &mut rng));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pa_cutoff_enforcement,
    bench_cm_rewire,
    bench_dapa_bfs,
    bench_rw_normalization
);
criterion_main!(benches);
