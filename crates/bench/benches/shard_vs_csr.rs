//! Engine comparison: the serial per-realization query path (the pre-engine baseline —
//! one thread walking an unsharded `CsrGraph`) versus `sfo-engine` query batches fanned
//! over a sharded store, on paper-scale hard-cutoff PA overlays.
//!
//! One measurement unit is a whole batch — `FLOOD_BATCH` flooding searches or
//! `WALK_BATCH` random walks with per-job RNG streams — because the batch is what the
//! engine schedules and what an interactive single-realization workload submits. The
//! `serial/…` rows run the batch with `run_queries_serial` on the unsharded snapshot;
//! the `shards{S}/…` rows run the identical batch (byte-identical outcomes, enforced by
//! `tests/shard_equivalence.rs`) through a persistent [`WorkerPool`] with `S` workers
//! over a `ShardedCsr` with `S` shards, so the row index is the unit of scaling the
//! sharded deployment story cares about.
//!
//! Results are written to `BENCH_shard.json` at the workspace root (tracked in git,
//! regenerate with `cargo bench --bench shard_vs_csr`). Environment knobs for smoke
//! runs: `SFO_BENCH_SHARD_NODES` (comma-separated node counts, default
//! `10000,100000`) and `SFO_BENCH_SHARD_OUT` (output path).
//!
//! Reading the numbers: the engine's job streams are per-job, so the batched rows do
//! the *identical* work to the serial row — the measurement isolates scheduling cost
//! and parallel speedup. On a host with W cores, expect the `shardsS` rows to approach
//! `min(S, W)`× the serial throughput; on a single-core container (like the CI box that
//! produced the checked-in `BENCH_shard.json`) the best possible result is parity, and
//! the rows document that the scheduler's overhead stays within measurement noise.

use criterion::Criterion;
use sfo_bench::capped_pa_graph;
use sfo_engine::{
    run_queries, run_queries_serial, AlgorithmTable, EngineConfig, QueryBatch, ShardedCsr,
    WorkerPool,
};
use sfo_graph::{CsrGraph, NodeId};
use sfo_search::flooding::Flooding;
use sfo_search::random_walk::RandomWalk;
use std::sync::Arc;
use std::time::Duration;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Flooding searches per measured batch.
const FLOOD_BATCH: usize = 32;
/// Random walks per measured batch.
const WALK_BATCH: usize = 256;
const FLOOD_TTL: u32 = 4;
const WALK_HOPS: u32 = 512;

fn node_sizes() -> Vec<usize> {
    match std::env::var("SFO_BENCH_SHARD_NODES") {
        Ok(list) => list
            .split(',')
            .map(|n| {
                n.trim()
                    .parse()
                    .expect("SFO_BENCH_SHARD_NODES: node counts")
            })
            .collect(),
        Err(_) => vec![10_000, 100_000],
    }
}

fn flood_batch(nodes: usize) -> QueryBatch {
    let mut batch = QueryBatch::new();
    for i in 0..FLOOD_BATCH {
        batch.push(NodeId::new((i * 97) % nodes), 0, FLOOD_TTL);
    }
    batch
}

fn walk_batch(nodes: usize) -> QueryBatch {
    let mut batch = QueryBatch::new();
    for i in 0..WALK_BATCH {
        batch.push(NodeId::new((i * 101) % nodes), 0, WALK_HOPS);
    }
    batch
}

fn bench_engine(c: &mut Criterion) {
    for nodes in node_sizes() {
        let csr = capped_pa_graph(nodes, 2, 40, 7).freeze();
        let floods = flood_batch(nodes);
        let walks = walk_batch(nodes);

        // Short rows: the whole group fits in a narrow time window, so slow drift in
        // host load (CPU steal on shared runners) cannot masquerade as a row-to-row
        // difference.
        let mut group = c.benchmark_group("shard_vs_csr");
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
            .warm_up_time(Duration::from_millis(300));

        // Baseline: the pre-engine path — the whole batch on one thread, unsharded.
        let serial_flood_table: AlgorithmTable<CsrGraph> = vec![Box::new(Flooding::new())];
        let serial_walk_table: AlgorithmTable<CsrGraph> = vec![Box::new(RandomWalk::new())];

        // Touch every page of the freshly built graph before the first timed row, so
        // first-touch page faults don't masquerade as a serial-path penalty.
        let _ = run_queries_serial(&csr, &serial_flood_table, &floods, 11);
        let _ = run_queries_serial(&csr, &serial_walk_table, &walks, 13);
        group.bench_function(format!("n{nodes}/flooding/serial"), |b| {
            b.iter(|| run_queries_serial(&csr, &serial_flood_table, &floods, 11))
        });
        group.bench_function(format!("n{nodes}/random_walk/serial"), |b| {
            b.iter(|| run_queries_serial(&csr, &serial_walk_table, &walks, 13))
        });

        // The engine: S workers over an S-shard store, same batches, same outcomes.
        for shards in SHARD_COUNTS {
            let store = Arc::new(ShardedCsr::from_csr(&csr, shards));
            let pool = WorkerPool::new(EngineConfig::with_workers(shards));
            let flood_table: Arc<AlgorithmTable<ShardedCsr>> =
                Arc::new(vec![Box::new(Flooding::new())]);
            let walk_table: Arc<AlgorithmTable<ShardedCsr>> =
                Arc::new(vec![Box::new(RandomWalk::new())]);
            group.bench_function(format!("n{nodes}/flooding/shards{shards}"), |b| {
                b.iter(|| run_queries(&pool, &store, &flood_table, &floods, 11))
            });
            group.bench_function(format!("n{nodes}/random_walk/shards{shards}"), |b| {
                b.iter(|| run_queries(&pool, &store, &walk_table, &walks, 13))
            });
        }
        group.finish();
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_engine(&mut criterion);

    // Persist the measurements next to the workspace root so the perf trajectory
    // extends BENCH_csr.json. Overridable for scratch/smoke runs.
    let path = std::env::var("SFO_BENCH_SHARD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").to_string()
    });
    criterion
        .export_json(&path)
        .expect("writing benchmark results");
    println!("\nresults written to {path}");

    // Summarize batched throughput against the serial baseline.
    let mean = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("benchmark ran")
    };
    for nodes in node_sizes() {
        for workload in ["flooding", "random_walk"] {
            let serial = mean(&format!("shard_vs_csr/n{nodes}/{workload}/serial"));
            for shards in SHARD_COUNTS {
                let batched = mean(&format!("shard_vs_csr/n{nodes}/{workload}/shards{shards}"));
                println!(
                    "n={nodes} {workload}: serial/batched({shards} shards) speedup = {:.2}x",
                    serial / batched
                );
            }
        }
    }
}
