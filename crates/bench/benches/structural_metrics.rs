//! Cost of the structural metrics behind the hub-load and topology-characterization
//! experiments: k-core decomposition, sampled betweenness, degree correlations, rich-club
//! coefficients, and the exact clustering coefficient.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_bench::{bench_rng, capped_pa_graph, BENCH_NODES};
use sfo_graph::{centrality, correlations, kcore, metrics};
use std::time::Duration;

fn bench_structural_metrics(c: &mut Criterion) {
    let graph = capped_pa_graph(BENCH_NODES, 2, 40, 3);
    let mut group = c.benchmark_group("structural_metrics");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    group.bench_function("core_decomposition", |b| {
        b.iter(|| kcore::core_decomposition(&graph))
    });
    group.bench_function("betweenness_sampled_64", |b| {
        b.iter(|| centrality::betweenness_centrality_sampled(&graph, 64, &mut bench_rng(1)))
    });
    group.bench_function("closeness_sampled_64", |b| {
        b.iter(|| centrality::closeness_centrality_sampled(&graph, 64, &mut bench_rng(1)))
    });
    group.bench_function("knn_by_degree", |b| {
        b.iter(|| correlations::knn_by_degree(&graph))
    });
    group.bench_function("rich_club_coefficients", |b| {
        b.iter(|| correlations::rich_club_coefficients(&graph))
    });
    group.bench_function("clustering_coefficient", |b| {
        b.iter(|| metrics::average_clustering_coefficient(&graph))
    });
    group.finish();
}

criterion_group!(benches, bench_structural_metrics);
criterion_main!(benches);
