//! End-to-end regeneration of every registered experiment (each paper figure and table) at
//! bench scale, one Criterion benchmark per experiment id.
//!
//! The shapes reported by the paper are preserved at this scale; run the `reproduce` binary
//! with `--scale paper` for full-size regeneration.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_bench::micro_scale;
use sfo_experiments::all_experiments;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let scale = micro_scale();
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for spec in all_experiments() {
        group.bench_function(spec.id, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                (spec.run)(&scale, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
