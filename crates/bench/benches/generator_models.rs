//! Generation cost of the extended generator family (paper §III-C variants).
//!
//! Complements `topology_generation.rs` (which covers the paper's four core mechanisms) with
//! the modified preferential-attachment models: nonlinear PA, the fitness model, the
//! local-events model, the initial-attractiveness model, and the uncorrelated configuration
//! model — each with the hard cutoff that the rest of the workspace defaults to.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_bench::{bench_rng, BENCH_NODES};
use sfo_core::attractiveness::InitialAttractiveness;
use sfo_core::fitness::{FitnessDistribution, FitnessModel};
use sfo_core::local_events::LocalEventsModel;
use sfo_core::nonlinear::NonlinearPreferentialAttachment;
use sfo_core::ucm::UncorrelatedConfigurationModel;
use sfo_core::{DegreeCutoff, TopologyGenerator};
use std::time::Duration;

fn bench_generator(c: &mut Criterion, label: &str, generator: &dyn TopologyGenerator) {
    let mut group = c.benchmark_group("generator_models");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function(label, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            generator
                .generate(&mut bench_rng(seed))
                .expect("bench generation succeeds")
        });
    });
    group.finish();
}

fn bench_generator_models(c: &mut Criterion) {
    let cutoff = DegreeCutoff::hard(20);
    bench_generator(
        c,
        "nlpa_alpha_0.5",
        &NonlinearPreferentialAttachment::new(BENCH_NODES, 2, 0.5)
            .unwrap()
            .with_cutoff(cutoff),
    );
    bench_generator(
        c,
        "nlpa_alpha_1.5",
        &NonlinearPreferentialAttachment::new(BENCH_NODES, 2, 1.5)
            .unwrap()
            .with_cutoff(cutoff),
    );
    bench_generator(
        c,
        "fitness_exponential",
        &FitnessModel::new(BENCH_NODES, 2)
            .unwrap()
            .with_distribution(FitnessDistribution::Exponential { rate: 1.0 })
            .with_cutoff(cutoff),
    );
    bench_generator(
        c,
        "local_events_p02_q02",
        &LocalEventsModel::new(BENCH_NODES, 2, 0.2, 0.2)
            .unwrap()
            .with_cutoff(cutoff),
    );
    bench_generator(
        c,
        "dms_gamma_2.5",
        &InitialAttractiveness::with_target_gamma(BENCH_NODES, 2, 2.5)
            .unwrap()
            .with_cutoff(cutoff),
    );
    bench_generator(
        c,
        "ucm_gamma_2.6",
        &UncorrelatedConfigurationModel::new(BENCH_NODES, 2.6, 2)
            .unwrap()
            .with_cutoff(cutoff),
    );
}

criterion_group!(benches, bench_generator_models);
criterion_main!(benches);
