//! Cost of the live-overlay churn simulator (the paper's future-work extension): join
//! strategies compared, and a full simulation run at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_bench::bench_rng;
use sfo_core::DegreeCutoff;
use sfo_sim::overlay::{JoinStrategy, OverlayConfig, OverlayNetwork};
use sfo_sim::simulation::{Simulation, SimulationConfig};
use std::time::Duration;

fn bench_join_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_join_strategies");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let strategies = [
        ("uniform", JoinStrategy::UniformRandom),
        ("preferential", JoinStrategy::DegreePreferential),
        (
            "hop_and_attempt",
            JoinStrategy::HopAndAttempt {
                max_hops_per_link: 200,
            },
        ),
    ];
    for (label, strategy) in strategies {
        group.bench_function(label, |b| {
            let config = OverlayConfig {
                stubs: 3,
                cutoff: DegreeCutoff::hard(20),
                join_strategy: strategy,
                repair_on_leave: true,
            };
            b.iter(|| {
                let mut overlay = OverlayNetwork::new(config).unwrap();
                let mut rng = bench_rng(3);
                for _ in 0..1_000 {
                    overlay.join(&mut rng);
                }
                overlay.peer_count()
            });
        });
    }
    group.finish();
}

fn bench_full_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_simulation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("small_run", |b| {
        let simulation = Simulation::new(SimulationConfig::small()).unwrap();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulation.run(&mut bench_rng(seed)).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_join_strategies, bench_full_simulation);
criterion_main!(benches);
