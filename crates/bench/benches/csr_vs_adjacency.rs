//! Backend comparison: identical searches on the mutable adjacency-list `Graph` versus
//! its frozen `CsrGraph` snapshot, on paper-scale (N = 10^4) hard-cutoff PA overlays.
//!
//! This is the measurement behind the `GraphView` refactor: the searches are generic
//! over the backend and consume identical RNG streams on both, so any timing difference
//! is purely the memory layout — one flat `targets` array versus one heap allocation per
//! node. Two workload shapes are measured:
//!
//! * `single/…` — repeated searches over one warm realization. At N = 10^4 a single
//!   topology largely fits in cache on either backend, so this bounds the layout effect
//!   from below.
//! * `sweep/…` — searches round-robined across eight realizations, the shape of the
//!   figure harness (many realizations per data point). The adjacency backend's
//!   aggregate working set (per-node `Vec` headers plus scattered buffers) no longer
//!   fits, while the CSR snapshots stay compact — this is where build-once/query-many
//!   pays.
//!
//! Results are written to `BENCH_csr.json` at the workspace root (tracked in git,
//! regenerate with `cargo bench --bench csr_vs_adjacency`).

use criterion::Criterion;
use sfo_bench::{bench_rng, capped_pa_graph};
use sfo_graph::{CsrGraph, Graph, NodeId};
use sfo_search::flooding::Flooding;
use sfo_search::random_walk::RandomWalk;
use sfo_search::SearchAlgorithm;
use std::time::Duration;

const NODES: usize = 10_000;
const REALIZATIONS: usize = 8;

fn bench_backends(c: &mut Criterion) {
    let graphs: Vec<Graph> = (0..REALIZATIONS)
        .map(|r| capped_pa_graph(NODES, 2, 40, r as u64))
        .collect();
    let frozen: Vec<CsrGraph> = graphs.iter().map(Graph::freeze).collect();
    for (g, f) in graphs.iter().zip(&frozen) {
        assert_eq!(f.edge_count(), g.edge_count());
    }

    let mut group = c.benchmark_group("csr_vs_adjacency");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    // Flooding at a TTL deep enough to sweep most of the overlay: the cache-linearity
    // stress test (every adjacency list is walked, most of them more than once).
    let flooding = Flooding::new();
    for ttl in [4u32, 8] {
        group.bench_function(format!("single/flooding/adjacency/ttl{ttl}"), |b| {
            let mut rng = bench_rng(11);
            let mut source = 0usize;
            b.iter(|| {
                source = (source + 97) % NODES;
                flooding.search(&graphs[0], NodeId::new(source), ttl, &mut rng)
            });
        });
        group.bench_function(format!("single/flooding/csr/ttl{ttl}"), |b| {
            let mut rng = bench_rng(11);
            let mut source = 0usize;
            b.iter(|| {
                source = (source + 97) % NODES;
                flooding.search(&frozen[0], NodeId::new(source), ttl, &mut rng)
            });
        });
        group.bench_function(format!("sweep/flooding/adjacency/ttl{ttl}"), |b| {
            let mut rng = bench_rng(11);
            let mut search = 0usize;
            b.iter(|| {
                search += 1;
                let source = NodeId::new((search * 97) % NODES);
                flooding.search(&graphs[search % REALIZATIONS], source, ttl, &mut rng)
            });
        });
        group.bench_function(format!("sweep/flooding/csr/ttl{ttl}"), |b| {
            let mut rng = bench_rng(11);
            let mut search = 0usize;
            b.iter(|| {
                search += 1;
                let source = NodeId::new((search * 97) % NODES);
                flooding.search(&frozen[search % REALIZATIONS], source, ttl, &mut rng)
            });
        });
    }

    // Random walk: pointer-chasing workload where each hop touches one adjacency list.
    let walk = RandomWalk::new();
    let hops = 512u32;
    group.bench_function(format!("single/random_walk/adjacency/hops{hops}"), |b| {
        let mut rng = bench_rng(13);
        let mut source = 0usize;
        b.iter(|| {
            source = (source + 101) % NODES;
            walk.search(&graphs[0], NodeId::new(source), hops, &mut rng)
        });
    });
    group.bench_function(format!("single/random_walk/csr/hops{hops}"), |b| {
        let mut rng = bench_rng(13);
        let mut source = 0usize;
        b.iter(|| {
            source = (source + 101) % NODES;
            walk.search(&frozen[0], NodeId::new(source), hops, &mut rng)
        });
    });
    group.bench_function(format!("sweep/random_walk/adjacency/hops{hops}"), |b| {
        let mut rng = bench_rng(13);
        let mut search = 0usize;
        b.iter(|| {
            search += 1;
            let source = NodeId::new((search * 101) % NODES);
            walk.search(&graphs[search % REALIZATIONS], source, hops, &mut rng)
        });
    });
    group.bench_function(format!("sweep/random_walk/csr/hops{hops}"), |b| {
        let mut rng = bench_rng(13);
        let mut search = 0usize;
        b.iter(|| {
            search += 1;
            let source = NodeId::new((search * 101) % NODES);
            walk.search(&frozen[search % REALIZATIONS], source, hops, &mut rng)
        });
    });

    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_backends(&mut criterion);

    // Persist the measurements next to the workspace root so the numbers ride along
    // with the refactor they justify. Overridable for scratch runs.
    let path = std::env::var("SFO_BENCH_CSR_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_csr.json").to_string()
    });
    criterion
        .export_json(&path)
        .expect("writing benchmark results");
    println!("\nresults written to {path}");

    // Summarize the headline ratio the refactor targets.
    let mean = |id: &str| {
        criterion
            .results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.mean_ns)
            .expect("benchmark ran")
    };
    for shape in ["single", "sweep"] {
        for ttl in [4u32, 8] {
            let adj = mean(&format!(
                "csr_vs_adjacency/{shape}/flooding/adjacency/ttl{ttl}"
            ));
            let csr = mean(&format!("csr_vs_adjacency/{shape}/flooding/csr/ttl{ttl}"));
            println!(
                "{shape} flooding ttl={ttl}: adjacency/csr speedup = {:.2}x",
                adj / csr
            );
        }
        let adj = mean(&format!(
            "csr_vs_adjacency/{shape}/random_walk/adjacency/hops512"
        ));
        let csr = mean(&format!("csr_vs_adjacency/{shape}/random_walk/csr/hops512"));
        println!(
            "{shape} random walk 512 hops: adjacency/csr speedup = {:.2}x",
            adj / csr
        );
    }
}
