//! Cost of the degree-distribution analysis pipeline behind Figs. 1-4: histogramming,
//! logarithmic binning, and exponent estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use sfo_analysis::histogram::{ccdf, log_binned_distribution};
use sfo_analysis::powerlaw_fit::{fit_exponent_from_counts, fit_exponent_mle};
use sfo_bench::capped_pa_graph;
use sfo_graph::metrics::degree_histogram;
use std::time::Duration;

fn bench_degree_analysis(c: &mut Criterion) {
    let graph = capped_pa_graph(10_000, 2, 40, 7);
    let degrees = graph.degrees();
    let histogram = degree_histogram(&graph);

    let mut group = c.benchmark_group("degree_distributions");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));

    group.bench_function("degree_histogram", |b| b.iter(|| degree_histogram(&graph)));
    group.bench_function("log_binned_distribution", |b| {
        b.iter(|| log_binned_distribution(&degrees, 8))
    });
    group.bench_function("ccdf", |b| b.iter(|| ccdf(&degrees)));
    group.bench_function("fit_exponent_least_squares", |b| {
        b.iter(|| fit_exponent_from_counts(&histogram.counts, 2, 39))
    });
    group.bench_function("fit_exponent_mle", |b| {
        b.iter(|| fit_exponent_mle(&degrees, 2))
    });
    group.finish();
}

criterion_group!(benches, bench_degree_analysis);
criterion_main!(benches);
