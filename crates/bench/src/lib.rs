//! Shared fixtures for the Criterion benchmarks in this crate.
//!
//! Benchmarks regenerate the paper's tables and figures at *bench scale*: sizes are reduced
//! so the whole suite finishes in minutes while preserving the relative cost of the
//! mechanisms being compared. The `reproduce` binary of `sfo-experiments` is the tool for
//! full-scale regeneration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use sfo_core::pa::PreferentialAttachment;
use sfo_core::DegreeCutoff;
use sfo_experiments::Scale;
use sfo_graph::Graph;

/// Node count used for single-topology benchmarks.
pub const BENCH_NODES: usize = 2_000;

/// Scale used when benchmarking the figure runners end to end.
pub fn micro_scale() -> Scale {
    Scale {
        degree_nodes: 500,
        search_nodes: 400,
        realizations: 1,
        searches_per_point: 10,
    }
}

/// A deterministic RNG for benchmarks.
pub fn bench_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A capped PA overlay reused by the search benchmarks.
pub fn capped_pa_graph(nodes: usize, m: usize, k_c: usize, seed: u64) -> Graph {
    PreferentialAttachment::new(nodes, m)
        .expect("bench parameters are valid")
        .with_cutoff(DegreeCutoff::hard(k_c))
        .generate(&mut bench_rng(seed))
        .expect("bench generation succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let graph = capped_pa_graph(300, 2, 20, 1);
        assert_eq!(graph.node_count(), 300);
        assert!(graph.max_degree().unwrap() <= 20);
        assert!(micro_scale().degree_nodes <= 1_000);
    }
}
