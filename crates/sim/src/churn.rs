//! Peer session-time models and churn-schedule generation.
//!
//! The end-to-end simulation drives joins, leaves, and crashes with memoryless
//! (exponential) interarrival times. Measured P2P systems are harsher: session lengths are
//! heavy-tailed, so a small core of long-lived peers coexists with a large population that
//! stays only minutes. This module provides the two standard session-length models —
//! exponential and (bounded) Pareto — and a generator that converts a session model plus a
//! target arrival rate into an explicit churn trace (a time-ordered list of join and
//! departure events) that can be replayed against an [`crate::overlay::OverlayNetwork`].
//!
//! Replaying an explicit trace, rather than drawing event times on the fly, makes
//! experiments comparable across overlay configurations: the same peers arrive and depart
//! at the same ticks no matter how the overlay wires them.

use crate::events::Tick;
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of a peer's session length (ticks between its join and its departure).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SessionModel {
    /// Memoryless sessions with the given mean length.
    Exponential {
        /// Mean session length in ticks (must be positive).
        mean: f64,
    },
    /// Bounded Pareto sessions: heavy-tailed, with a hard minimum.
    Pareto {
        /// Shape parameter `α` (must be positive; smaller means heavier tail).
        shape: f64,
        /// Minimum session length in ticks (must be positive).
        minimum: f64,
    },
    /// Every session lasts exactly this long (useful for deterministic tests).
    Fixed {
        /// Session length in ticks (must be positive).
        length: f64,
    },
}

impl SessionModel {
    /// Checks that the distribution parameters are positive and finite.
    ///
    /// [`generate_trace`] calls this automatically; it is public so declarative layers
    /// (for example `sfo-scenario`) can validate a model before sampling anything.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive or non-finite parameters.
    pub fn validate(&self) -> Result<()> {
        let ok = match *self {
            SessionModel::Exponential { mean } => mean.is_finite() && mean > 0.0,
            SessionModel::Pareto { shape, minimum } => {
                shape.is_finite() && shape > 0.0 && minimum.is_finite() && minimum > 0.0
            }
            SessionModel::Fixed { length } => length.is_finite() && length > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(SimError::InvalidConfig {
                reason: "session model parameters must be positive and finite",
            })
        }
    }

    /// Samples one session length in ticks (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Tick {
        let raw = match *self {
            SessionModel::Exponential { mean } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() * mean
            }
            SessionModel::Pareto { shape, minimum } => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                minimum / u.powf(1.0 / shape)
            }
            SessionModel::Fixed { length } => length,
        };
        raw.ceil().max(1.0).min(u64::MAX as f64) as Tick
    }

    /// Returns the theoretical mean session length, or `None` when it diverges (Pareto with
    /// `shape <= 1`).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            SessionModel::Exponential { mean } => Some(mean),
            SessionModel::Pareto { shape, minimum } => {
                if shape > 1.0 {
                    Some(shape * minimum / (shape - 1.0))
                } else {
                    None
                }
            }
            SessionModel::Fixed { length } => Some(length),
        }
    }
}

/// What happens to a peer at one point of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// A new peer arrives. The `session` index identifies the arrival so the matching
    /// departure can be correlated.
    Arrive,
    /// The peer that arrived as session `index` departs gracefully.
    DepartGracefully,
    /// The peer that arrived as session `index` crashes.
    Crash,
}

/// One entry of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the event fires.
    pub time: Tick,
    /// Sequential index of the arrival this event belongs to (assigned in arrival order).
    pub session: usize,
    /// What happens.
    pub action: ChurnAction,
}

/// Configuration of a churn-trace generation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnTraceConfig {
    /// Length of the trace in ticks.
    pub duration: Tick,
    /// Expected arrivals per tick.
    pub arrival_rate: f64,
    /// Session-length distribution.
    pub sessions: SessionModel,
    /// Probability that a departure is a crash rather than a graceful leave.
    pub crash_fraction: f64,
}

impl ChurnTraceConfig {
    /// Checks the duration, arrival rate, crash fraction, and session model.
    ///
    /// [`generate_trace`] calls this automatically; it is public so declarative layers
    /// (for example `sfo-scenario`) can validate a configuration without generating a
    /// trace.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.duration == 0 {
            return Err(SimError::InvalidConfig {
                reason: "churn trace duration must be positive",
            });
        }
        if !self.arrival_rate.is_finite() || self.arrival_rate <= 0.0 {
            return Err(SimError::InvalidConfig {
                reason: "arrival rate must be positive and finite",
            });
        }
        if !(0.0..=1.0).contains(&self.crash_fraction) || self.crash_fraction.is_nan() {
            return Err(SimError::InvalidConfig {
                reason: "crash fraction must lie in [0, 1]",
            });
        }
        self.sessions.validate()
    }
}

/// A time-ordered churn trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnTrace {
    /// Events in non-decreasing time order.
    pub events: Vec<ChurnEvent>,
    /// Number of arrivals in the trace.
    pub arrivals: usize,
}

impl ChurnTrace {
    /// Number of departures (graceful or crash) that fall inside the trace duration.
    pub fn departures(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.action, ChurnAction::DepartGracefully | ChurnAction::Crash))
            .count()
    }

    /// Number of crash departures.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == ChurnAction::Crash)
            .count()
    }
}

/// Generates a churn trace: Poisson arrivals at `arrival_rate`, session lengths from the
/// session model, departures that fall past the duration are dropped (those peers simply
/// stay online to the end).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if the duration is zero, the arrival rate is not
/// positive and finite, the crash fraction is outside `[0, 1]`, or the session model is
/// invalid.
pub fn generate_trace<R: Rng + ?Sized>(
    config: &ChurnTraceConfig,
    rng: &mut R,
) -> Result<ChurnTrace> {
    config.validate()?;

    let mut events: Vec<ChurnEvent> = Vec::new();
    let mut time = 0f64;
    let mut session = 0usize;
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        time += -u.ln() / config.arrival_rate;
        let arrival_tick = time.ceil() as Tick;
        if arrival_tick > config.duration {
            break;
        }
        events.push(ChurnEvent {
            time: arrival_tick,
            session,
            action: ChurnAction::Arrive,
        });
        let length = config.sessions.sample(rng);
        let departure_tick = arrival_tick.saturating_add(length);
        if departure_tick <= config.duration {
            let action = if rng.gen::<f64>() < config.crash_fraction {
                ChurnAction::Crash
            } else {
                ChurnAction::DepartGracefully
            };
            events.push(ChurnEvent {
                time: departure_tick,
                session,
                action,
            });
        }
        session += 1;
    }
    events.sort_by_key(|e| (e.time, e.session, e.action != ChurnAction::Arrive));
    Ok(ChurnTrace {
        events,
        arrivals: session,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn config(sessions: SessionModel) -> ChurnTraceConfig {
        ChurnTraceConfig {
            duration: 1_000,
            arrival_rate: 0.5,
            sessions,
            crash_fraction: 0.2,
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut r = rng(0);
        let base = config(SessionModel::Exponential { mean: 50.0 });
        let mut bad = base;
        bad.duration = 0;
        assert!(generate_trace(&bad, &mut r).is_err());
        bad = base;
        bad.arrival_rate = 0.0;
        assert!(generate_trace(&bad, &mut r).is_err());
        bad = base;
        bad.crash_fraction = 1.5;
        assert!(generate_trace(&bad, &mut r).is_err());
        bad = base;
        bad.sessions = SessionModel::Exponential { mean: 0.0 };
        assert!(generate_trace(&bad, &mut r).is_err());
        bad = base;
        bad.sessions = SessionModel::Pareto {
            shape: -1.0,
            minimum: 5.0,
        };
        assert!(generate_trace(&bad, &mut r).is_err());
        bad = base;
        bad.sessions = SessionModel::Fixed { length: f64::NAN };
        assert!(generate_trace(&bad, &mut r).is_err());
    }

    #[test]
    fn session_samples_are_positive_and_roughly_match_the_mean() {
        let mut r = rng(1);
        for model in [
            SessionModel::Exponential { mean: 40.0 },
            SessionModel::Pareto {
                shape: 2.5,
                minimum: 10.0,
            },
            SessionModel::Fixed { length: 25.0 },
        ] {
            let samples: Vec<Tick> = (0..5_000).map(|_| model.sample(&mut r)).collect();
            assert!(samples.iter().all(|&s| s >= 1), "{model:?}");
            let empirical = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
            let theoretical = model.mean().unwrap();
            assert!(
                (empirical - theoretical).abs() / theoretical < 0.15,
                "{model:?}: empirical mean {empirical} vs theoretical {theoretical}"
            );
        }
    }

    #[test]
    fn pareto_mean_diverges_for_small_shape() {
        assert!(SessionModel::Pareto {
            shape: 0.9,
            minimum: 5.0
        }
        .mean()
        .is_none());
        assert!(SessionModel::Pareto {
            shape: 1.5,
            minimum: 5.0
        }
        .mean()
        .is_some());
    }

    #[test]
    fn pareto_sessions_are_heavier_tailed_than_exponential() {
        let mut r = rng(2);
        let exp = SessionModel::Exponential { mean: 30.0 };
        let pareto = SessionModel::Pareto {
            shape: 1.3,
            minimum: 7.0,
        }; // mean ≈ 30.3
        let exp_max = (0..5_000).map(|_| exp.sample(&mut r)).max().unwrap();
        let pareto_max = (0..5_000).map(|_| pareto.sample(&mut r)).max().unwrap();
        assert!(
            pareto_max > exp_max,
            "Pareto maximum {pareto_max} should exceed exponential maximum {exp_max}"
        );
    }

    #[test]
    fn trace_events_are_time_ordered_and_consistent() {
        let trace = generate_trace(
            &config(SessionModel::Exponential { mean: 60.0 }),
            &mut rng(3),
        )
        .unwrap();
        assert!(
            trace.arrivals > 300,
            "expected roughly duration * rate arrivals"
        );
        assert!(trace.departures() <= trace.arrivals);
        assert!(trace.crashes() <= trace.departures());
        for w in trace.events.windows(2) {
            assert!(w[0].time <= w[1].time, "events must be time-ordered");
        }
        // Every departure refers to a session that arrived earlier.
        for e in &trace.events {
            if e.action != ChurnAction::Arrive {
                let arrival = trace
                    .events
                    .iter()
                    .find(|a| a.session == e.session && a.action == ChurnAction::Arrive)
                    .expect("departure has a matching arrival");
                assert!(arrival.time <= e.time);
            }
        }
    }

    #[test]
    fn crash_fraction_controls_the_crash_share() {
        let mut base = config(SessionModel::Fixed { length: 10.0 });
        base.crash_fraction = 0.0;
        let no_crashes = generate_trace(&base, &mut rng(4)).unwrap();
        assert_eq!(no_crashes.crashes(), 0);
        base.crash_fraction = 1.0;
        let all_crashes = generate_trace(&base, &mut rng(4)).unwrap();
        assert_eq!(all_crashes.crashes(), all_crashes.departures());
        assert!(all_crashes.departures() > 0);
    }

    #[test]
    fn short_sessions_mean_more_departures_inside_the_trace() {
        let short =
            generate_trace(&config(SessionModel::Fixed { length: 5.0 }), &mut rng(5)).unwrap();
        let long =
            generate_trace(&config(SessionModel::Fixed { length: 900.0 }), &mut rng(5)).unwrap();
        assert!(short.departures() > long.departures());
    }

    #[test]
    fn traces_are_deterministic_for_a_fixed_seed() {
        let cfg = config(SessionModel::Pareto {
            shape: 2.0,
            minimum: 8.0,
        });
        let a = generate_trace(&cfg, &mut rng(42)).unwrap();
        let b = generate_trace(&cfg, &mut rng(42)).unwrap();
        assert_eq!(a, b);
    }
}
