//! Item lookups over the live overlay.
//!
//! Unlike the coverage searches of `sfo-search` (which measure how many peers a query can
//! reach), these queries look for a *replica of a specific item* and report whether it was
//! found, after how many hops, and at what message cost. Flooding and normalized flooding
//! keep propagating until their TTL expires (independent branches cannot be stopped, as the
//! paper notes for FL), whereas a random walk terminates as soon as it finds a replica.
//!
//! Queries come in two flavors: [`run_query`] walks the live overlay directly (hash-map
//! adjacency, right for one-off lookups), while [`QuerySnapshot`] freezes the overlay
//! into a CSR [`CsrGraph`] once and serves a whole batch of queries from the flat
//! snapshot — the build-once/query-many split the simulation uses between churn events.

use crate::catalog::ItemId;
use crate::overlay::{OverlayNetwork, PeerId};
use crate::{Result, SimError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfo_engine::SearchScratch;
use sfo_graph::{CsrGraph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Which lookup algorithm a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMethod {
    /// Forward to every neighbor except the previous hop (Gnutella-style flooding).
    Flooding,
    /// Forward to at most `k_min` random neighbors (normalized flooding).
    NormalizedFlooding {
        /// Fan-out bound.
        k_min: usize,
    },
    /// A single random walker that stops as soon as it finds a replica.
    RandomWalk,
}

/// One item lookup of a batch: who asks, for what, and how deep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchQuery {
    /// The peer issuing the lookup.
    pub source: PeerId,
    /// The item looked for.
    pub item: ItemId,
    /// Time-to-live of the lookup.
    pub ttl: u32,
}

/// Outcome of one item lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Whether a replica was found within the TTL.
    pub found: bool,
    /// Hop count at which the first replica was found, when found.
    pub hops_to_find: Option<u32>,
    /// Number of query messages transmitted.
    pub messages: usize,
    /// Number of distinct peers that processed the query (excluding the source).
    pub peers_probed: usize,
}

/// Runs one item lookup from `source`.
///
/// # Errors
///
/// Returns [`SimError::UnknownPeer`] if `source` is not part of the overlay and
/// [`SimError::InvalidConfig`] if a normalized flood is configured with a zero fan-out.
pub fn run_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    method: QueryMethod,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    rng: &mut R,
) -> Result<QueryOutcome> {
    if !overlay.contains(source) {
        return Err(SimError::UnknownPeer { peer: source.raw() });
    }
    match method {
        QueryMethod::Flooding => Ok(flood_query(overlay, source, item, ttl, None, rng)),
        QueryMethod::NormalizedFlooding { k_min } => {
            if k_min == 0 {
                return Err(SimError::InvalidConfig {
                    reason: "normalized flooding fan-out must be positive",
                });
            }
            Ok(flood_query(overlay, source, item, ttl, Some(k_min), rng))
        }
        QueryMethod::RandomWalk => Ok(walk_query(overlay, source, item, ttl, rng)),
    }
}

/// Flooding (optionally fan-out-limited) lookup.
fn flood_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    fan_out: Option<usize>,
    rng: &mut R,
) -> QueryOutcome {
    // The source checks its own store first; that costs no messages.
    if overlay.holds_item(source, item) {
        return QueryOutcome {
            found: true,
            hops_to_find: Some(0),
            messages: 0,
            peers_probed: 0,
        };
    }
    let mut outcome = QueryOutcome::default();
    let mut visited: HashSet<PeerId> = HashSet::from([source]);
    let mut queue: VecDeque<(PeerId, Option<PeerId>, u32)> = VecDeque::new();
    queue.push_back((source, None, 0));
    let mut scratch: Vec<PeerId> = Vec::new();

    while let Some((peer, from, depth)) = queue.pop_front() {
        if depth >= ttl {
            continue;
        }
        let neighbors = overlay.neighbors(peer).expect("queued peers are alive");
        scratch.clear();
        scratch.extend(neighbors.iter().copied().filter(|&n| Some(n) != from));
        let targets: &[PeerId] = match fan_out {
            Some(k) if scratch.len() > k => scratch.partial_shuffle(rng, k).0,
            _ => &scratch,
        };
        for &next in targets {
            outcome.messages += 1;
            if visited.insert(next) {
                outcome.peers_probed += 1;
                if overlay.holds_item(next, item) && !outcome.found {
                    outcome.found = true;
                    outcome.hops_to_find = Some(depth + 1);
                }
                queue.push_back((next, Some(peer), depth + 1));
            }
        }
    }
    outcome
}

/// Random-walk lookup that terminates on the first replica found.
fn walk_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    rng: &mut R,
) -> QueryOutcome {
    if overlay.holds_item(source, item) {
        return QueryOutcome {
            found: true,
            hops_to_find: Some(0),
            messages: 0,
            peers_probed: 0,
        };
    }
    let mut outcome = QueryOutcome::default();
    let mut visited: HashSet<PeerId> = HashSet::from([source]);
    let mut current = source;
    let mut previous: Option<PeerId> = None;
    for hop in 1..=ttl {
        let neighbors = overlay
            .neighbors(current)
            .expect("walk stays on live peers");
        let next = match neighbors.len() {
            0 => break,
            1 => neighbors[0],
            _ => loop {
                let candidate = neighbors[rng.gen_range(0..neighbors.len())];
                if Some(candidate) != previous {
                    break candidate;
                }
            },
        };
        outcome.messages += 1;
        if visited.insert(next) {
            outcome.peers_probed += 1;
        }
        if overlay.holds_item(next, item) {
            outcome.found = true;
            outcome.hops_to_find = Some(hop);
            break;
        }
        previous = Some(current);
        current = next;
    }
    outcome
}

/// A frozen CSR view of the overlay topology for serving query batches.
///
/// Capturing a snapshot costs one O(peers + links) pass; every query served from it then
/// traverses the flat CSR arrays instead of per-peer hash-map lookups, and tracks visited
/// peers in a dense bitmap instead of a `HashSet`. The snapshot only freezes the
/// *topology* — item placement is still read live from the overlay, so stored replicas
/// added after the capture are found correctly.
///
/// A snapshot describes the overlay *at capture time*: after any join, leave, or crash it
/// must be discarded and re-captured (the simulation does exactly that, re-freezing
/// lazily on the first query after a churn event).
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    graph: CsrGraph,
    /// Peer of each dense node id, ordered as at capture time.
    peers: Vec<PeerId>,
    index: HashMap<PeerId, NodeId>,
}

impl QuerySnapshot {
    /// Freezes the current overlay topology into a CSR snapshot.
    ///
    /// One O(peers + links) pass, straight from the live adjacency into the CSR arrays
    /// (no intermediate [`Graph`](sfo_graph::Graph)). Per-peer neighbor order is
    /// preserved, so queries served from the snapshot consume the same RNG stream as
    /// [`run_query`] on the live overlay.
    pub fn capture(overlay: &OverlayNetwork) -> Self {
        let peers: Vec<PeerId> = overlay.peers().collect();
        let index: HashMap<PeerId, NodeId> = peers
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, NodeId::new(i)))
            .collect();
        let graph = CsrGraph::from_neighbor_lists(peers.len(), |i| {
            overlay
                .neighbors(peers[i])
                .expect("rostered peers are alive")
                .iter()
                .map(|p| index[p])
        });
        QuerySnapshot {
            graph,
            peers,
            index,
        }
    }

    /// Returns the frozen topology.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Returns the peer ids by dense node id, as captured.
    pub fn peers(&self) -> &[PeerId] {
        &self.peers
    }

    /// Returns the number of peers in the snapshot.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Runs one item lookup from `source` over the frozen topology; item placement is
    /// read live from `overlay`.
    ///
    /// For a fixed RNG state this returns the same outcome as [`run_query`] up to
    /// neighbor enumeration order (the snapshot lists each peer's links in roster order
    /// rather than link-creation order).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if `source` was not part of the overlay when the
    /// snapshot was captured and [`SimError::InvalidConfig`] if a normalized flood is
    /// configured with a zero fan-out.
    pub fn run_query<R: Rng + ?Sized>(
        &self,
        overlay: &OverlayNetwork,
        method: QueryMethod,
        source: PeerId,
        item: ItemId,
        ttl: u32,
        rng: &mut R,
    ) -> Result<QueryOutcome> {
        let &source = self
            .index
            .get(&source)
            .ok_or(SimError::UnknownPeer { peer: source.raw() })?;
        let holds = |node: NodeId| overlay.holds_item(self.peers[node.index()], item);
        match method {
            QueryMethod::Flooding => Ok(self.flood(source, ttl, None, holds, rng)),
            QueryMethod::NormalizedFlooding { k_min } => {
                if k_min == 0 {
                    return Err(SimError::InvalidConfig {
                        reason: "normalized flooding fan-out must be positive",
                    });
                }
                Ok(self.flood(source, ttl, Some(k_min), holds, rng))
            }
            QueryMethod::RandomWalk => Ok(self.walk(source, ttl, holds, rng)),
        }
    }

    /// Runs a whole batch of independent lookups over the frozen topology, fanned across
    /// the `sfo-engine` work-stealing scheduler with `workers` threads (0 = all cores).
    ///
    /// Every lookup runs on its own RNG stream derived from `(seed, its batch index)`
    /// with the engine's [`sfo_engine::job_rng`] rule, so the outcome vector is
    /// deterministic and *independent of the worker count* — unlike a serial loop over
    /// one shared RNG, which is why this entry point takes a seed rather than an RNG.
    /// Item placement is read live from `overlay`, exactly like [`QuerySnapshot::run_query`];
    /// batches of fewer than [`QuerySnapshot::PARALLEL_BATCH_MIN`] lookups run inline,
    /// where thread fan-out would cost more than it saves.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if any source was not part of the overlay when
    /// the snapshot was captured and [`SimError::InvalidConfig`] for a zero NF fan-out;
    /// both are checked before any lookup runs.
    pub fn run_query_batch(
        &self,
        overlay: &OverlayNetwork,
        method: QueryMethod,
        queries: &[BatchQuery],
        seed: u64,
        workers: usize,
    ) -> Result<Vec<QueryOutcome>> {
        if let QueryMethod::NormalizedFlooding { k_min: 0 } = method {
            return Err(SimError::InvalidConfig {
                reason: "normalized flooding fan-out must be positive",
            });
        }
        let sources: Vec<NodeId> = queries
            .iter()
            .map(|q| {
                self.index
                    .get(&q.source)
                    .copied()
                    .ok_or(SimError::UnknownPeer {
                        peer: q.source.raw(),
                    })
            })
            .collect::<Result<_>>()?;
        let workers = if queries.len() < Self::PARALLEL_BATCH_MIN {
            1
        } else {
            workers
        };
        Ok(sfo_engine::run_batch_scoped_with_scratch(
            workers,
            queries.len(),
            seed,
            |i, rng, scratch| {
                let query = &queries[i];
                let holds = |node: NodeId| overlay.holds_item(self.peers[node.index()], query.item);
                match method {
                    QueryMethod::Flooding => {
                        self.flood_with_scratch(sources[i], query.ttl, None, holds, rng, scratch)
                    }
                    QueryMethod::NormalizedFlooding { k_min } => self.flood_with_scratch(
                        sources[i],
                        query.ttl,
                        Some(k_min),
                        holds,
                        rng,
                        scratch,
                    ),
                    QueryMethod::RandomWalk => {
                        self.walk_with_scratch(sources[i], query.ttl, holds, rng, scratch)
                    }
                }
            },
        ))
    }

    /// Below this batch size, [`QuerySnapshot::run_query_batch`] runs inline: spawning
    /// scoped worker threads costs more than a handful of lookups.
    pub const PARALLEL_BATCH_MIN: usize = 16;

    fn flood<R: Rng + ?Sized>(
        &self,
        source: NodeId,
        ttl: u32,
        fan_out: Option<usize>,
        holds: impl Fn(NodeId) -> bool,
        rng: &mut R,
    ) -> QueryOutcome {
        let mut scratch = SearchScratch::for_search(&self.graph, source);
        self.flood_with_scratch(source, ttl, fan_out, holds, rng, &mut scratch)
    }

    /// The flooding lookup loop over a caller-owned arena. The arena is pure memory
    /// state — visited marks and frontier values are identical to fresh allocations,
    /// in the same order, so a dirty reused arena consumes the RNG stream identically.
    fn flood_with_scratch<R: Rng + ?Sized>(
        &self,
        source: NodeId,
        ttl: u32,
        fan_out: Option<usize>,
        holds: impl Fn(NodeId) -> bool,
        rng: &mut R,
        scratch: &mut SearchScratch,
    ) -> QueryOutcome {
        if holds(source) {
            return QueryOutcome {
                found: true,
                hops_to_find: Some(0),
                messages: 0,
                peers_probed: 0,
            };
        }
        let mut outcome = QueryOutcome::default();
        scratch.visited.reset(self.graph.node_count());
        scratch.visited.insert(source.index());
        scratch.queue.clear();
        scratch.queue.push_back((source, None, 0));

        while let Some((node, from, depth)) = scratch.queue.pop_front() {
            if depth >= ttl {
                continue;
            }
            scratch.candidates.clear();
            scratch.candidates.extend(
                self.graph
                    .neighbors(node)
                    .iter()
                    .copied()
                    .filter(|&n| Some(n) != from),
            );
            let targets: &[NodeId] = match fan_out {
                Some(k) if scratch.candidates.len() > k => {
                    scratch.candidates.partial_shuffle(rng, k).0
                }
                _ => &scratch.candidates,
            };
            for &next in targets {
                outcome.messages += 1;
                if scratch.visited.insert(next.index()) {
                    outcome.peers_probed += 1;
                    if holds(next) && !outcome.found {
                        outcome.found = true;
                        outcome.hops_to_find = Some(depth + 1);
                    }
                    scratch.queue.push_back((next, Some(node), depth + 1));
                }
            }
        }
        outcome
    }

    fn walk<R: Rng + ?Sized>(
        &self,
        source: NodeId,
        ttl: u32,
        holds: impl Fn(NodeId) -> bool,
        rng: &mut R,
    ) -> QueryOutcome {
        let mut scratch = SearchScratch::new();
        self.walk_with_scratch(source, ttl, holds, rng, &mut scratch)
    }

    /// The random-walk lookup loop over a caller-owned arena (visited set only).
    fn walk_with_scratch<R: Rng + ?Sized>(
        &self,
        source: NodeId,
        ttl: u32,
        holds: impl Fn(NodeId) -> bool,
        rng: &mut R,
        scratch: &mut SearchScratch,
    ) -> QueryOutcome {
        if holds(source) {
            return QueryOutcome {
                found: true,
                hops_to_find: Some(0),
                messages: 0,
                peers_probed: 0,
            };
        }
        let mut outcome = QueryOutcome::default();
        scratch.visited.reset(self.graph.node_count());
        scratch.visited.insert(source.index());
        let mut current = source;
        let mut previous: Option<NodeId> = None;
        for hop in 1..=ttl {
            let neighbors = self.graph.neighbors(current);
            let next = match neighbors.len() {
                0 => break,
                1 => neighbors[0],
                _ => loop {
                    let candidate = neighbors[rng.gen_range(0..neighbors.len())];
                    if Some(candidate) != previous {
                        break candidate;
                    }
                },
            };
            outcome.messages += 1;
            if scratch.visited.insert(next.index()) {
                outcome.peers_probed += 1;
            }
            if holds(next) {
                outcome.found = true;
                outcome.hops_to_find = Some(hop);
                break;
            }
            previous = Some(current);
            current = next;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::{JoinStrategy, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_core::DegreeCutoff;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn build_overlay(peers: usize, seed: u64) -> OverlayNetwork {
        let config = OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(20),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(seed);
        for _ in 0..peers {
            overlay.join(&mut r);
        }
        overlay
    }

    #[test]
    fn source_holding_the_item_costs_nothing() {
        let mut overlay = build_overlay(20, 1);
        let mut r = rng(2);
        let source = overlay.random_peer(&mut r).unwrap();
        let item = ItemId::new(1);
        overlay.store_item(source, item).unwrap();
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            let o = run_query(&overlay, method, source, item, 5, &mut r).unwrap();
            assert!(o.found);
            assert_eq!(o.hops_to_find, Some(0));
            assert_eq!(o.messages, 0);
        }
    }

    #[test]
    fn flooding_finds_a_well_replicated_item() {
        let mut overlay = build_overlay(100, 3);
        let mut r = rng(4);
        let item = ItemId::new(7);
        // Replicate on 10 random peers.
        for _ in 0..10 {
            let holder = overlay.random_peer(&mut r).unwrap();
            overlay.store_item(holder, item).unwrap();
        }
        let source = overlay.random_peer(&mut r).unwrap();
        let o = run_query(&overlay, QueryMethod::Flooding, source, item, 10, &mut r).unwrap();
        assert!(
            o.found,
            "a 10% replicated item should be found by a deep flood"
        );
        assert!(o.hops_to_find.unwrap() >= 1 || o.messages == 0);
        assert!(o.messages > 0);
    }

    #[test]
    fn missing_item_is_not_found_but_messages_are_spent() {
        let overlay = build_overlay(50, 5);
        let mut r = rng(6);
        let source = overlay.peers().next().unwrap();
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            let o = run_query(&overlay, method, source, ItemId::new(999), 6, &mut r).unwrap();
            assert!(!o.found);
            assert_eq!(o.hops_to_find, None);
            assert!(o.messages > 0);
        }
    }

    #[test]
    fn normalized_flooding_spends_fewer_messages_than_flooding() {
        let overlay = build_overlay(150, 7);
        let mut r = rng(8);
        let source = overlay.peers().next().unwrap();
        let item = ItemId::new(3); // not stored anywhere: worst case message cost
        let fl = run_query(&overlay, QueryMethod::Flooding, source, item, 5, &mut r).unwrap();
        let nf = run_query(
            &overlay,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            source,
            item,
            5,
            &mut r,
        )
        .unwrap();
        assert!(nf.messages < fl.messages);
    }

    #[test]
    fn random_walk_stops_when_it_finds_the_item() {
        let mut overlay = build_overlay(60, 9);
        let mut r = rng(10);
        let item = ItemId::new(2);
        // Store the item everywhere so the walk must find it on its first hop.
        let peers: Vec<PeerId> = overlay.peers().collect();
        for p in peers {
            overlay.store_item(p, item).unwrap();
        }
        let source = overlay.random_peer(&mut r).unwrap();
        let o = run_query(&overlay, QueryMethod::RandomWalk, source, item, 50, &mut r).unwrap();
        assert!(o.found);
        assert_eq!(o.hops_to_find, Some(0), "the source itself holds a replica");
    }

    #[test]
    fn zero_ttl_probes_nobody() {
        let overlay = build_overlay(30, 11);
        let mut r = rng(12);
        let source = overlay.peers().next().unwrap();
        let o = run_query(
            &overlay,
            QueryMethod::Flooding,
            source,
            ItemId::new(5),
            0,
            &mut r,
        )
        .unwrap();
        assert_eq!(o, QueryOutcome::default());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let overlay = build_overlay(10, 13);
        let mut r = rng(14);
        let source = overlay.peers().next().unwrap();
        let ghost = PeerId::new_for_tests(10_000);
        assert!(run_query(
            &overlay,
            QueryMethod::Flooding,
            ghost,
            ItemId::new(0),
            3,
            &mut r
        )
        .is_err());
        assert!(run_query(
            &overlay,
            QueryMethod::NormalizedFlooding { k_min: 0 },
            source,
            ItemId::new(0),
            3,
            &mut r
        )
        .is_err());
    }

    #[test]
    fn snapshot_mirrors_the_overlay_topology() {
        let overlay = build_overlay(80, 15);
        let snapshot = QuerySnapshot::capture(&overlay);
        assert_eq!(snapshot.peer_count(), overlay.peer_count());
        assert_eq!(snapshot.graph().edge_count(), overlay.edge_count());
        for (i, &peer) in snapshot.peers().iter().enumerate() {
            assert_eq!(
                snapshot.graph().degree(sfo_graph::NodeId::new(i)),
                overlay.degree(peer).unwrap()
            );
        }
    }

    #[test]
    fn snapshot_queries_match_the_live_query_exactly() {
        // The capture preserves per-peer neighbor order, so for a fixed RNG seed every
        // method — including the randomized NF fan-out pick and the walk — must return
        // the same outcome through the snapshot as through the live overlay.
        let overlay = build_overlay(60, 16);
        let snapshot = QuerySnapshot::capture(&overlay);
        let missing = ItemId::new(424_242);
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            for source in overlay.peers() {
                let mut r1 = rng(17);
                let mut r2 = rng(17);
                let live = run_query(&overlay, method, source, missing, 4, &mut r1).unwrap();
                let frozen = snapshot
                    .run_query(&overlay, method, source, missing, 4, &mut r2)
                    .unwrap();
                assert_eq!(live, frozen, "{method:?} from {source}");
            }
        }
    }

    #[test]
    fn snapshot_finds_stored_items() {
        let mut overlay = build_overlay(50, 18);
        let mut r = rng(19);
        let snapshot = QuerySnapshot::capture(&overlay);
        let item = ItemId::new(5);
        // Item placement is read live: a replica stored after the capture is still found.
        let holder = overlay.random_peer(&mut r).unwrap();
        overlay.store_item(holder, item).unwrap();
        let o = snapshot
            .run_query(&overlay, QueryMethod::Flooding, holder, item, 3, &mut r)
            .unwrap();
        assert!(o.found);
        assert_eq!(o.hops_to_find, Some(0));
    }

    #[test]
    fn snapshot_walk_and_nf_respect_budgets() {
        let overlay = build_overlay(70, 20);
        let snapshot = QuerySnapshot::capture(&overlay);
        let mut r = rng(21);
        let source = overlay.peers().next().unwrap();
        let missing = ItemId::new(31_337);
        let walk = snapshot
            .run_query(
                &overlay,
                QueryMethod::RandomWalk,
                source,
                missing,
                25,
                &mut r,
            )
            .unwrap();
        assert!(!walk.found);
        assert!(walk.messages <= 25);
        let nf = snapshot
            .run_query(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 2 },
                source,
                missing,
                5,
                &mut r,
            )
            .unwrap();
        let fl = snapshot
            .run_query(&overlay, QueryMethod::Flooding, source, missing, 5, &mut r)
            .unwrap();
        assert!(nf.messages < fl.messages);
    }

    #[test]
    fn batched_queries_are_worker_count_independent() {
        let mut overlay = build_overlay(120, 30);
        let mut r = rng(31);
        let item = ItemId::new(4);
        for _ in 0..12 {
            let holder = overlay.random_peer(&mut r).unwrap();
            overlay.store_item(holder, item).unwrap();
        }
        let snapshot = QuerySnapshot::capture(&overlay);
        let queries: Vec<BatchQuery> = overlay
            .peers()
            .take(40)
            .map(|source| BatchQuery {
                source,
                item,
                ttl: 5,
            })
            .collect();
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            let reference = snapshot
                .run_query_batch(&overlay, method, &queries, 7, 1)
                .unwrap();
            assert_eq!(reference.len(), queries.len());
            assert!(reference.iter().any(|o| o.found), "{method:?}");
            for workers in [2usize, 4, 0] {
                let got = snapshot
                    .run_query_batch(&overlay, method, &queries, 7, workers)
                    .unwrap();
                assert_eq!(got, reference, "{method:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn batched_queries_match_per_job_stream_singles() {
        // Each batched lookup must equal a single lookup run with the job's derived
        // stream — the contract that makes batching a pure scheduling change.
        let overlay = build_overlay(60, 32);
        let snapshot = QuerySnapshot::capture(&overlay);
        let queries: Vec<BatchQuery> = overlay
            .peers()
            .take(20)
            .map(|source| BatchQuery {
                source,
                item: ItemId::new(999),
                ttl: 4,
            })
            .collect();
        let method = QueryMethod::NormalizedFlooding { k_min: 2 };
        let batched = snapshot
            .run_query_batch(&overlay, method, &queries, 11, 3)
            .unwrap();
        for (i, query) in queries.iter().enumerate() {
            let mut job_rng = sfo_engine::job_rng(11, i);
            let single = snapshot
                .run_query(
                    &overlay,
                    method,
                    query.source,
                    query.item,
                    query.ttl,
                    &mut job_rng,
                )
                .unwrap();
            assert_eq!(batched[i], single, "job {i}");
        }
    }

    #[test]
    fn batch_errors_are_reported_before_any_lookup_runs() {
        let overlay = build_overlay(10, 33);
        let snapshot = QuerySnapshot::capture(&overlay);
        let mut queries: Vec<BatchQuery> = overlay
            .peers()
            .map(|source| BatchQuery {
                source,
                item: ItemId::new(0),
                ttl: 3,
            })
            .collect();
        queries.push(BatchQuery {
            source: PeerId::new_for_tests(10_000),
            item: ItemId::new(0),
            ttl: 3,
        });
        assert!(matches!(
            snapshot.run_query_batch(&overlay, QueryMethod::Flooding, &queries, 1, 2),
            Err(SimError::UnknownPeer { .. })
        ));
        queries.pop();
        assert!(matches!(
            snapshot.run_query_batch(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 0 },
                &queries,
                1,
                2
            ),
            Err(SimError::InvalidConfig { .. })
        ));
        let empty = snapshot
            .run_query_batch(&overlay, QueryMethod::Flooding, &[], 1, 2)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn snapshot_rejects_unknown_sources_and_zero_fanout() {
        let overlay = build_overlay(10, 22);
        let snapshot = QuerySnapshot::capture(&overlay);
        let mut r = rng(23);
        let ghost = PeerId::new_for_tests(10_000);
        assert!(snapshot
            .run_query(
                &overlay,
                QueryMethod::Flooding,
                ghost,
                ItemId::new(0),
                3,
                &mut r
            )
            .is_err());
        let source = overlay.peers().next().unwrap();
        assert!(snapshot
            .run_query(
                &overlay,
                QueryMethod::NormalizedFlooding { k_min: 0 },
                source,
                ItemId::new(0),
                3,
                &mut r
            )
            .is_err());
    }
}
