//! Item lookups over the live overlay.
//!
//! Unlike the coverage searches of `sfo-search` (which measure how many peers a query can
//! reach), these queries look for a *replica of a specific item* and report whether it was
//! found, after how many hops, and at what message cost. Flooding and normalized flooding
//! keep propagating until their TTL expires (independent branches cannot be stopped, as the
//! paper notes for FL), whereas a random walk terminates as soon as it finds a replica.

use crate::catalog::ItemId;
use crate::overlay::{OverlayNetwork, PeerId};
use crate::{Result, SimError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// Which lookup algorithm a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryMethod {
    /// Forward to every neighbor except the previous hop (Gnutella-style flooding).
    Flooding,
    /// Forward to at most `k_min` random neighbors (normalized flooding).
    NormalizedFlooding {
        /// Fan-out bound.
        k_min: usize,
    },
    /// A single random walker that stops as soon as it finds a replica.
    RandomWalk,
}

/// Outcome of one item lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Whether a replica was found within the TTL.
    pub found: bool,
    /// Hop count at which the first replica was found, when found.
    pub hops_to_find: Option<u32>,
    /// Number of query messages transmitted.
    pub messages: usize,
    /// Number of distinct peers that processed the query (excluding the source).
    pub peers_probed: usize,
}

/// Runs one item lookup from `source`.
///
/// # Errors
///
/// Returns [`SimError::UnknownPeer`] if `source` is not part of the overlay and
/// [`SimError::InvalidConfig`] if a normalized flood is configured with a zero fan-out.
pub fn run_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    method: QueryMethod,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    rng: &mut R,
) -> Result<QueryOutcome> {
    if !overlay.contains(source) {
        return Err(SimError::UnknownPeer { peer: source.raw() });
    }
    match method {
        QueryMethod::Flooding => Ok(flood_query(overlay, source, item, ttl, None, rng)),
        QueryMethod::NormalizedFlooding { k_min } => {
            if k_min == 0 {
                return Err(SimError::InvalidConfig { reason: "normalized flooding fan-out must be positive" });
            }
            Ok(flood_query(overlay, source, item, ttl, Some(k_min), rng))
        }
        QueryMethod::RandomWalk => Ok(walk_query(overlay, source, item, ttl, rng)),
    }
}

/// Flooding (optionally fan-out-limited) lookup.
fn flood_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    fan_out: Option<usize>,
    rng: &mut R,
) -> QueryOutcome {
    // The source checks its own store first; that costs no messages.
    if overlay.holds_item(source, item) {
        return QueryOutcome { found: true, hops_to_find: Some(0), messages: 0, peers_probed: 0 };
    }
    let mut outcome = QueryOutcome::default();
    let mut visited: HashSet<PeerId> = HashSet::from([source]);
    let mut queue: VecDeque<(PeerId, Option<PeerId>, u32)> = VecDeque::new();
    queue.push_back((source, None, 0));
    let mut scratch: Vec<PeerId> = Vec::new();

    while let Some((peer, from, depth)) = queue.pop_front() {
        if depth >= ttl {
            continue;
        }
        let neighbors = overlay.neighbors(peer).expect("queued peers are alive");
        scratch.clear();
        scratch.extend(neighbors.iter().copied().filter(|&n| Some(n) != from));
        let targets: &[PeerId] = match fan_out {
            Some(k) if scratch.len() > k => scratch.partial_shuffle(rng, k).0,
            _ => &scratch,
        };
        for &next in targets {
            outcome.messages += 1;
            if visited.insert(next) {
                outcome.peers_probed += 1;
                if overlay.holds_item(next, item) && !outcome.found {
                    outcome.found = true;
                    outcome.hops_to_find = Some(depth + 1);
                }
                queue.push_back((next, Some(peer), depth + 1));
            }
        }
    }
    outcome
}

/// Random-walk lookup that terminates on the first replica found.
fn walk_query<R: Rng + ?Sized>(
    overlay: &OverlayNetwork,
    source: PeerId,
    item: ItemId,
    ttl: u32,
    rng: &mut R,
) -> QueryOutcome {
    if overlay.holds_item(source, item) {
        return QueryOutcome { found: true, hops_to_find: Some(0), messages: 0, peers_probed: 0 };
    }
    let mut outcome = QueryOutcome::default();
    let mut visited: HashSet<PeerId> = HashSet::from([source]);
    let mut current = source;
    let mut previous: Option<PeerId> = None;
    for hop in 1..=ttl {
        let neighbors = overlay.neighbors(current).expect("walk stays on live peers");
        let next = match neighbors.len() {
            0 => break,
            1 => neighbors[0],
            _ => loop {
                let candidate = neighbors[rng.gen_range(0..neighbors.len())];
                if Some(candidate) != previous {
                    break candidate;
                }
            },
        };
        outcome.messages += 1;
        if visited.insert(next) {
            outcome.peers_probed += 1;
        }
        if overlay.holds_item(next, item) {
            outcome.found = true;
            outcome.hops_to_find = Some(hop);
            break;
        }
        previous = Some(current);
        current = next;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::{JoinStrategy, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_core::DegreeCutoff;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn build_overlay(peers: usize, seed: u64) -> OverlayNetwork {
        let config = OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(20),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(seed);
        for _ in 0..peers {
            overlay.join(&mut r);
        }
        overlay
    }

    #[test]
    fn source_holding_the_item_costs_nothing() {
        let mut overlay = build_overlay(20, 1);
        let mut r = rng(2);
        let source = overlay.random_peer(&mut r).unwrap();
        let item = ItemId::new(1);
        overlay.store_item(source, item).unwrap();
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            let o = run_query(&overlay, method, source, item, 5, &mut r).unwrap();
            assert!(o.found);
            assert_eq!(o.hops_to_find, Some(0));
            assert_eq!(o.messages, 0);
        }
    }

    #[test]
    fn flooding_finds_a_well_replicated_item() {
        let mut overlay = build_overlay(100, 3);
        let mut r = rng(4);
        let item = ItemId::new(7);
        // Replicate on 10 random peers.
        for _ in 0..10 {
            let holder = overlay.random_peer(&mut r).unwrap();
            overlay.store_item(holder, item).unwrap();
        }
        let source = overlay.random_peer(&mut r).unwrap();
        let o = run_query(&overlay, QueryMethod::Flooding, source, item, 10, &mut r).unwrap();
        assert!(o.found, "a 10% replicated item should be found by a deep flood");
        assert!(o.hops_to_find.unwrap() >= 1 || o.messages == 0);
        assert!(o.messages > 0);
    }

    #[test]
    fn missing_item_is_not_found_but_messages_are_spent() {
        let overlay = build_overlay(50, 5);
        let mut r = rng(6);
        let source = overlay.peers().next().unwrap();
        for method in [
            QueryMethod::Flooding,
            QueryMethod::NormalizedFlooding { k_min: 2 },
            QueryMethod::RandomWalk,
        ] {
            let o = run_query(&overlay, method, source, ItemId::new(999), 6, &mut r).unwrap();
            assert!(!o.found);
            assert_eq!(o.hops_to_find, None);
            assert!(o.messages > 0);
        }
    }

    #[test]
    fn normalized_flooding_spends_fewer_messages_than_flooding() {
        let overlay = build_overlay(150, 7);
        let mut r = rng(8);
        let source = overlay.peers().next().unwrap();
        let item = ItemId::new(3); // not stored anywhere: worst case message cost
        let fl = run_query(&overlay, QueryMethod::Flooding, source, item, 5, &mut r).unwrap();
        let nf = run_query(&overlay, QueryMethod::NormalizedFlooding { k_min: 2 }, source, item, 5, &mut r)
            .unwrap();
        assert!(nf.messages < fl.messages);
    }

    #[test]
    fn random_walk_stops_when_it_finds_the_item() {
        let mut overlay = build_overlay(60, 9);
        let mut r = rng(10);
        let item = ItemId::new(2);
        // Store the item everywhere so the walk must find it on its first hop.
        let peers: Vec<PeerId> = overlay.peers().collect();
        for p in peers {
            overlay.store_item(p, item).unwrap();
        }
        let source = overlay.random_peer(&mut r).unwrap();
        let o = run_query(&overlay, QueryMethod::RandomWalk, source, item, 50, &mut r).unwrap();
        assert!(o.found);
        assert_eq!(o.hops_to_find, Some(0), "the source itself holds a replica");
    }

    #[test]
    fn zero_ttl_probes_nobody() {
        let overlay = build_overlay(30, 11);
        let mut r = rng(12);
        let source = overlay.peers().next().unwrap();
        let o = run_query(&overlay, QueryMethod::Flooding, source, ItemId::new(5), 0, &mut r).unwrap();
        assert_eq!(o, QueryOutcome::default());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let overlay = build_overlay(10, 13);
        let mut r = rng(14);
        let source = overlay.peers().next().unwrap();
        let ghost = PeerId::new_for_tests(10_000);
        assert!(run_query(&overlay, QueryMethod::Flooding, ghost, ItemId::new(0), 3, &mut r).is_err());
        assert!(run_query(
            &overlay,
            QueryMethod::NormalizedFlooding { k_min: 0 },
            source,
            ItemId::new(0),
            3,
            &mut r
        )
        .is_err());
    }
}
