//! Replication strategies for the item catalog (Cohen & Shenker, paper ref. \[22\]).
//!
//! How many copies of each item the overlay keeps determines how far a blind search has to
//! look. The replication literature the paper cites compares three allocation rules given a
//! fixed total replica budget:
//!
//! * **uniform** — every item gets the same number of copies, regardless of popularity;
//! * **proportional** — copies proportional to query popularity, which is what passive
//!   caching converges to;
//! * **square-root** — copies proportional to the square root of popularity, which
//!   minimizes the expected search size for blind (random-probe) searches and is the rule
//!   the end-to-end simulation uses by default.
//!
//! [`allocate`] turns a [`Catalog`] plus a strategy and a replica budget into a per-item
//! replica count, and [`place`] scatters those replicas over the live overlay.

use crate::catalog::{Catalog, ItemId};
use crate::overlay::OverlayNetwork;
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Replica-allocation rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplicationStrategy {
    /// Same number of copies for every item.
    Uniform,
    /// Copies proportional to query popularity.
    Proportional,
    /// Copies proportional to the square root of query popularity (optimal for blind
    /// search under a fixed budget).
    SquareRoot,
}

impl ReplicationStrategy {
    /// Returns the un-normalized allocation weight of an item with query probability `p`.
    fn weight(&self, p: f64) -> f64 {
        match self {
            ReplicationStrategy::Uniform => 1.0,
            ReplicationStrategy::Proportional => p,
            ReplicationStrategy::SquareRoot => p.sqrt(),
        }
    }
}

/// Per-item replica allocation produced by [`allocate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaAllocation {
    /// Number of replicas for each catalog rank (index = rank).
    pub replicas: Vec<usize>,
}

impl ReplicaAllocation {
    /// Returns the replica count of the item with the given rank (0 outside the catalog).
    pub fn count(&self, rank: u64) -> usize {
        self.replicas.get(rank as usize).copied().unwrap_or(0)
    }

    /// Returns the total number of replicas allocated.
    pub fn total(&self) -> usize {
        self.replicas.iter().sum()
    }
}

/// Allocates `budget` replicas over the catalog according to `strategy`.
///
/// Every item receives at least one copy (otherwise it would be unfindable no matter the
/// search); the remaining budget is distributed by largest remainder so the total is as
/// close to `budget` as the at-least-one constraint allows.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] if `budget` is smaller than the catalog size.
pub fn allocate(
    catalog: &Catalog,
    strategy: ReplicationStrategy,
    budget: usize,
) -> Result<ReplicaAllocation> {
    let items = catalog.len();
    if budget < items {
        return Err(SimError::InvalidConfig {
            reason: "replica budget must allow at least one copy per item",
        });
    }
    let weights: Vec<f64> = (0..items as u64)
        .map(|rank| strategy.weight(catalog.query_probability(rank)))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let spare = budget - items;

    // Ideal fractional share of the spare budget, then largest-remainder rounding.
    let shares: Vec<f64> = weights
        .iter()
        .map(|w| {
            if total_weight > 0.0 {
                w / total_weight * spare as f64
            } else {
                0.0
            }
        })
        .collect();
    let mut replicas: Vec<usize> = shares.iter().map(|s| 1 + s.floor() as usize).collect();
    let mut assigned: usize = replicas.iter().sum();

    let mut remainders: Vec<(usize, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s - s.floor()))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("remainders are finite"));
    let mut idx = 0;
    while assigned < budget && !remainders.is_empty() {
        replicas[remainders[idx % remainders.len()].0] += 1;
        assigned += 1;
        idx += 1;
    }

    Ok(ReplicaAllocation { replicas })
}

/// Places an allocation onto the live overlay: each replica goes to a uniformly random
/// peer (a peer may hold several items, but duplicate copies of the *same* item on the same
/// peer are avoided when the overlay is large enough to allow it).
///
/// Returns the number of replicas actually stored.
///
/// # Errors
///
/// Returns [`SimError::EmptyOverlay`] if the overlay has no peers.
pub fn place<R: Rng + ?Sized>(
    overlay: &mut OverlayNetwork,
    allocation: &ReplicaAllocation,
    rng: &mut R,
) -> Result<usize> {
    if overlay.peer_count() == 0 {
        return Err(SimError::EmptyOverlay);
    }
    let mut stored = 0usize;
    for (rank, &count) in allocation.replicas.iter().enumerate() {
        let item = ItemId::new(rank as u64);
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < count && attempts < count * 8 {
            attempts += 1;
            let peer = overlay.random_peer(rng)?;
            if overlay.holds_item(peer, item) {
                continue;
            }
            overlay.store_item(peer, item)?;
            placed += 1;
            stored += 1;
        }
        // Tiny overlays may not have enough distinct peers; accept double placement then.
        while placed < count {
            let peer = overlay.random_peer(rng)?;
            overlay.store_item(peer, item)?;
            placed += 1;
            stored += 1;
        }
    }
    Ok(stored)
}

/// Expected number of random probes needed to find each item under blind search, given an
/// allocation over a population of `peers` peers: `peers / replicas_i`, averaged with the
/// catalog's query probabilities. This is the quantity the square-root rule minimizes.
pub fn expected_search_size(
    catalog: &Catalog,
    allocation: &ReplicaAllocation,
    peers: usize,
) -> f64 {
    (0..catalog.len() as u64)
        .map(|rank| {
            let replicas = allocation.count(rank).max(1);
            catalog.query_probability(rank) * peers as f64 / replicas as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::{JoinStrategy, OverlayConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_core::DegreeCutoff;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn catalog() -> Catalog {
        Catalog::new(20, 1.0).unwrap()
    }

    #[test]
    fn budget_below_catalog_size_is_rejected() {
        assert!(allocate(&catalog(), ReplicationStrategy::Uniform, 19).is_err());
        assert!(allocate(&catalog(), ReplicationStrategy::Uniform, 20).is_ok());
    }

    #[test]
    fn every_item_gets_at_least_one_copy_and_totals_match_the_budget() {
        for strategy in [
            ReplicationStrategy::Uniform,
            ReplicationStrategy::Proportional,
            ReplicationStrategy::SquareRoot,
        ] {
            let allocation = allocate(&catalog(), strategy, 200).unwrap();
            assert_eq!(allocation.replicas.len(), 20);
            assert!(allocation.replicas.iter().all(|&r| r >= 1), "{strategy:?}");
            assert_eq!(allocation.total(), 200, "{strategy:?}");
        }
    }

    #[test]
    fn uniform_allocation_is_flat() {
        let allocation = allocate(&catalog(), ReplicationStrategy::Uniform, 200).unwrap();
        let min = allocation.replicas.iter().min().unwrap();
        let max = allocation.replicas.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "uniform allocation should differ by at most one copy"
        );
    }

    #[test]
    fn proportional_tracks_popularity_more_steeply_than_square_root() {
        let proportional = allocate(&catalog(), ReplicationStrategy::Proportional, 400).unwrap();
        let square_root = allocate(&catalog(), ReplicationStrategy::SquareRoot, 400).unwrap();
        // Popular items get more copies under both, but the ratio between the most and the
        // least popular item is larger under proportional.
        assert!(proportional.count(0) > proportional.count(19));
        assert!(square_root.count(0) > square_root.count(19));
        let prop_ratio = proportional.count(0) as f64 / proportional.count(19) as f64;
        let sqrt_ratio = square_root.count(0) as f64 / square_root.count(19) as f64;
        assert!(
            prop_ratio > sqrt_ratio,
            "proportional ratio {prop_ratio} should exceed square-root ratio {sqrt_ratio}"
        );
    }

    #[test]
    fn square_root_minimizes_expected_search_size() {
        let cat = catalog();
        let budget = 300;
        let peers = 1_000;
        let uniform = expected_search_size(
            &cat,
            &allocate(&cat, ReplicationStrategy::Uniform, budget).unwrap(),
            peers,
        );
        let proportional = expected_search_size(
            &cat,
            &allocate(&cat, ReplicationStrategy::Proportional, budget).unwrap(),
            peers,
        );
        let square_root = expected_search_size(
            &cat,
            &allocate(&cat, ReplicationStrategy::SquareRoot, budget).unwrap(),
            peers,
        );
        assert!(
            square_root <= uniform + 1e-9 && square_root <= proportional + 1e-9,
            "square-root ({square_root}) should beat uniform ({uniform}) and proportional ({proportional})"
        );
    }

    #[test]
    fn placement_stores_every_replica() {
        let config = OverlayConfig {
            stubs: 2,
            cutoff: DegreeCutoff::hard(15),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut overlay = OverlayNetwork::new(config).unwrap();
        let mut r = rng(1);
        for _ in 0..100 {
            overlay.join(&mut r);
        }
        let allocation = allocate(&catalog(), ReplicationStrategy::SquareRoot, 150).unwrap();
        let stored = place(&mut overlay, &allocation, &mut r).unwrap();
        assert_eq!(stored, allocation.total());
        // The most popular item must be findable on at least one peer.
        let holders = overlay
            .peers()
            .filter(|&p| overlay.holds_item(p, ItemId::new(0)))
            .count();
        assert!(holders >= 1);
        assert!(holders <= allocation.count(0));
    }

    #[test]
    fn placement_on_an_empty_overlay_is_an_error() {
        let mut overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        let allocation = allocate(&catalog(), ReplicationStrategy::Uniform, 40).unwrap();
        assert_eq!(
            place(&mut overlay, &allocation, &mut rng(2)),
            Err(SimError::EmptyOverlay)
        );
    }

    #[test]
    fn tiny_overlay_accepts_double_placement() {
        let mut overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        let mut r = rng(3);
        for _ in 0..3 {
            overlay.join(&mut r);
        }
        let cat = Catalog::new(2, 1.0).unwrap();
        let allocation = allocate(&cat, ReplicationStrategy::Uniform, 10).unwrap();
        let stored = place(&mut overlay, &allocation, &mut r).unwrap();
        assert_eq!(stored, 10, "placement must not stall when peers < replicas");
    }

    #[test]
    fn allocation_count_outside_catalog_is_zero() {
        let allocation = allocate(&catalog(), ReplicationStrategy::Uniform, 40).unwrap();
        assert_eq!(allocation.count(999), 0);
    }
}
