//! # sfo-sim
//!
//! A discrete-event simulator of a Gnutella-like unstructured peer-to-peer overlay whose
//! peers impose hard degree cutoffs, built on the topology and search crates of this
//! workspace.
//!
//! The ICDCS'07 paper evaluates static snapshots; its stated future work is the study of
//! *join/leave scenarios* "while attempting to maintain the scale-freeness of the overall
//! topology" at minimal messaging overhead. This crate provides that substrate:
//!
//! * [`overlay`] — a live overlay network: peers join using uniform, degree-preferential,
//!   or hop-and-attempt (HAPA-style) neighbor selection under a hard cutoff, leave
//!   gracefully or crash, and optionally trigger neighbor-rewiring repair.
//! * [`catalog`] — data items with Zipf popularity and replication, the workload
//!   unstructured searches serve.
//! * [`query`] — item lookups over the live overlay by flooding, normalized flooding, or
//!   random walks, with early termination on the first replica found.
//! * [`events`] — the discrete-event queue driving joins, leaves, and queries.
//! * [`simulation`] — the end-to-end simulation loop and its report (overlay health and
//!   query success over time).
//! * [`replication`] — uniform / proportional / square-root replica allocation (Cohen &
//!   Shenker, ref. \[22\]) and placement over the live overlay.
//! * [`churn`] — heavy-tailed session-time models and reproducible churn traces.
//! * [`workload`] — stationary Zipf and flash-crowd query workloads.
//! * [`trace_runner`] — replays a churn trace (plus a workload) against the live overlay,
//!   so different overlay configurations can be compared under identical churn.
//!
//! # Example
//!
//! ```
//! use sfo_sim::simulation::{Simulation, SimulationConfig};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), sfo_sim::SimError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let config = SimulationConfig::small();
//! let report = Simulation::new(config)?.run(&mut rng)?;
//! assert!(report.queries_issued > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod catalog;
pub mod churn;
pub mod events;
pub mod overlay;
pub mod query;
pub mod replication;
pub mod simulation;
pub mod trace_runner;
pub mod workload;

pub use error::SimError;

/// Convenience result alias used throughout this crate.
pub type Result<T, E = SimError> = std::result::Result<T, E>;
