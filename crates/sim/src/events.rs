//! Discrete-event queue driving the overlay simulation.
//!
//! Time is measured in abstract integer ticks. Events scheduled for the same tick are
//! delivered in insertion order, which keeps simulation runs reproducible for a fixed RNG
//! seed.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in abstract ticks.
pub type Tick = u64;

/// The kinds of events the overlay simulation processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new peer joins the overlay.
    PeerJoin,
    /// A randomly chosen peer leaves gracefully (neighbors are notified and may repair).
    PeerLeave,
    /// A randomly chosen peer crashes (no notification, no repair initiated by it).
    PeerCrash,
    /// A randomly chosen peer issues a query for a data item.
    Query,
    /// The simulation records a snapshot of overlay health metrics.
    Snapshot,
}

/// A scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// When the event fires.
    pub time: Tick,
    /// What happens.
    pub kind: EventKind,
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// # Example
///
/// ```
/// use sfo_sim::events::{Event, EventKind, EventQueue};
///
/// let mut queue = EventQueue::new();
/// queue.schedule(Event { time: 5, kind: EventKind::Query });
/// queue.schedule(Event { time: 1, kind: EventKind::PeerJoin });
/// assert_eq!(queue.pop().unwrap().kind, EventKind::PeerJoin);
/// assert_eq!(queue.pop().unwrap().time, 5);
/// assert!(queue.pop().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(Tick, u64)>>,
    payloads: Vec<Option<EventKind>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event.
    pub fn schedule(&mut self, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.payloads.push(Some(event.kind));
        debug_assert_eq!(self.payloads.len() as u64, self.next_seq);
        self.heap.push(Reverse((event.time, seq)));
    }

    /// Removes and returns the earliest event, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse((time, seq)) = self.heap.pop()?;
        let kind = self.payloads[seq as usize]
            .take()
            .expect("event payload present");
        Some(Event { time, kind })
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|Reverse((time, _))| *time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_come_out_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Event {
            time: 10,
            kind: EventKind::Query,
        });
        q.schedule(Event {
            time: 2,
            kind: EventKind::PeerJoin,
        });
        q.schedule(Event {
            time: 7,
            kind: EventKind::PeerLeave,
        });
        let order: Vec<Tick> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![2, 7, 10]);
    }

    #[test]
    fn same_tick_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(Event {
            time: 3,
            kind: EventKind::PeerJoin,
        });
        q.schedule(Event {
            time: 3,
            kind: EventKind::PeerCrash,
        });
        q.schedule(Event {
            time: 3,
            kind: EventKind::Snapshot,
        });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PeerJoin,
                EventKind::PeerCrash,
                EventKind::Snapshot
            ]
        );
    }

    #[test]
    fn peek_len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(Event {
            time: 4,
            kind: EventKind::Query,
        });
        q.schedule(Event {
            time: 9,
            kind: EventKind::Query,
        });
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(4));
        q.pop();
        assert_eq!(q.peek_time(), Some(9));
        q.pop();
        assert!(q.is_empty());
    }
}
