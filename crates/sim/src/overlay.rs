//! The live unstructured overlay: peers with hard degree cutoffs joining, leaving,
//! crashing, and repairing.
//!
//! This realizes the paper's future-work direction (§VI): maintaining a scale-free-like
//! overlay with hard cutoffs under churn, while keeping the messaging overhead of join and
//! leave operations small. Join strategies mirror the paper's generators: uniform random
//! attachment (baseline), degree-preferential attachment (PA-like), and hop-and-attempt
//! (HAPA-like, using only links that already exist).

use crate::catalog::ItemId;
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfo_core::DegreeCutoff;
use sfo_graph::{Graph, NodeId};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identifier of a live peer. Unlike graph node ids, peer ids are never reused after a
/// peer departs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(u64);

impl PeerId {
    /// Returns the raw numeric identifier.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Constructs an arbitrary peer id for negative-path tests within this crate.
    #[cfg(test)]
    pub(crate) fn new_for_tests(raw: u64) -> Self {
        PeerId(raw)
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How a joining peer chooses its neighbors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinStrategy {
    /// Connect to peers chosen uniformly at random among those below their cutoff.
    UniformRandom,
    /// Connect to peers with probability proportional to their degree (PA-like); requires
    /// global degree knowledge, kept as the quality baseline.
    DegreePreferential,
    /// Start at a random peer and hop along existing links, attempting each visited peer
    /// with the preferential-acceptance rule (HAPA-like, partially local information).
    HopAndAttempt {
        /// Maximum number of hops the joining peer spends looking for each link.
        max_hops_per_link: usize,
    },
}

/// Configuration of the live overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlayConfig {
    /// Number of links a joining peer tries to establish (the paper's `m`).
    pub stubs: usize,
    /// Hard cutoff every peer imposes on its own degree.
    pub cutoff: DegreeCutoff,
    /// Neighbor-selection strategy at join time.
    pub join_strategy: JoinStrategy,
    /// Whether the neighbors of a gracefully leaving peer rewire among themselves to
    /// preserve connectivity.
    pub repair_on_leave: bool,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(30),
            join_strategy: JoinStrategy::HopAndAttempt {
                max_hops_per_link: 200,
            },
            repair_on_leave: true,
        }
    }
}

/// What a join operation achieved and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinOutcome {
    /// The id assigned to the new peer.
    pub peer: PeerId,
    /// Number of links actually established (at most `stubs`).
    pub links_established: usize,
    /// Number of control messages spent contacting candidate neighbors.
    pub messages: usize,
}

/// What a graceful leave cost and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LeaveOutcome {
    /// Number of replacement links created among the departed peer's former neighbors.
    pub repaired_links: usize,
    /// Number of control messages spent on departure notification and repair.
    pub messages: usize,
}

#[derive(Debug, Clone, Default)]
struct PeerState {
    neighbors: Vec<PeerId>,
    items: BTreeSet<ItemId>,
}

/// A live unstructured P2P overlay with hard degree cutoffs.
///
/// # Example
///
/// ```
/// use sfo_sim::overlay::{OverlayConfig, OverlayNetwork};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_sim::SimError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let mut overlay = OverlayNetwork::new(OverlayConfig::default())?;
/// for _ in 0..50 {
///     overlay.join(&mut rng);
/// }
/// assert_eq!(overlay.peer_count(), 50);
/// assert!(overlay.max_degree().unwrap() <= 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OverlayNetwork {
    config: OverlayConfig,
    states: HashMap<PeerId, PeerState>,
    /// Dense list of live peers for O(1) uniform sampling.
    roster: Vec<PeerId>,
    roster_index: HashMap<PeerId, usize>,
    next_id: u64,
    edge_count: usize,
}

impl OverlayNetwork {
    /// Creates an empty overlay.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `stubs` is zero or the cutoff is smaller than
    /// one.
    pub fn new(config: OverlayConfig) -> Result<Self> {
        if config.stubs == 0 {
            return Err(SimError::InvalidConfig {
                reason: "stubs must be at least 1",
            });
        }
        if let Some(k_c) = config.cutoff.value() {
            if k_c == 0 {
                return Err(SimError::InvalidConfig {
                    reason: "cutoff must admit at least one link",
                });
            }
        }
        Ok(OverlayNetwork {
            config,
            states: HashMap::new(),
            roster: Vec::new(),
            roster_index: HashMap::new(),
            next_id: 0,
            edge_count: 0,
        })
    }

    /// Returns the overlay configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// Returns the number of live peers.
    pub fn peer_count(&self) -> usize {
        self.roster.len()
    }

    /// Returns the number of overlay links.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the peer is currently part of the overlay.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.states.contains_key(&peer)
    }

    /// Returns an iterator over the live peers.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.roster.iter().copied()
    }

    /// Returns the neighbors of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if the peer is not part of the overlay.
    pub fn neighbors(&self, peer: PeerId) -> Result<&[PeerId]> {
        self.states
            .get(&peer)
            .map(|s| s.neighbors.as_slice())
            .ok_or(SimError::UnknownPeer { peer: peer.raw() })
    }

    /// Returns the degree of a peer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if the peer is not part of the overlay.
    pub fn degree(&self, peer: PeerId) -> Result<usize> {
        Ok(self.neighbors(peer)?.len())
    }

    /// Returns a uniformly random live peer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyOverlay`] when no peers are present.
    pub fn random_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<PeerId> {
        if self.roster.is_empty() {
            return Err(SimError::EmptyOverlay);
        }
        Ok(self.roster[rng.gen_range(0..self.roster.len())])
    }

    /// Returns the degrees of all live peers (iteration order follows the roster).
    pub fn degrees(&self) -> Vec<usize> {
        self.roster
            .iter()
            .map(|p| self.states[p].neighbors.len())
            .collect()
    }

    /// Returns the largest peer degree, or `None` for an empty overlay.
    pub fn max_degree(&self) -> Option<usize> {
        self.degrees().into_iter().max()
    }

    /// Returns the mean peer degree, or 0.0 for an empty overlay.
    pub fn mean_degree(&self) -> f64 {
        if self.roster.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.roster.len() as f64
        }
    }

    /// Stores a replica of `item` at `peer`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if the peer is not part of the overlay.
    pub fn store_item(&mut self, peer: PeerId, item: ItemId) -> Result<()> {
        self.states
            .get_mut(&peer)
            .map(|s| {
                s.items.insert(item);
            })
            .ok_or(SimError::UnknownPeer { peer: peer.raw() })
    }

    /// Returns `true` if the peer currently stores a replica of `item`.
    pub fn holds_item(&self, peer: PeerId, item: ItemId) -> bool {
        self.states
            .get(&peer)
            .is_some_and(|s| s.items.contains(&item))
    }

    /// Adds a new peer and connects it according to the configured join strategy.
    pub fn join<R: Rng + ?Sized>(&mut self, rng: &mut R) -> JoinOutcome {
        let peer = PeerId(self.next_id);
        self.next_id += 1;
        self.states.insert(peer, PeerState::default());
        self.roster_index.insert(peer, self.roster.len());
        self.roster.push(peer);

        let mut links = 0usize;
        let mut messages = 0usize;
        if self.roster.len() > 1 {
            for _ in 0..self.config.stubs {
                let (target, probes) = match self.config.join_strategy {
                    JoinStrategy::UniformRandom => self.pick_uniform(peer, rng),
                    JoinStrategy::DegreePreferential => self.pick_preferential(peer, rng),
                    JoinStrategy::HopAndAttempt { max_hops_per_link } => {
                        self.pick_hop_and_attempt(peer, max_hops_per_link, rng)
                    }
                };
                messages += probes;
                match target {
                    Some(t) => {
                        self.connect(peer, t);
                        links += 1;
                    }
                    None => break,
                }
            }
        }
        JoinOutcome {
            peer,
            links_established: links,
            messages,
        }
    }

    /// Removes a peer gracefully; its former neighbors may rewire among themselves.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if the peer is not part of the overlay.
    pub fn leave<R: Rng + ?Sized>(&mut self, peer: PeerId, rng: &mut R) -> Result<LeaveOutcome> {
        let former = self.remove_peer(peer)?;
        // One departure notification per former neighbor.
        let mut outcome = LeaveOutcome {
            repaired_links: 0,
            messages: former.len(),
        };
        if self.config.repair_on_leave && former.len() >= 2 {
            // Pair up former neighbors in random order; each pair attempts one replacement
            // link, which succeeds when both sides are still below their cutoff and the
            // link does not already exist.
            let mut shuffled = former;
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range(0..=i));
            }
            for pair in shuffled.chunks_exact(2) {
                let (a, b) = (pair[0], pair[1]);
                outcome.messages += 1;
                if self.can_link(a, b) {
                    self.connect(a, b);
                    outcome.repaired_links += 1;
                }
            }
        }
        Ok(outcome)
    }

    /// Removes a peer abruptly: no notification, no repair.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPeer`] if the peer is not part of the overlay.
    pub fn crash(&mut self, peer: PeerId) -> Result<()> {
        self.remove_peer(peer)?;
        Ok(())
    }

    /// Builds a static snapshot of the overlay as a graph for analysis, together with the
    /// mapping from graph node index to peer id (ordered by the internal roster).
    pub fn snapshot(&self) -> (Graph, Vec<PeerId>) {
        let mut graph = Graph::with_nodes(self.roster.len());
        let index: HashMap<PeerId, usize> = self
            .roster
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i))
            .collect();
        for (i, peer) in self.roster.iter().enumerate() {
            for neighbor in &self.states[peer].neighbors {
                let j = index[neighbor];
                if i < j {
                    graph
                        .add_edge(NodeId::new(i), NodeId::new(j))
                        .expect("snapshot edges are unique and in bounds");
                }
            }
        }
        (graph, self.roster.clone())
    }

    fn remove_peer(&mut self, peer: PeerId) -> Result<Vec<PeerId>> {
        let state = self
            .states
            .remove(&peer)
            .ok_or(SimError::UnknownPeer { peer: peer.raw() })?;
        for neighbor in &state.neighbors {
            if let Some(n_state) = self.states.get_mut(neighbor) {
                if let Some(pos) = n_state.neighbors.iter().position(|&p| p == peer) {
                    n_state.neighbors.swap_remove(pos);
                }
            }
        }
        self.edge_count -= state.neighbors.len();
        let pos = self
            .roster_index
            .remove(&peer)
            .expect("roster index in sync");
        self.roster.swap_remove(pos);
        if let Some(&moved) = self.roster.get(pos) {
            self.roster_index.insert(moved, pos);
        }
        Ok(state.neighbors)
    }

    fn can_link(&self, a: PeerId, b: PeerId) -> bool {
        if a == b || !self.contains(a) || !self.contains(b) {
            return false;
        }
        let sa = &self.states[&a];
        let sb = &self.states[&b];
        !sa.neighbors.contains(&b)
            && self.config.cutoff.admits(sa.neighbors.len())
            && self.config.cutoff.admits(sb.neighbors.len())
    }

    fn connect(&mut self, a: PeerId, b: PeerId) {
        debug_assert!(self.can_link(a, b) || self.states[&a].neighbors.len() < usize::MAX);
        self.states
            .get_mut(&a)
            .expect("peer a exists")
            .neighbors
            .push(b);
        self.states
            .get_mut(&b)
            .expect("peer b exists")
            .neighbors
            .push(a);
        self.edge_count += 1;
    }

    /// Candidate acceptable as a new neighbor of `joining`.
    fn acceptable(&self, joining: PeerId, candidate: PeerId) -> bool {
        candidate != joining
            && self
                .config
                .cutoff
                .admits(self.states[&candidate].neighbors.len())
            && !self.states[&joining].neighbors.contains(&candidate)
    }

    fn pick_uniform<R: Rng + ?Sized>(
        &self,
        joining: PeerId,
        rng: &mut R,
    ) -> (Option<PeerId>, usize) {
        let mut probes = 0usize;
        // Bounded rejection sampling, then an exact scan so saturation cannot stall a join.
        for _ in 0..32 {
            probes += 1;
            let candidate = self.roster[rng.gen_range(0..self.roster.len())];
            if self.acceptable(joining, candidate) {
                return (Some(candidate), probes);
            }
        }
        let eligible: Vec<PeerId> = self
            .roster
            .iter()
            .copied()
            .filter(|&p| self.acceptable(joining, p))
            .collect();
        probes += 1;
        if eligible.is_empty() {
            (None, probes)
        } else {
            (Some(eligible[rng.gen_range(0..eligible.len())]), probes)
        }
    }

    fn pick_preferential<R: Rng + ?Sized>(
        &self,
        joining: PeerId,
        rng: &mut R,
    ) -> (Option<PeerId>, usize) {
        let eligible: Vec<(PeerId, usize)> = self
            .roster
            .iter()
            .copied()
            .filter(|&p| self.acceptable(joining, p))
            .map(|p| (p, self.states[&p].neighbors.len() + 1))
            .collect();
        if eligible.is_empty() {
            return (None, 1);
        }
        let total: usize = eligible.iter().map(|(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for (peer, weight) in &eligible {
            if pick < *weight {
                return (Some(*peer), 1);
            }
            pick -= weight;
        }
        unreachable!("weighted pick is bounded by the total weight")
    }

    fn pick_hop_and_attempt<R: Rng + ?Sized>(
        &self,
        joining: PeerId,
        max_hops: usize,
        rng: &mut R,
    ) -> (Option<PeerId>, usize) {
        let k_total = (2 * self.edge_count).max(1);
        let mut probes = 0usize;
        let mut current = self.roster[rng.gen_range(0..self.roster.len())];
        for _ in 0..max_hops.max(1) {
            probes += 1;
            if self.acceptable(joining, current) {
                let k = self.states[&current].neighbors.len();
                let acceptance = (k as f64 / k_total as f64).max(1.0 / self.roster.len() as f64);
                if rng.gen::<f64>() < acceptance {
                    return (Some(current), probes);
                }
            }
            let neighbors = &self.states[&current].neighbors;
            current = if neighbors.is_empty() {
                self.roster[rng.gen_range(0..self.roster.len())]
            } else {
                neighbors[rng.gen_range(0..neighbors.len())]
            };
        }
        // Hop budget exhausted: fall back to a uniform eligible peer so the join completes.
        let (fallback, extra) = self.pick_uniform(joining, rng);
        (fallback, probes + extra)
    }

    /// Asserts internal consistency (mirrored adjacency, roster/index agreement, edge
    /// count). Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics on the first inconsistency found.
    pub fn assert_consistent(&self) {
        assert_eq!(self.roster.len(), self.states.len());
        let mut half_edges = 0usize;
        for (peer, state) in &self.states {
            assert_eq!(self.roster[self.roster_index[peer]], *peer);
            for neighbor in &state.neighbors {
                assert!(neighbor != peer, "self-loop on {peer}");
                assert!(
                    self.states[neighbor].neighbors.contains(peer),
                    "link {peer}-{neighbor} not mirrored"
                );
            }
            half_edges += state.neighbors.len();
        }
        assert_eq!(half_edges, 2 * self.edge_count, "edge count out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_graph::traversal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn config(strategy: JoinStrategy) -> OverlayConfig {
        OverlayConfig {
            stubs: 2,
            cutoff: DegreeCutoff::hard(10),
            join_strategy: strategy,
            repair_on_leave: true,
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let bad = OverlayConfig {
            stubs: 0,
            ..OverlayConfig::default()
        };
        assert!(OverlayNetwork::new(bad).is_err());
        let zero_cutoff = OverlayConfig {
            cutoff: DegreeCutoff::hard(0),
            ..OverlayConfig::default()
        };
        assert!(OverlayNetwork::new(zero_cutoff).is_err());
    }

    #[test]
    fn joins_grow_the_overlay_and_respect_cutoffs() {
        for strategy in [
            JoinStrategy::UniformRandom,
            JoinStrategy::DegreePreferential,
            JoinStrategy::HopAndAttempt {
                max_hops_per_link: 50,
            },
        ] {
            let mut overlay = OverlayNetwork::new(config(strategy)).unwrap();
            let mut r = rng(1);
            for _ in 0..120 {
                overlay.join(&mut r);
            }
            assert_eq!(overlay.peer_count(), 120);
            assert!(overlay.max_degree().unwrap() <= 10, "{strategy:?}");
            overlay.assert_consistent();
            let (graph, peers) = overlay.snapshot();
            assert_eq!(graph.node_count(), 120);
            assert_eq!(peers.len(), 120);
            assert!(
                traversal::giant_component_fraction(&graph) > 0.9,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn first_join_establishes_no_links() {
        let mut overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        let outcome = overlay.join(&mut rng(2));
        assert_eq!(outcome.links_established, 0);
        assert_eq!(overlay.edge_count(), 0);
        assert_eq!(overlay.degree(outcome.peer).unwrap(), 0);
    }

    #[test]
    fn join_outcomes_report_messages_and_links() {
        let mut overlay = OverlayNetwork::new(config(JoinStrategy::UniformRandom)).unwrap();
        let mut r = rng(3);
        overlay.join(&mut r);
        let second = overlay.join(&mut r);
        assert_eq!(second.links_established, 1, "only one other peer exists");
        assert!(second.messages >= 1);
        let third = overlay.join(&mut r);
        assert_eq!(third.links_established, 2);
    }

    #[test]
    fn graceful_leave_repairs_links() {
        let mut overlay = OverlayNetwork::new(config(JoinStrategy::UniformRandom)).unwrap();
        let mut r = rng(4);
        for _ in 0..60 {
            overlay.join(&mut r);
        }
        let victim = overlay.random_peer(&mut r).unwrap();
        let victim_degree = overlay.degree(victim).unwrap();
        let outcome = overlay.leave(victim, &mut r).unwrap();
        assert!(!overlay.contains(victim));
        assert_eq!(overlay.peer_count(), 59);
        assert!(outcome.messages >= victim_degree);
        overlay.assert_consistent();
        // Leaving twice is an error.
        assert_eq!(
            overlay.leave(victim, &mut r),
            Err(SimError::UnknownPeer { peer: victim.raw() })
        );
    }

    #[test]
    fn crash_removes_without_repair_messages() {
        let mut overlay = OverlayNetwork::new(config(JoinStrategy::DegreePreferential)).unwrap();
        let mut r = rng(5);
        for _ in 0..40 {
            overlay.join(&mut r);
        }
        let victim = overlay.random_peer(&mut r).unwrap();
        overlay.crash(victim).unwrap();
        assert!(!overlay.contains(victim));
        assert_eq!(overlay.peer_count(), 39);
        overlay.assert_consistent();
        assert!(overlay.crash(victim).is_err());
    }

    #[test]
    fn repair_can_be_disabled() {
        let mut cfg = config(JoinStrategy::UniformRandom);
        cfg.repair_on_leave = false;
        let mut overlay = OverlayNetwork::new(cfg).unwrap();
        let mut r = rng(6);
        for _ in 0..30 {
            overlay.join(&mut r);
        }
        let victim = overlay.random_peer(&mut r).unwrap();
        let outcome = overlay.leave(victim, &mut r).unwrap();
        assert_eq!(outcome.repaired_links, 0);
    }

    #[test]
    fn degree_preferential_creates_heavier_hubs_than_uniform() {
        let mut uniform_max = 0usize;
        let mut pref_max = 0usize;
        for seed in 0..5u64 {
            let mut cfg = config(JoinStrategy::UniformRandom);
            cfg.cutoff = DegreeCutoff::Unbounded;
            cfg.stubs = 1;
            let mut uniform = OverlayNetwork::new(cfg).unwrap();
            cfg.join_strategy = JoinStrategy::DegreePreferential;
            let mut pref = OverlayNetwork::new(cfg).unwrap();
            let mut r1 = rng(seed);
            let mut r2 = rng(seed);
            for _ in 0..500 {
                uniform.join(&mut r1);
                pref.join(&mut r2);
            }
            uniform_max += uniform.max_degree().unwrap();
            pref_max += pref.max_degree().unwrap();
        }
        assert!(
            pref_max > uniform_max,
            "preferential joins should grow bigger hubs ({pref_max} vs {uniform_max})"
        );
    }

    #[test]
    fn item_storage_and_lookup() {
        let mut overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        let mut r = rng(7);
        let a = overlay.join(&mut r).peer;
        let item = ItemId::new(42);
        assert!(!overlay.holds_item(a, item));
        overlay.store_item(a, item).unwrap();
        assert!(overlay.holds_item(a, item));
        let ghost = PeerId(999);
        assert!(overlay.store_item(ghost, item).is_err());
        assert!(!overlay.holds_item(ghost, item));
    }

    #[test]
    fn random_peer_on_empty_overlay_is_an_error() {
        let overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        assert_eq!(
            overlay.random_peer(&mut rng(8)),
            Err(SimError::EmptyOverlay)
        );
        assert_eq!(overlay.mean_degree(), 0.0);
        assert_eq!(overlay.max_degree(), None);
    }

    #[test]
    fn unknown_peer_queries_error() {
        let overlay = OverlayNetwork::new(OverlayConfig::default()).unwrap();
        let ghost = PeerId(5);
        assert!(overlay.neighbors(ghost).is_err());
        assert!(overlay.degree(ghost).is_err());
    }

    #[test]
    fn peer_ids_are_never_reused() {
        let mut overlay = OverlayNetwork::new(config(JoinStrategy::UniformRandom)).unwrap();
        let mut r = rng(9);
        let first = overlay.join(&mut r).peer;
        let second = overlay.join(&mut r).peer;
        overlay.leave(first, &mut r).unwrap();
        let third = overlay.join(&mut r).peer;
        assert_ne!(third, first);
        assert_ne!(third, second);
        assert_eq!(format!("{first}"), "p0");
    }
}
