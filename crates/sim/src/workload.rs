//! Query workloads: stationary Zipf popularity and flash crowds.
//!
//! The paper's related work highlights "handling of dynamic flash crowds" as a challenge
//! for small-world/unstructured overlays (ref. \[4\]): a previously unremarkable item
//! suddenly dominates the query stream, and an overlay whose replication and topology were
//! tuned for the stationary popularity has to absorb it. This module models both regimes on
//! top of the [`Catalog`]: a stationary workload simply samples the catalog's Zipf law,
//! while a flash-crowd workload redirects a configurable fraction of queries to one hot
//! item during a time window.

use crate::catalog::{Catalog, ItemId};
use crate::events::Tick;
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A time-dependent query workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Queries follow the catalog's stationary Zipf popularity at every tick.
    Stationary,
    /// Between `start` and `end` (inclusive), a fraction `intensity` of all queries target
    /// `hot_item`; the remainder (and all queries outside the window) follow the stationary
    /// popularity.
    FlashCrowd {
        /// The item that becomes suddenly popular.
        hot_item: ItemId,
        /// First tick of the flash crowd.
        start: Tick,
        /// Last tick of the flash crowd.
        end: Tick,
        /// Fraction of in-window queries redirected to the hot item (within `[0, 1]`).
        intensity: f64,
    },
}

impl Workload {
    /// Validates the workload against a catalog.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the flash-crowd window is inverted, the
    /// intensity is outside `[0, 1]`, or the hot item is not in the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        match self {
            Workload::Stationary => Ok(()),
            Workload::FlashCrowd {
                hot_item,
                start,
                end,
                intensity,
            } => {
                if start > end {
                    return Err(SimError::InvalidConfig {
                        reason: "flash-crowd window must not be inverted",
                    });
                }
                if !(0.0..=1.0).contains(intensity) || intensity.is_nan() {
                    return Err(SimError::InvalidConfig {
                        reason: "flash-crowd intensity must lie in [0, 1]",
                    });
                }
                if hot_item.rank() as usize >= catalog.len() {
                    return Err(SimError::InvalidConfig {
                        reason: "flash-crowd hot item must be part of the catalog",
                    });
                }
                Ok(())
            }
        }
    }

    /// Returns `true` if the flash crowd is active at `time` (always `false` for the
    /// stationary workload).
    pub fn is_surging(&self, time: Tick) -> bool {
        match self {
            Workload::Stationary => false,
            Workload::FlashCrowd { start, end, .. } => (*start..=*end).contains(&time),
        }
    }

    /// Samples the item a query issued at `time` asks for.
    pub fn sample_query<R: Rng + ?Sized>(
        &self,
        catalog: &Catalog,
        time: Tick,
        rng: &mut R,
    ) -> ItemId {
        match self {
            Workload::Stationary => catalog.sample_query(rng),
            Workload::FlashCrowd {
                hot_item,
                intensity,
                ..
            } => {
                if self.is_surging(time) && rng.gen::<f64>() < *intensity {
                    *hot_item
                } else {
                    catalog.sample_query(rng)
                }
            }
        }
    }

    /// Effective query probability of `item` at `time`, combining the stationary law with
    /// any active flash crowd.
    pub fn query_probability(&self, catalog: &Catalog, item: ItemId, time: Tick) -> f64 {
        let base = catalog.query_probability(item.rank());
        match self {
            Workload::Stationary => base,
            Workload::FlashCrowd {
                hot_item,
                intensity,
                ..
            } => {
                if !self.is_surging(time) {
                    return base;
                }
                let diluted = (1.0 - intensity) * base;
                if item == *hot_item {
                    diluted + intensity
                } else {
                    diluted
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn catalog() -> Catalog {
        Catalog::new(50, 1.0).unwrap()
    }

    fn crowd(intensity: f64) -> Workload {
        Workload::FlashCrowd {
            hot_item: ItemId::new(30),
            start: 100,
            end: 200,
            intensity,
        }
    }

    #[test]
    fn validation_catches_bad_flash_crowds() {
        let cat = catalog();
        assert!(Workload::Stationary.validate(&cat).is_ok());
        assert!(crowd(0.8).validate(&cat).is_ok());
        let inverted = Workload::FlashCrowd {
            hot_item: ItemId::new(1),
            start: 50,
            end: 10,
            intensity: 0.5,
        };
        assert!(inverted.validate(&cat).is_err());
        assert!(crowd(1.5).validate(&cat).is_err());
        let missing = Workload::FlashCrowd {
            hot_item: ItemId::new(99),
            start: 0,
            end: 10,
            intensity: 0.5,
        };
        assert!(missing.validate(&cat).is_err());
    }

    #[test]
    fn surge_window_is_inclusive() {
        let w = crowd(0.5);
        assert!(!w.is_surging(99));
        assert!(w.is_surging(100));
        assert!(w.is_surging(150));
        assert!(w.is_surging(200));
        assert!(!w.is_surging(201));
        assert!(!Workload::Stationary.is_surging(150));
    }

    #[test]
    fn stationary_workload_matches_the_catalog_law() {
        let cat = catalog();
        let w = Workload::Stationary;
        for rank in [0u64, 10, 49] {
            assert_eq!(
                w.query_probability(&cat, ItemId::new(rank), 7),
                cat.query_probability(rank)
            );
        }
    }

    #[test]
    fn flash_crowd_boosts_the_hot_item_inside_the_window_only() {
        let cat = catalog();
        let w = crowd(0.7);
        let hot = ItemId::new(30);
        let cold = ItemId::new(0);
        let base_hot = cat.query_probability(30);
        assert_eq!(w.query_probability(&cat, hot, 50), base_hot);
        let surged = w.query_probability(&cat, hot, 150);
        assert!(
            surged > 0.7,
            "hot item should absorb the surge, got {surged}"
        );
        // Other items are diluted during the surge.
        assert!(w.query_probability(&cat, cold, 150) < cat.query_probability(0));
        // Probabilities still sum to one during the surge.
        let total: f64 = (0..50)
            .map(|r| w.query_probability(&cat, ItemId::new(r), 150))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_reflects_the_surge() {
        let cat = catalog();
        let w = crowd(0.9);
        let mut r = rng(1);
        let in_window = (0..5_000)
            .filter(|_| w.sample_query(&cat, 150, &mut r) == ItemId::new(30))
            .count();
        let out_of_window = (0..5_000)
            .filter(|_| w.sample_query(&cat, 10, &mut r) == ItemId::new(30))
            .count();
        assert!(
            in_window as f64 / 5_000.0 > 0.8,
            "in-window share {in_window}"
        );
        assert!(
            out_of_window as f64 / 5_000.0 < 0.05,
            "out-of-window share {out_of_window}"
        );
    }

    #[test]
    fn zero_intensity_flash_crowd_is_stationary() {
        let cat = catalog();
        let w = crowd(0.0);
        for rank in [0u64, 30, 49] {
            assert!(
                (w.query_probability(&cat, ItemId::new(rank), 150) - cat.query_probability(rank))
                    .abs()
                    < 1e-12
            );
        }
    }
}
