//! Error type for the overlay simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the live-overlay simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration value is out of range.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// An operation referenced a peer that is not (or no longer) part of the overlay.
    UnknownPeer {
        /// The raw peer identifier that was not found.
        peer: u64,
    },
    /// The overlay is empty, so the requested operation (query, random peer pick) cannot
    /// proceed.
    EmptyOverlay,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::UnknownPeer { peer } => write!(f, "peer p{peer} is not part of the overlay"),
            SimError::EmptyOverlay => write!(f, "the overlay contains no peers"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SimError::InvalidConfig {
                reason: "rate must be positive"
            }
            .to_string(),
            "invalid configuration: rate must be positive"
        );
        assert_eq!(
            SimError::UnknownPeer { peer: 9 }.to_string(),
            "peer p9 is not part of the overlay"
        );
        assert_eq!(
            SimError::EmptyOverlay.to_string(),
            "the overlay contains no peers"
        );
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<SimError>();
    }
}
