//! Replaying churn traces against the live overlay, with an optional query workload.
//!
//! [`crate::simulation::Simulation`] draws its churn on the fly from memoryless rates. The
//! trace runner replays a pre-generated [`ChurnTrace`] instead, so the *same* sequence of
//! arrivals and departures (with heavy-tailed session lengths, crash mix, and timing) can be
//! applied to different overlay configurations — the controlled-comparison setup needed to
//! answer "does a hard cutoff help under this exact churn?" rather than "under churn of
//! roughly this intensity". Between churn events the runner issues lookups from a
//! [`Workload`] (stationary or flash crowd) over a replicated catalog and samples overlay
//! health at a fixed interval.

use crate::catalog::Catalog;
use crate::churn::{ChurnAction, ChurnTrace};
use crate::events::Tick;
use crate::overlay::{OverlayConfig, OverlayNetwork, PeerId};
use crate::query::{BatchQuery, QueryMethod, QuerySnapshot};
use crate::replication::{allocate, place, ReplicationStrategy};
use crate::simulation::OverlaySample;
use crate::workload::Workload;
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfo_graph::traversal;
use std::collections::HashMap;

/// Configuration of a trace replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRunConfig {
    /// Overlay configuration (stubs, cutoff, join strategy, repair).
    pub overlay: OverlayConfig,
    /// Number of peers joined before the trace starts.
    pub bootstrap_peers: usize,
    /// Item catalog size.
    pub catalog_items: usize,
    /// Zipf skew of the catalog.
    pub catalog_skew: f64,
    /// Replica-allocation rule applied to the bootstrap population.
    pub replication: ReplicationStrategy,
    /// Total replica budget (must be at least `catalog_items`).
    pub replica_budget: usize,
    /// Query workload issued between churn events.
    pub workload: Workload,
    /// Queries issued per tick of simulated time (0 disables the workload).
    pub queries_per_tick: f64,
    /// TTL of every lookup.
    pub query_ttl: u32,
    /// Lookup algorithm.
    pub query_method: QueryMethod,
    /// Interval between overlay-health samples, in ticks.
    pub snapshot_interval: Tick,
}

impl TraceRunConfig {
    /// A small configuration suitable for tests and examples.
    pub fn small() -> Self {
        TraceRunConfig {
            overlay: OverlayConfig::default(),
            bootstrap_peers: 150,
            catalog_items: 40,
            catalog_skew: 1.0,
            replication: ReplicationStrategy::SquareRoot,
            replica_budget: 200,
            workload: Workload::Stationary,
            queries_per_tick: 1.0,
            query_ttl: 6,
            query_method: QueryMethod::NormalizedFlooding { k_min: 3 },
            snapshot_interval: 50,
        }
    }

    /// Checks the sizes, budgets, and rates of the configuration.
    ///
    /// [`run_trace`] calls this automatically; it is public so declarative layers (for
    /// example `sfo-scenario`) can validate a configuration before replaying anything.
    /// The workload is validated separately against the catalog (see
    /// [`Workload::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.bootstrap_peers == 0 {
            return Err(SimError::InvalidConfig {
                reason: "bootstrap_peers must be positive",
            });
        }
        if self.replica_budget < self.catalog_items {
            return Err(SimError::InvalidConfig {
                reason: "replica budget must allow one copy per catalog item",
            });
        }
        if !self.queries_per_tick.is_finite() || self.queries_per_tick < 0.0 {
            return Err(SimError::InvalidConfig {
                reason: "queries_per_tick must be finite and non-negative",
            });
        }
        if self.snapshot_interval == 0 {
            return Err(SimError::InvalidConfig {
                reason: "snapshot_interval must be positive",
            });
        }
        Ok(())
    }
}

/// Outcome of replaying one churn trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceRunReport {
    /// Periodic overlay-health samples.
    pub samples: Vec<OverlaySample>,
    /// Trace arrivals that were applied (each becomes a join).
    pub arrivals_applied: usize,
    /// Graceful departures applied.
    pub leaves_applied: usize,
    /// Crashes applied.
    pub crashes_applied: usize,
    /// Departure events whose peer had already disappeared (bootstrap victims, double
    /// events) and were skipped.
    pub departures_skipped: usize,
    /// Lookups issued.
    pub queries_issued: usize,
    /// Lookups that found a replica within the TTL.
    pub queries_successful: usize,
    /// Total lookup messages.
    pub query_messages: usize,
    /// Control messages spent on joins and leave repair.
    pub control_messages: usize,
    /// Peers alive when the trace ended.
    pub final_peers: usize,
}

impl TraceRunReport {
    /// Fraction of lookups that succeeded, or 0.0 when none were issued.
    pub fn success_rate(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_successful as f64 / self.queries_issued as f64
        }
    }

    /// Smallest giant-component fraction observed across the samples (1.0 when no sample
    /// was taken).
    pub fn worst_connectivity(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.giant_component_fraction)
            .fold(1.0, f64::min)
    }
}

/// Replays `trace` against a freshly bootstrapped overlay and returns the report.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for inconsistent configurations; overlay errors
/// indicate a bug in the runner itself.
pub fn run_trace<R: Rng + ?Sized>(
    config: &TraceRunConfig,
    trace: &ChurnTrace,
    rng: &mut R,
) -> Result<TraceRunReport> {
    config.validate()?;
    let catalog = Catalog::new(config.catalog_items, config.catalog_skew)?;
    config.workload.validate(&catalog)?;

    let mut overlay = OverlayNetwork::new(config.overlay)?;
    let mut report = TraceRunReport::default();

    for _ in 0..config.bootstrap_peers {
        let outcome = overlay.join(rng);
        report.control_messages += outcome.messages;
    }
    let allocation = allocate(&catalog, config.replication, config.replica_budget)?;
    place(&mut overlay, &allocation, rng)?;

    let mut session_peers: HashMap<usize, PeerId> = HashMap::new();
    let mut now: Tick = 0;
    let mut next_snapshot: Tick = 0;
    let end_time = trace.events.last().map(|e| e.time).unwrap_or(0);

    let issue_queries = |overlay: &OverlayNetwork,
                         report: &mut TraceRunReport,
                         from: Tick,
                         to: Tick,
                         rng: &mut R|
     -> Result<()> {
        if config.queries_per_tick <= 0.0 || overlay.peer_count() == 0 {
            return Ok(());
        }
        let expected = (to.saturating_sub(from)) as f64 * config.queries_per_tick;
        let count = expected.floor() as usize + usize::from(rng.gen::<f64>() < expected.fract());
        if count == 0 {
            return Ok(());
        }
        // The topology is fixed for the whole gap, so freeze it once and serve the gap's
        // lookups as one batch through the engine scheduler (build-once/query-many, now
        // also query-in-parallel). The batch spec — who asks for what — is drawn from
        // the main stream so churn replay stays deterministic; each lookup then runs on
        // its own stream derived from the batch seed, so the outcomes are independent
        // of the engine's worker count.
        let snapshot = QuerySnapshot::capture(overlay);
        let queries = (0..count)
            .map(|_| {
                Ok(BatchQuery {
                    source: overlay.random_peer(rng)?,
                    item: config.workload.sample_query(&catalog, to, rng),
                    ttl: config.query_ttl,
                })
            })
            .collect::<Result<Vec<BatchQuery>>>()?;
        let batch_seed = rng.next_u64();
        let outcomes =
            snapshot.run_query_batch(overlay, config.query_method, &queries, batch_seed, 0)?;
        for outcome in outcomes {
            report.queries_issued += 1;
            report.query_messages += outcome.messages;
            if outcome.found {
                report.queries_successful += 1;
            }
        }
        Ok(())
    };

    for event in &trace.events {
        // Fill the gap since the previous event with workload queries and snapshots.
        issue_queries(&overlay, &mut report, now, event.time, rng)?;
        while next_snapshot <= event.time {
            report.samples.push(sample(&overlay, next_snapshot));
            next_snapshot += config.snapshot_interval;
        }
        now = event.time;

        match event.action {
            ChurnAction::Arrive => {
                let outcome = overlay.join(rng);
                report.control_messages += outcome.messages;
                report.arrivals_applied += 1;
                session_peers.insert(event.session, outcome.peer);
            }
            ChurnAction::DepartGracefully => match session_peers.remove(&event.session) {
                Some(peer) if overlay.contains(peer) => {
                    let outcome = overlay.leave(peer, rng)?;
                    report.control_messages += outcome.messages;
                    report.leaves_applied += 1;
                }
                _ => report.departures_skipped += 1,
            },
            ChurnAction::Crash => match session_peers.remove(&event.session) {
                Some(peer) if overlay.contains(peer) => {
                    overlay.crash(peer)?;
                    report.crashes_applied += 1;
                }
                _ => report.departures_skipped += 1,
            },
        }
    }
    // Final snapshot at the end of the trace.
    report.samples.push(sample(&overlay, end_time));
    report.final_peers = overlay.peer_count();
    Ok(report)
}

fn sample(overlay: &OverlayNetwork, time: Tick) -> OverlaySample {
    let (graph, _) = overlay.snapshot();
    OverlaySample {
        time,
        peers: overlay.peer_count(),
        edges: overlay.edge_count(),
        mean_degree: overlay.mean_degree(),
        max_degree: overlay.max_degree().unwrap_or(0),
        giant_component_fraction: traversal::giant_component_fraction(&graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ItemId;
    use crate::churn::{generate_trace, ChurnTraceConfig, SessionModel};
    use crate::overlay::JoinStrategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_core::DegreeCutoff;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn trace(seed: u64) -> ChurnTrace {
        generate_trace(
            &ChurnTraceConfig {
                duration: 300,
                arrival_rate: 0.4,
                sessions: SessionModel::Exponential { mean: 80.0 },
                crash_fraction: 0.25,
            },
            &mut rng(seed),
        )
        .unwrap()
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let trace = trace(1);
        let mut r = rng(2);
        let mut cfg = TraceRunConfig::small();
        cfg.bootstrap_peers = 0;
        assert!(run_trace(&cfg, &trace, &mut r).is_err());
        cfg = TraceRunConfig::small();
        cfg.replica_budget = 1;
        assert!(run_trace(&cfg, &trace, &mut r).is_err());
        cfg = TraceRunConfig::small();
        cfg.queries_per_tick = -1.0;
        assert!(run_trace(&cfg, &trace, &mut r).is_err());
        cfg = TraceRunConfig::small();
        cfg.snapshot_interval = 0;
        assert!(run_trace(&cfg, &trace, &mut r).is_err());
        cfg = TraceRunConfig::small();
        cfg.workload = Workload::FlashCrowd {
            hot_item: ItemId::new(9_999),
            start: 0,
            end: 10,
            intensity: 0.5,
        };
        assert!(run_trace(&cfg, &trace, &mut r).is_err());
    }

    #[test]
    fn replay_applies_the_trace_and_keeps_the_overlay_searchable() {
        let trace = trace(3);
        let report = run_trace(&TraceRunConfig::small(), &trace, &mut rng(4)).unwrap();
        assert_eq!(report.arrivals_applied, trace.arrivals);
        assert_eq!(
            report.leaves_applied + report.crashes_applied + report.departures_skipped,
            trace.departures()
        );
        assert!(report.queries_issued > 100);
        assert!(
            report.success_rate() > 0.5,
            "success rate {}",
            report.success_rate()
        );
        assert!(!report.samples.is_empty());
        assert!(report.final_peers > 0);
        assert!(
            report.worst_connectivity() > 0.7,
            "worst connectivity {}",
            report.worst_connectivity()
        );
        // Samples respect the default hard cutoff of 30.
        for s in &report.samples {
            assert!(s.max_degree <= 30);
        }
    }

    #[test]
    fn same_trace_same_seed_is_deterministic() {
        let trace = trace(5);
        let a = run_trace(&TraceRunConfig::small(), &trace, &mut rng(6)).unwrap();
        let b = run_trace(&TraceRunConfig::small(), &trace, &mut rng(6)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn same_trace_compares_overlay_configurations_fairly() {
        // The point of trace replay: both configurations see the identical churn sequence.
        let trace = trace(7);
        let mut tight = TraceRunConfig::small();
        tight.overlay = OverlayConfig {
            stubs: 3,
            cutoff: DegreeCutoff::hard(8),
            join_strategy: JoinStrategy::UniformRandom,
            repair_on_leave: true,
        };
        let mut loose = tight.clone();
        loose.overlay.cutoff = DegreeCutoff::Unbounded;
        let report_tight = run_trace(&tight, &trace, &mut rng(8)).unwrap();
        let report_loose = run_trace(&loose, &trace, &mut rng(8)).unwrap();
        assert_eq!(report_tight.arrivals_applied, report_loose.arrivals_applied);
        assert!(report_tight.samples.iter().all(|s| s.max_degree <= 8));
        assert!(report_loose.samples.iter().any(|s| s.max_degree > 8));
    }

    #[test]
    fn workload_can_be_disabled() {
        let trace = trace(9);
        let mut cfg = TraceRunConfig::small();
        cfg.queries_per_tick = 0.0;
        let report = run_trace(&cfg, &trace, &mut rng(10)).unwrap();
        assert_eq!(report.queries_issued, 0);
        assert_eq!(report.success_rate(), 0.0);
        assert!(report.arrivals_applied > 0);
    }

    #[test]
    fn empty_trace_still_reports_the_bootstrap_overlay() {
        let empty = ChurnTrace {
            events: Vec::new(),
            arrivals: 0,
        };
        let report = run_trace(&TraceRunConfig::small(), &empty, &mut rng(11)).unwrap();
        assert_eq!(report.arrivals_applied, 0);
        assert_eq!(report.final_peers, 150);
        assert_eq!(report.samples.len(), 1, "only the final snapshot");
    }
}
