//! End-to-end overlay simulation: churn plus a query workload, driven by the discrete-event
//! queue.
//!
//! The simulation bootstraps an overlay, replicates a Zipf-popular item catalog over the
//! peers, then processes join, leave, crash, query, and snapshot events whose interarrival
//! times are exponential with configurable rates. The report tracks overlay health (size,
//! degrees, connectivity) over time alongside query success rates and messaging cost —
//! exactly the quantities one needs to judge whether hard cutoffs plus simple join/repair
//! rules keep an unstructured overlay searchable under churn (the paper's future-work
//! question).

use crate::catalog::Catalog;
use crate::events::{Event, EventKind, EventQueue, Tick};
use crate::overlay::{OverlayConfig, OverlayNetwork};
use crate::query::{QueryMethod, QuerySnapshot};
use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sfo_graph::traversal;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Number of peers joined before the clock starts.
    pub initial_peers: usize,
    /// Length of the run in ticks.
    pub duration: Tick,
    /// Expected peer joins per tick (0 disables joins).
    pub join_rate: f64,
    /// Expected graceful leaves per tick (0 disables leaves).
    pub leave_rate: f64,
    /// Expected crashes per tick (0 disables crashes).
    pub crash_rate: f64,
    /// Expected queries per tick (0 disables the workload).
    pub query_rate: f64,
    /// Time-to-live of every query.
    pub query_ttl: u32,
    /// Lookup algorithm used by queries.
    pub query_method: QueryMethod,
    /// Live-overlay configuration (stubs, cutoff, join strategy, repair).
    pub overlay: OverlayConfig,
    /// Number of items in the catalog.
    pub catalog_items: usize,
    /// Zipf skew of query popularity.
    pub catalog_skew: f64,
    /// Replicas of the most popular item (others follow the square-root rule).
    pub base_replicas: usize,
    /// Interval between overlay-health snapshots, in ticks.
    pub snapshot_interval: Tick,
}

impl SimulationConfig {
    /// A small configuration suitable for unit tests and doc examples: a few hundred peers,
    /// moderate churn, normalized-flooding queries.
    pub fn small() -> Self {
        SimulationConfig {
            initial_peers: 200,
            duration: 200,
            join_rate: 0.5,
            leave_rate: 0.3,
            crash_rate: 0.1,
            query_rate: 2.0,
            query_ttl: 6,
            query_method: QueryMethod::NormalizedFlooding { k_min: 3 },
            overlay: OverlayConfig::default(),
            catalog_items: 50,
            catalog_skew: 1.0,
            base_replicas: 8,
            snapshot_interval: 25,
        }
    }

    /// Checks every rate, size, and interval of the configuration.
    ///
    /// [`Simulation::new`] calls this automatically; it is public so declarative layers
    /// (for example `sfo-scenario`) can validate a configuration without constructing a
    /// simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.initial_peers == 0 {
            return Err(SimError::InvalidConfig {
                reason: "initial_peers must be positive",
            });
        }
        if self.duration == 0 {
            return Err(SimError::InvalidConfig {
                reason: "duration must be positive",
            });
        }
        for rate in [
            self.join_rate,
            self.leave_rate,
            self.crash_rate,
            self.query_rate,
        ] {
            if !rate.is_finite() || rate < 0.0 {
                return Err(SimError::InvalidConfig {
                    reason: "event rates must be finite and non-negative",
                });
            }
        }
        if self.snapshot_interval == 0 {
            return Err(SimError::InvalidConfig {
                reason: "snapshot_interval must be positive",
            });
        }
        if self.base_replicas == 0 {
            return Err(SimError::InvalidConfig {
                reason: "base_replicas must be positive",
            });
        }
        Ok(())
    }
}

/// One overlay-health sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlaySample {
    /// When the sample was taken.
    pub time: Tick,
    /// Number of live peers.
    pub peers: usize,
    /// Number of overlay links.
    pub edges: usize,
    /// Mean peer degree.
    pub mean_degree: f64,
    /// Largest peer degree (bounded by the hard cutoff).
    pub max_degree: usize,
    /// Fraction of peers in the largest connected component.
    pub giant_component_fraction: f64,
}

/// Aggregate result of a simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Periodic overlay-health samples.
    pub samples: Vec<OverlaySample>,
    /// Number of queries issued.
    pub queries_issued: usize,
    /// Number of queries that found a replica within their TTL.
    pub queries_successful: usize,
    /// Total messages spent by queries.
    pub query_messages: usize,
    /// Total hops to the first replica, summed over successful queries.
    pub total_hops_to_find: u64,
    /// Number of peers that joined after bootstrap.
    pub joins: usize,
    /// Number of graceful leaves.
    pub leaves: usize,
    /// Number of crashes.
    pub crashes: usize,
    /// Control messages spent by joins (neighbor probes).
    pub join_messages: usize,
    /// Control messages spent by leaves (notifications and repair probes).
    pub leave_messages: usize,
    /// Number of peers alive at the end of the run.
    pub final_peers: usize,
}

impl SimReport {
    /// Fraction of queries that succeeded, or 0.0 when none were issued.
    pub fn success_rate(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_successful as f64 / self.queries_issued as f64
        }
    }

    /// Mean messages per query, or 0.0 when none were issued.
    pub fn mean_query_messages(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.query_messages as f64 / self.queries_issued as f64
        }
    }

    /// Mean hops to the first replica over successful queries, or 0.0 when none succeeded.
    pub fn mean_hops_to_find(&self) -> f64 {
        if self.queries_successful == 0 {
            0.0
        } else {
            self.total_hops_to_find as f64 / self.queries_successful as f64
        }
    }

    /// Mean control messages per churn event (join, leave), or 0.0 without churn.
    pub fn mean_churn_messages(&self) -> f64 {
        let events = self.joins + self.leaves;
        if events == 0 {
            0.0
        } else {
            (self.join_messages + self.leave_messages) as f64 / events as f64
        }
    }
}

/// A configured simulation, ready to run.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimulationConfig,
}

impl Simulation {
    /// Creates a simulation from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any rate, size, or interval is out of range.
    pub fn new(config: SimulationConfig) -> Result<Self> {
        config.validate()?;
        Ok(Simulation { config })
    }

    /// Returns the configuration this simulation will run.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates overlay errors, which indicate a bug in the simulator rather than a user
    /// mistake (all event handlers check their preconditions).
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<SimReport> {
        let cfg = &self.config;
        let mut overlay = OverlayNetwork::new(cfg.overlay)?;
        let catalog = Catalog::new(cfg.catalog_items, cfg.catalog_skew)?;
        let mut report = SimReport::default();

        // Bootstrap peers.
        for _ in 0..cfg.initial_peers {
            overlay.join(rng);
        }

        // Replicate the catalog over the bootstrap population.
        for rank in 0..cfg.catalog_items as u64 {
            let replicas = catalog.replica_count(rank, cfg.base_replicas);
            for _ in 0..replicas {
                let holder = overlay.random_peer(rng)?;
                overlay.store_item(holder, crate::catalog::ItemId::new(rank))?;
            }
        }

        let mut queue = EventQueue::new();
        let schedule_next =
            |queue: &mut EventQueue, now: Tick, kind: EventKind, rate: f64, rng: &mut R| {
                if rate <= 0.0 {
                    return;
                }
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let gap = (-u.ln() / rate).ceil().max(1.0) as Tick;
                queue.schedule(Event {
                    time: now + gap,
                    kind,
                });
            };

        schedule_next(&mut queue, 0, EventKind::PeerJoin, cfg.join_rate, rng);
        schedule_next(&mut queue, 0, EventKind::PeerLeave, cfg.leave_rate, rng);
        schedule_next(&mut queue, 0, EventKind::PeerCrash, cfg.crash_rate, rng);
        schedule_next(&mut queue, 0, EventKind::Query, cfg.query_rate, rng);
        queue.schedule(Event {
            time: 0,
            kind: EventKind::Snapshot,
        });

        // Frozen CSR view of the topology serving the query batch between churn events:
        // invalidated by every join / leave / crash, re-captured lazily on the next query
        // or health snapshot. The capture is a single O(peers + links) pass — comparable
        // to one deep flood — so it amortizes once a churn gap holds a couple of queries
        // or a health sample; query-heavy configurations amortize it many times over.
        let mut frozen: Option<QuerySnapshot> = None;

        while let Some(event) = queue.pop() {
            if event.time > cfg.duration {
                break;
            }
            match event.kind {
                EventKind::PeerJoin => {
                    let outcome = overlay.join(rng);
                    report.joins += 1;
                    report.join_messages += outcome.messages;
                    frozen = None;
                    schedule_next(
                        &mut queue,
                        event.time,
                        EventKind::PeerJoin,
                        cfg.join_rate,
                        rng,
                    );
                }
                EventKind::PeerLeave => {
                    if overlay.peer_count() > 2 {
                        let victim = overlay.random_peer(rng)?;
                        let outcome = overlay.leave(victim, rng)?;
                        report.leaves += 1;
                        report.leave_messages += outcome.messages;
                        frozen = None;
                    }
                    schedule_next(
                        &mut queue,
                        event.time,
                        EventKind::PeerLeave,
                        cfg.leave_rate,
                        rng,
                    );
                }
                EventKind::PeerCrash => {
                    if overlay.peer_count() > 2 {
                        let victim = overlay.random_peer(rng)?;
                        overlay.crash(victim)?;
                        report.crashes += 1;
                        frozen = None;
                    }
                    schedule_next(
                        &mut queue,
                        event.time,
                        EventKind::PeerCrash,
                        cfg.crash_rate,
                        rng,
                    );
                }
                EventKind::Query => {
                    if overlay.peer_count() > 0 {
                        let snapshot =
                            frozen.get_or_insert_with(|| QuerySnapshot::capture(&overlay));
                        let source = overlay.random_peer(rng)?;
                        let item = catalog.sample_query(rng);
                        let outcome = snapshot.run_query(
                            &overlay,
                            cfg.query_method,
                            source,
                            item,
                            cfg.query_ttl,
                            rng,
                        )?;
                        report.queries_issued += 1;
                        report.query_messages += outcome.messages;
                        if outcome.found {
                            report.queries_successful += 1;
                            report.total_hops_to_find +=
                                u64::from(outcome.hops_to_find.unwrap_or(0));
                        }
                    }
                    schedule_next(
                        &mut queue,
                        event.time,
                        EventKind::Query,
                        cfg.query_rate,
                        rng,
                    );
                }
                EventKind::Snapshot => {
                    let snapshot = frozen.get_or_insert_with(|| QuerySnapshot::capture(&overlay));
                    report.samples.push(OverlaySample {
                        time: event.time,
                        peers: overlay.peer_count(),
                        edges: overlay.edge_count(),
                        mean_degree: overlay.mean_degree(),
                        max_degree: overlay.max_degree().unwrap_or(0),
                        giant_component_fraction: traversal::giant_component_fraction(
                            snapshot.graph(),
                        ),
                    });
                    let next = event.time + cfg.snapshot_interval;
                    if next <= cfg.duration {
                        queue.schedule(Event {
                            time: next,
                            kind: EventKind::Snapshot,
                        });
                    }
                }
            }
        }

        report.final_peers = overlay.peer_count();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sfo_core::DegreeCutoff;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let mut cfg = SimulationConfig::small();
        cfg.initial_peers = 0;
        assert!(Simulation::new(cfg).is_err());
        cfg = SimulationConfig::small();
        cfg.duration = 0;
        assert!(Simulation::new(cfg).is_err());
        cfg = SimulationConfig::small();
        cfg.join_rate = -1.0;
        assert!(Simulation::new(cfg).is_err());
        cfg = SimulationConfig::small();
        cfg.snapshot_interval = 0;
        assert!(Simulation::new(cfg).is_err());
        cfg = SimulationConfig::small();
        cfg.base_replicas = 0;
        assert!(Simulation::new(cfg).is_err());
    }

    #[test]
    fn small_run_produces_activity_and_snapshots() {
        let sim = Simulation::new(SimulationConfig::small()).unwrap();
        let report = sim.run(&mut rng(1)).unwrap();
        assert!(report.queries_issued > 50);
        assert!(report.queries_successful > 0);
        assert!(
            report.success_rate() > 0.3,
            "success rate {}",
            report.success_rate()
        );
        assert!(report.joins > 0);
        assert!(report.leaves > 0);
        assert!(!report.samples.is_empty());
        assert!(report.final_peers > 0);
        assert!(report.mean_query_messages() > 0.0);
        assert!(report.mean_hops_to_find() >= 0.0);
        assert!(report.mean_churn_messages() > 0.0);
        // Snapshots are ordered in time and respect the cutoff.
        for w in report.samples.windows(2) {
            assert!(w[0].time < w[1].time);
        }
        for s in &report.samples {
            assert!(s.max_degree <= 30);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let sim = Simulation::new(SimulationConfig::small()).unwrap();
        let a = sim.run(&mut rng(42)).unwrap();
        let b = sim.run(&mut rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pure_churn_run_without_queries() {
        let mut cfg = SimulationConfig::small();
        cfg.query_rate = 0.0;
        cfg.duration = 100;
        let report = Simulation::new(cfg).unwrap().run(&mut rng(3)).unwrap();
        assert_eq!(report.queries_issued, 0);
        assert_eq!(report.success_rate(), 0.0);
        assert_eq!(report.mean_query_messages(), 0.0);
        assert!(report.joins + report.leaves + report.crashes > 0);
    }

    #[test]
    fn heavy_leave_rate_shrinks_the_overlay_but_keeps_it_connected() {
        let mut cfg = SimulationConfig::small();
        cfg.initial_peers = 300;
        cfg.join_rate = 0.2;
        cfg.leave_rate = 1.0;
        cfg.crash_rate = 0.5;
        cfg.duration = 150;
        cfg.query_rate = 0.0;
        cfg.overlay.stubs = 3;
        cfg.overlay.cutoff = DegreeCutoff::hard(20);
        let report = Simulation::new(cfg).unwrap().run(&mut rng(5)).unwrap();
        assert!(report.final_peers < 300);
        let last = report.samples.last().unwrap();
        assert!(
            last.giant_component_fraction > 0.8,
            "repair should keep the overlay mostly connected, got {}",
            last.giant_component_fraction
        );
    }

    #[test]
    fn config_accessor_round_trips() {
        let cfg = SimulationConfig::small();
        let sim = Simulation::new(cfg).unwrap();
        assert_eq!(sim.config(), &cfg);
    }
}
