//! Data items, Zipf popularity, and replication.
//!
//! Unstructured P2P searches serve a workload of item lookups whose popularity is highly
//! skewed; the standard model (and the one used by the replication literature the paper
//! cites) is a Zipf distribution over the item catalog. Replicas of each item are placed on
//! uniformly random peers, with a count proportional to a configurable baseline.

use crate::{Result, SimError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data item in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(u64);

impl ItemId {
    /// Creates an item id from its catalog rank (0 is the most popular item).
    pub fn new(rank: u64) -> Self {
        ItemId(rank)
    }

    /// Returns the catalog rank of this item.
    pub fn rank(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// A catalog of items whose query popularity follows a Zipf law.
///
/// Item `i` (0-based rank) is requested with probability proportional to `1 / (i + 1)^s`
/// where `s` is the skew exponent.
///
/// # Example
///
/// ```
/// use sfo_sim::catalog::Catalog;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), sfo_sim::SimError> {
/// let catalog = Catalog::new(100, 1.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let item = catalog.sample_query(&mut rng);
/// assert!(item.rank() < 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    items: usize,
    skew: f64,
    /// Cumulative query-probability table over ranks.
    cdf: Vec<f64>,
}

impl Catalog {
    /// Creates a catalog of `items` items with Zipf skew `skew` (0 gives uniform
    /// popularity).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `items` is zero or `skew` is negative or not
    /// finite.
    pub fn new(items: usize, skew: f64) -> Result<Self> {
        if items == 0 {
            return Err(SimError::InvalidConfig {
                reason: "catalog must contain at least one item",
            });
        }
        if !skew.is_finite() || skew < 0.0 {
            return Err(SimError::InvalidConfig {
                reason: "zipf skew must be finite and non-negative",
            });
        }
        let weights: Vec<f64> = (0..items)
            .map(|i| 1.0 / ((i + 1) as f64).powf(skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(items);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Catalog { items, skew, cdf })
    }

    /// Returns the number of items in the catalog.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Returns `true` if the catalog contains no items (never the case for a constructed
    /// catalog, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Returns the Zipf skew exponent.
    pub fn skew(&self) -> f64 {
        self.skew
    }

    /// Returns the query probability of the item with the given rank, or 0 outside the
    /// catalog.
    pub fn query_probability(&self, rank: u64) -> f64 {
        let idx = rank as usize;
        if idx >= self.items {
            return 0.0;
        }
        let prev = if idx == 0 { 0.0 } else { self.cdf[idx - 1] };
        self.cdf[idx] - prev
    }

    /// Samples the item targeted by a query according to the Zipf popularity.
    pub fn sample_query<R: Rng + ?Sized>(&self, rng: &mut R) -> ItemId {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.items - 1);
        ItemId::new(idx as u64)
    }

    /// Returns the number of replicas to place for the item of the given rank when the
    /// most popular item gets `base_replicas` copies and replication follows the square
    /// root of popularity (the near-optimal rule from Cohen & Shenker that the paper
    /// cites).
    pub fn replica_count(&self, rank: u64, base_replicas: usize) -> usize {
        let p = self.query_probability(rank);
        let p0 = self.query_probability(0);
        if p0 <= 0.0 {
            return 1;
        }
        (((p / p0).sqrt() * base_replicas as f64).round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_catalogs_are_rejected() {
        assert!(Catalog::new(0, 1.0).is_err());
        assert!(Catalog::new(10, -0.5).is_err());
        assert!(Catalog::new(10, f64::NAN).is_err());
    }

    #[test]
    fn probabilities_sum_to_one_and_decrease_with_rank() {
        let c = Catalog::new(50, 0.8).unwrap();
        let total: f64 = (0..50).map(|r| c.query_probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 0..49 {
            assert!(c.query_probability(r) >= c.query_probability(r + 1));
        }
        assert_eq!(c.query_probability(50), 0.0);
        assert_eq!(c.len(), 50);
        assert!(!c.is_empty());
        assert_eq!(c.skew(), 0.8);
    }

    #[test]
    fn zero_skew_is_uniform() {
        let c = Catalog::new(20, 0.0).unwrap();
        for r in 0..20 {
            assert!((c.query_probability(r) - 0.05).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_respects_popularity() {
        let c = Catalog::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[c.sample_query(&mut rng).rank() as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        let empirical_top = counts[0] as f64 / 20_000.0;
        assert!((empirical_top - c.query_probability(0)).abs() < 0.02);
    }

    #[test]
    fn replica_counts_follow_square_root_rule() {
        let c = Catalog::new(100, 1.0).unwrap();
        let top = c.replica_count(0, 16);
        assert_eq!(top, 16);
        let fourth = c.replica_count(3, 16);
        // Popularity of rank 3 is 1/4 of rank 0, so sqrt gives half the replicas.
        assert_eq!(fourth, 8);
        assert_eq!(
            c.replica_count(9_999, 16),
            1,
            "items outside the catalog still get one copy"
        );
    }

    #[test]
    fn item_id_display_and_rank() {
        let item = ItemId::new(7);
        assert_eq!(item.rank(), 7);
        assert_eq!(item.to_string(), "item7");
    }
}
