//! The batched query scheduler: a persistent worker pool with work stealing.
//!
//! Batches in this workspace are large sets of small, fully independent jobs (one search
//! or lookup each, with its own derived RNG stream), so the scheduler is built around
//! contiguous job ranges: the batch is split into one range per worker, a worker pops
//! jobs from the front of its own range, and a worker that runs dry steals the back half
//! of the fullest remaining range. Ranges live behind plain mutexes — a job costs
//! microseconds to milliseconds, so queue operations are noise — and results are keyed
//! by job index, which makes the output order (and, because every job derives its own
//! RNG from its index, every result) independent of the worker count and of who stole
//! what.
//!
//! Two frontends share the stealing core:
//!
//! * [`WorkerPool`] — a persistent pool: threads are spawned once and reused across
//!   batches, the shape a long-lived query-serving process wants. Jobs must be
//!   `'static` (share state via `Arc`).
//! * [`execute`] — a scoped one-shot run for jobs that borrow local state (the churn
//!   simulator's query batches borrow the live overlay, which cannot be `Arc`'d away).
//!
//! Both frontends come in a `_with_scratch` flavor ([`WorkerPool::run_with_scratch`],
//! [`execute_with_scratch`]) that hands every job a per-worker [`SearchScratch`] arena:
//! each worker thread owns exactly one arena for its whole lifetime and reuses it across
//! jobs and batches, so the hot path allocates nothing per query. The arena is pure
//! workspace memory — it never feeds the job's RNG stream — so outcomes stay
//! byte-identical to the allocate-fresh paths.
//!
//! The persistent pool carries telemetry (an `sfo-obs` [`Registry`], see
//! [`WorkerPool::with_metrics`]): jobs executed, steals, per-worker queue depths, and
//! per-batch wall time. Recording is relaxed atomics at points the scheduler already
//! passes through — it never touches a job's RNG stream and never reorders work, so a
//! metered pool's results are byte-identical to an unmetered one's.

use sfo_obs::{Counter, Histogram, PhaseTimer, Registry};
use sfo_search::SearchScratch;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Configuration of the batched query scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Number of worker threads (0 = all available cores).
    pub workers: usize,
}

impl EngineConfig {
    /// A configuration with an explicit worker count (0 = all available cores).
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig { workers }
    }

    /// Resolves the configured count to a concrete number of workers.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }
}

/// Resolves a requested worker count (0 = all available cores) to at least 1.
pub(crate) fn resolve_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

// ---------------------------------------------------------------------------------------
// The stealing core, shared by the persistent pool and the scoped executor.

/// Per-worker job ranges over `0..jobs`, contiguous and near-equal.
fn split_ranges(jobs: usize, workers: usize) -> Vec<Mutex<(usize, usize)>> {
    let base = jobs / workers;
    let big = jobs % workers;
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let len = base + usize::from(w < big);
            let range = (start, start + len);
            start += len;
            Mutex::new(range)
        })
        .collect()
}

/// Claims the next job for worker `me`: the front of its own range, or — once that runs
/// dry — the back half of the fullest other range. Returns `None` when no jobs remain;
/// the flag is true when the job was stolen rather than popped from `me`'s own range.
fn claim(queues: &[Mutex<(usize, usize)>], me: usize) -> Option<(usize, bool)> {
    {
        let mut own = queues[me].lock().expect("queue lock");
        if own.0 < own.1 {
            let job = own.0;
            own.0 += 1;
            return Some((job, false));
        }
    }
    loop {
        // Pick the victim with the most remaining work.
        let mut best: Option<(usize, usize)> = None;
        for (victim, queue) in queues.iter().enumerate() {
            if victim == me {
                continue;
            }
            let queue = queue.lock().expect("queue lock");
            let len = queue.1 - queue.0;
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((victim, len));
            }
        }
        let (victim, _) = best?;
        // Re-lock and take the back half (the range may have shrunk in between).
        let (start, end) = {
            let mut queue = queues[victim].lock().expect("queue lock");
            let len = queue.1 - queue.0;
            if len == 0 {
                continue; // someone drained it first; rescan
            }
            let take = len.div_ceil(2);
            queue.1 -= take;
            (queue.1, queue.1 + take)
        };
        // Run the first stolen job now; the rest refill our own queue.
        if end - start > 1 {
            let mut own = queues[me].lock().expect("queue lock");
            *own = (start + 1, end);
        }
        return Some((start, true));
    }
}

/// Runs `jobs` independent jobs across `workers` scoped threads with work stealing and
/// returns the results in job order.
///
/// The job closure may borrow local state (the threads are scoped); results are
/// independent of the worker count as long as each job is a pure function of its index.
/// With one worker (or at most one job) the jobs run inline on the calling thread.
///
/// # Panics
///
/// Propagates panics from the job closure.
pub fn execute<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    execute_with_scratch(workers, jobs, |i, _| job(i))
}

/// [`execute`] with a per-worker [`SearchScratch`] arena.
///
/// Each worker thread (and the inline single-worker path) owns exactly one arena, reused
/// for every job it claims or steals. The arena is a pure workspace — jobs must not let
/// it influence their RNG draws — so results remain independent of the worker count and
/// byte-identical to a run that allocates fresh scratch per job.
///
/// # Panics
///
/// Propagates panics from the job closure.
pub fn execute_with_scratch<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut SearchScratch) -> T + Sync,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    if workers <= 1 {
        let mut scratch = SearchScratch::new();
        return (0..jobs).map(|i| job(i, &mut scratch)).collect();
    }
    let queues = split_ranges(jobs, workers);
    let mut chunks: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let queues = &queues;
        let job = &job;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = SearchScratch::new();
                    let mut results = Vec::new();
                    while let Some((index, _stolen)) = claim(queues, w) {
                        results.push((index, job(index, &mut scratch)));
                    }
                    results
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for chunk in &mut chunks {
        for (index, value) in chunk.drain(..) {
            debug_assert!(slots[index].is_none(), "job {index} ran twice");
            slots[index] = Some(value);
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("job {i} was never claimed")))
        .collect()
}

// ---------------------------------------------------------------------------------------
// The persistent pool.

/// Type-erased job runner: executes job `i` with the worker's scratch arena and
/// stores its result.
type BatchRunner = Arc<dyn Fn(usize, &mut SearchScratch) + Send + Sync>;

/// One installed batch, shared with every worker.
#[derive(Clone)]
struct Batch {
    /// Identity of the batch inside the active set (monotonic submission counter).
    id: u64,
    runner: BatchRunner,
    /// The per-worker stealing queues of this batch.
    queues: Arc<Vec<Mutex<(usize, usize)>>>,
    /// Jobs not yet completed; the worker finishing the last one signals `done`.
    pending: Arc<AtomicUsize>,
    /// First panic payload caught from a job; re-thrown by the submitter. Catching the
    /// unwind on the worker keeps `pending` counting down (no deadlocked submitter)
    /// and keeps the worker thread alive for later batches.
    panic: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
}

struct PoolState {
    /// Monotonic batch counter; the next submitted batch takes this id.
    next_id: u64,
    /// Every batch currently submitted and not yet fully drained. Workers scan the set
    /// in submission order, so earlier batches keep priority while later ones fill any
    /// idle workers — concurrent submitters (multiple scenario tasks, multiple network
    /// clients) simply coexist instead of serializing.
    batches: Vec<Batch>,
    shutdown: bool,
}

/// The pool's telemetry, pre-resolved from its [`Registry`] once at construction so
/// the claim path records through plain `Arc`s without any name lookup. Counters and
/// histograms are relaxed atomics: they observe the schedule, they never shape it, and
/// no metric feeds a job's RNG stream — batch results stay byte-identical with
/// telemetry on or off.
struct PoolMetrics {
    /// `engine.jobs`: jobs executed, across all batches (inline ones included).
    jobs: Arc<Counter>,
    /// `engine.steals`: claims served by stealing from another worker's range.
    steals: Arc<Counter>,
    /// `engine.batches`: batches submitted (inline ones included).
    batches: Arc<Counter>,
    /// `engine.queue_depth`: per-worker queue length at batch submission.
    queue_depth: Arc<Histogram>,
    /// `engine.batch_micros`: wall time of each batch, submit to drain.
    batch_micros: Arc<Histogram>,
}

impl PoolMetrics {
    fn register(registry: &Registry) -> Self {
        PoolMetrics {
            jobs: registry.counter("engine.jobs"),
            steals: registry.counter("engine.steals"),
            batches: registry.counter("engine.batches"),
            queue_depth: registry.histogram("engine.queue_depth"),
            batch_micros: registry.histogram("engine.batch_micros"),
        }
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a new batch is installed or the pool shuts down.
    ready: Condvar,
    /// Signalled when the last job of a batch completes.
    done: Condvar,
    /// Pre-resolved telemetry shared with every worker thread.
    metrics: PoolMetrics,
}

/// A persistent pool of worker threads executing query batches with work stealing.
///
/// Threads are spawned once at construction and reused for every batch — the shape a
/// long-lived query-serving process wants, and what makes per-batch latency independent
/// of thread spawn cost. Batches are submitted through [`WorkerPool::run`] (or the
/// typed search frontend in [`crate::batch`]); any number of threads may submit
/// concurrently — each submission joins the active batch set and workers drain the set
/// in submission order, so a snapshot-serving daemon can fan several clients' batches
/// over one pool — and results come back in job order regardless of which worker ran
/// what.
///
/// # Example
///
/// ```
/// use sfo_engine::{EngineConfig, WorkerPool};
///
/// let pool = WorkerPool::new(EngineConfig::with_workers(4));
/// let squares = pool.run(10, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    registry: Arc<Registry>,
}

impl WorkerPool {
    /// Spawns the pool's worker threads with a private metrics registry.
    pub fn new(config: EngineConfig) -> Self {
        WorkerPool::with_metrics(config, Arc::new(Registry::new()))
    }

    /// Spawns the pool's worker threads, recording telemetry into `registry`.
    ///
    /// The pool registers `engine.jobs`, `engine.steals`, and `engine.batches`
    /// counters plus `engine.queue_depth` and `engine.batch_micros` histograms. A
    /// caller that owns a wider registry (the `sfo serve` daemon, the scenario
    /// runner) passes it here so one [`Registry::snapshot`] covers every layer.
    /// Telemetry is pure observation: it never touches a job's RNG stream and never
    /// reorders work, so results are byte-identical to an unobserved pool.
    pub fn with_metrics(config: EngineConfig, registry: Arc<Registry>) -> Self {
        let workers = config.effective_workers();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                next_id: 0,
                batches: Vec::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            done: Condvar::new(),
            metrics: PoolMetrics::register(&registry),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sfo-engine-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning engine worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
            registry,
        }
    }

    /// Returns the number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The registry this pool records telemetry into (the one passed to
    /// [`WorkerPool::with_metrics`], or a private one for [`WorkerPool::new`]).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Runs `jobs` independent jobs across the pool and returns the results in job
    /// order.
    ///
    /// The job closure must be `'static` (share state via `Arc`); use [`execute`] for
    /// jobs that borrow. Batches of at most one job (or on a single-worker pool) run
    /// inline on the calling thread. Results are independent of the worker count as long
    /// as each job is a pure function of its index.
    ///
    /// Submissions from different threads run concurrently: each batch joins the pool's
    /// active set, workers prefer earlier submissions and steal into later ones, and
    /// every submitter wakes when its own batch drains.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any job raised: the unwind is caught on the worker (so
    /// the batch still drains and the pool stays usable for later batches) and resumed
    /// on the calling thread once the batch is done.
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize) -> T + Send + Sync + 'static,
    {
        self.run_with_scratch(jobs, move |i, _| job(i))
    }

    /// [`WorkerPool::run`] with a per-worker [`SearchScratch`] arena.
    ///
    /// Every pool thread owns exactly one arena for its whole lifetime and hands it to
    /// each job it runs, across jobs *and* across batches — the hot path of a long-lived
    /// query-serving process allocates no per-query scratch. Jobs must treat the arena
    /// as a pure workspace (reset before use, never feeding RNG draws), which keeps
    /// results byte-identical to [`WorkerPool::run`] and to a serial loop.
    ///
    /// # Panics
    ///
    /// Same contract as [`WorkerPool::run`].
    pub fn run_with_scratch<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(usize, &mut SearchScratch) -> T + Send + Sync + 'static,
    {
        let timer = PhaseTimer::start();
        let metrics = &self.shared.metrics;
        metrics.batches.inc();
        if jobs <= 1 || self.workers <= 1 {
            metrics.queue_depth.record(jobs as u64);
            let mut scratch = SearchScratch::new();
            let out: Vec<T> = (0..jobs).map(|i| job(i, &mut scratch)).collect();
            metrics.jobs.add(jobs as u64);
            timer.observe(&metrics.batch_micros);
            return out;
        }

        let slots: Arc<Vec<Mutex<Option<T>>>> =
            Arc::new((0..jobs).map(|_| Mutex::new(None)).collect());
        let runner = {
            let slots = Arc::clone(&slots);
            Arc::new(move |index: usize, scratch: &mut SearchScratch| {
                let value = job(index, scratch);
                *slots[index].lock().expect("result slot lock") = Some(value);
            })
        };
        let pending = Arc::new(AtomicUsize::new(jobs));
        let panic_slot = Arc::new(Mutex::new(None));

        let queues = Arc::new(split_ranges(jobs, self.workers));
        for queue in queues.iter() {
            let (start, end) = *queue.lock().expect("queue lock");
            metrics.queue_depth.record((end - start) as u64);
        }

        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            let id = state.next_id;
            state.next_id += 1;
            state.batches.push(Batch {
                id,
                runner,
                queues,
                pending: Arc::clone(&pending),
                panic: Arc::clone(&panic_slot),
            });
            self.shared.ready.notify_all();
            while pending.load(Ordering::SeqCst) > 0 {
                state = self.shared.done.wait(state).expect("pool state lock");
            }
            state.batches.retain(|b| b.id != id);
        }
        timer.observe(&metrics.batch_micros);

        let caught = panic_slot.lock().expect("panic slot lock").take();
        if let Some(payload) = caught {
            std::panic::resume_unwind(payload);
        }
        slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.lock()
                    .expect("result slot lock")
                    .take()
                    .unwrap_or_else(|| panic!("job {i} completed without a result"))
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
            self.shared.ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, me: usize) {
    // One scratch arena per worker thread, alive for the thread's whole lifetime and
    // reused across every job of every batch. Jobs reset it before use; it never feeds
    // their RNG streams, so reuse is invisible in the results.
    let mut scratch = SearchScratch::new();
    loop {
        // Claim one job from the earliest active batch that still has queued work (or
        // exit on shutdown). Claiming under the state lock serializes queue access,
        // which is noise next to millisecond-scale jobs and keeps the scan race-free
        // against batch insertion and removal.
        let (batch, index, stolen) = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if state.shutdown {
                    return;
                }
                let claimed = state.batches.iter().find_map(|b| {
                    claim(&b.queues, me).map(|(index, stolen)| (b.clone(), index, stolen))
                });
                if let Some(claimed) = claimed {
                    break claimed;
                }
                state = shared.ready.wait(state).expect("pool state lock");
            }
        };
        shared.metrics.jobs.inc();
        if stolen {
            shared.metrics.steals.inc();
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (batch.runner)(index, &mut scratch)
        }));
        if let Err(payload) = outcome {
            batch
                .panic
                .lock()
                .expect("panic slot lock")
                .get_or_insert(payload);
        }
        if batch.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last job: wake the submitter. Taking the state lock first makes the
            // notify race-free against the submitter's check-then-wait.
            let _state = shared.state.lock().expect("pool state lock");
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_everything_contiguously() {
        for (jobs, workers) in [(10usize, 3usize), (7, 7), (3, 8), (100, 4), (1, 1)] {
            let queues = split_ranges(jobs, workers);
            assert_eq!(queues.len(), workers);
            let mut expected = 0;
            for queue in &queues {
                let (start, end) = *queue.lock().unwrap();
                assert_eq!(start, expected);
                assert!(end >= start);
                expected = end;
            }
            assert_eq!(expected, jobs);
        }
    }

    #[test]
    fn scoped_execute_returns_results_in_job_order() {
        let doubled = execute(4, 100, |i| i * 2);
        assert_eq!(doubled.len(), 100);
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn scoped_execute_handles_edge_shapes() {
        assert_eq!(execute(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(execute(4, 1, |i| i + 7), vec![7]);
        assert_eq!(execute(1, 5, |i| i), vec![0, 1, 2, 3, 4]);
        // More workers than jobs.
        assert_eq!(execute(16, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn scoped_execute_is_worker_count_independent() {
        let reference: Vec<u64> = (0..200).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [1usize, 2, 3, 8] {
            let got = execute(workers, 200, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(got, reference, "{workers} workers");
        }
    }

    #[test]
    fn stealing_drains_unbalanced_workloads() {
        // Give the jobs wildly uneven costs: stealing must still complete everything.
        let out = execute(4, 64, |i| {
            if i < 4 {
                // A few heavy jobs pin their owners...
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate().skip(4) {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn pool_runs_batches_in_order_and_is_reusable() {
        let pool = WorkerPool::new(EngineConfig::with_workers(3));
        assert_eq!(pool.workers(), 3);
        for round in 0..5usize {
            let out = pool.run(50, move |i| i + round);
            assert_eq!(out, (0..50).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_handles_tiny_batches_inline() {
        let pool = WorkerPool::new(EngineConfig::with_workers(4));
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |_| 42), vec![42]);
    }

    #[test]
    fn pool_results_match_scoped_execute() {
        let pool = WorkerPool::new(EngineConfig::with_workers(4));
        let from_pool = pool.run(120, |i| (i as u64).rotate_left(7));
        let from_scope = execute(2, 120, |i| (i as u64).rotate_left(7));
        assert_eq!(from_pool, from_scope);
    }

    #[test]
    fn pool_propagates_job_panics_and_stays_usable() {
        let pool = WorkerPool::new(EngineConfig::with_workers(3));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(16, |i| {
                if i == 7 {
                    panic!("job 7 exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("the job panic must reach the submitter");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "job 7 exploded");
        // The batch drained and the pool (including its submit turn) is intact.
        assert_eq!(pool.run(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn pool_accepts_concurrent_batches_from_many_threads() {
        // The per-batch queue sets mean submissions no longer serialize: four threads
        // submit interleaved batches and each must get exactly its own results back.
        let pool = WorkerPool::new(EngineConfig::with_workers(3));
        std::thread::scope(|scope| {
            let pool = &pool;
            let handles: Vec<_> = (0..4usize)
                .map(|t| {
                    scope.spawn(move || {
                        for round in 0..3usize {
                            let out = pool.run(40, move |i| i * 31 + t * 1000 + round);
                            let expected: Vec<usize> =
                                (0..40).map(|i| i * 31 + t * 1000 + round).collect();
                            assert_eq!(out, expected, "thread {t} round {round}");
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("submitter thread panicked");
            }
        });
        // The pool is still healthy afterwards.
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_batches_match_their_serial_results() {
        // Determinism under concurrency: a batch's outcome vector must not depend on
        // what else is in flight on the pool.
        let pool = WorkerPool::new(EngineConfig::with_workers(4));
        let serial: Vec<u64> = (0..100)
            .map(|i| (i as u64).wrapping_mul(0x1234_5677))
            .collect();
        std::thread::scope(|scope| {
            let pool = &pool;
            let serial = &serial;
            for _ in 0..3 {
                scope.spawn(move || {
                    let got = pool.run(100, |i| (i as u64).wrapping_mul(0x1234_5677));
                    assert_eq!(&got, serial);
                });
            }
        });
    }

    #[test]
    fn config_resolves_zero_to_available_cores() {
        assert!(EngineConfig::default().effective_workers() >= 1);
        assert_eq!(EngineConfig::with_workers(3).effective_workers(), 3);
    }

    #[test]
    fn pool_shuts_down_cleanly_on_drop() {
        let pool = WorkerPool::new(EngineConfig::with_workers(2));
        let _ = pool.run(10, |i| i);
        drop(pool); // must not hang or leak threads
    }

    #[test]
    fn pool_metrics_count_jobs_batches_and_timings() {
        let registry = Arc::new(Registry::new());
        let pool = WorkerPool::with_metrics(EngineConfig::with_workers(3), Arc::clone(&registry));
        for _ in 0..4 {
            let _ = pool.run(25, |i| i);
        }
        let _ = pool.run(1, |i| i); // inline path must be counted too
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("engine.jobs"), Some(101));
        assert_eq!(snapshot.counter("engine.batches"), Some(5));
        // Balanced tiny batches may or may not steal, but the counter exists and is
        // bounded by the claims that happened.
        assert!(snapshot.counter("engine.steals").unwrap() <= 100);
        assert_eq!(snapshot.histogram("engine.batch_micros").unwrap().count, 5);
        // 3 queue depths per pooled batch plus 1 for the inline batch.
        let depth = snapshot.histogram("engine.queue_depth").unwrap();
        assert_eq!(depth.count, 13);
        assert_eq!(depth.max, 9); // ceil(25 / 3)
    }

    #[test]
    fn pool_metrics_do_not_change_results() {
        let registry = Arc::new(Registry::new());
        let observed = WorkerPool::with_metrics(EngineConfig::with_workers(4), registry);
        let plain = WorkerPool::new(EngineConfig::with_workers(2));
        let a = observed.run(120, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        let b = plain.run(120, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(a, b);
    }
}
