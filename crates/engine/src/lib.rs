//! # sfo-engine
//!
//! The query-serving engine of the sfoverlay workspace: a sharded CSR topology store
//! plus a batched query scheduler, sitting between the graph substrate (`sfo-graph`) and
//! the consumers that sweep searches over frozen realizations (`sfo-scenario`,
//! `sfo-sim`, the benches).
//!
//! The paper's evaluation — and the workspace's production north star — is thousands of
//! *independent* searches over a frozen topology. The engine turns that shape into
//! infrastructure:
//!
//! * [`ShardedCsr`] ([`sharded`]): a frozen [`CsrGraph`](sfo_graph::CsrGraph)
//!   partitioned into contiguous node-id ranges. Each [`CsrShard`] is `Send + Sync`,
//!   owns shard-local CSR rows, and carries a [`BoundaryTable`] of its cross-shard
//!   edges; the assembly implements [`GraphView`](sfo_graph::GraphView) with the exact
//!   neighbor order of the unsharded snapshot, so every existing algorithm runs on it
//!   unchanged and byte-identically.
//! * [`WorkerPool`] ([`scheduler`]): a persistent worker pool executing batches with
//!   work stealing over contiguous job ranges, plus a scoped [`execute`] for jobs that
//!   borrow local state.
//! * [`QueryBatch`] ([`batch`]): `(source, algorithm, ttl)` jobs executed across the
//!   pool, each on its own RNG stream derived with the workspace's single
//!   [`stream_rng`](sfo_search::experiment::stream_rng) rule — results are independent
//!   of the worker count, of stealing order, and of the shard count.
//! * [`placed`]: the cross-host traversal state machine behind placed execution — a
//!   suspended search ([`PlacedState`]) moves between shard hosts as a visited-bitset
//!   delta plus frontier plus raw RNG state, reproducing the serial oracle byte for
//!   byte on any placement ([`placed_advance`]).
//!
//! # Example
//!
//! ```
//! use sfo_engine::{batched_ttl_sweep, EngineConfig, ShardedCsr, WorkerPool};
//! use sfo_graph::generators::ring_graph;
//! use sfo_search::flooding::Flooding;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), sfo_graph::GraphError> {
//! let graph = Arc::new(ShardedCsr::from_graph(&ring_graph(100, 2)?, 4));
//! let pool = WorkerPool::new(EngineConfig::with_workers(2));
//! let points = batched_ttl_sweep(&pool, &graph, Box::new(Flooding::new()), &[1, 2, 4], 25, 7);
//! assert_eq!(points.len(), 3);
//! assert!(points[2].mean_hits > points[0].mean_hits);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod placed;
pub mod scheduler;
pub mod sharded;

pub use batch::{
    average_per_ttl, batched_rw_normalized_to_nf, batched_rw_normalized_to_nf_range,
    batched_ttl_sweep, batched_ttl_sweep_range, job_rng, run_batch_scoped,
    run_batch_scoped_with_scratch, run_queries, run_queries_offset, run_queries_serial,
    AlgorithmTable, QueryBatch, QueryJob, BATCH_STREAM_LABEL,
};
pub use placed::{
    placed_advance, placed_start, PlacedAlgorithm, PlacedState, PlacedStep, StepStats, NO_NODE,
};
pub use scheduler::{execute, execute_with_scratch, EngineConfig, WorkerPool};
pub use sharded::{BoundaryEdge, BoundaryTable, CsrShard, ShardedCsr};

// Re-exported so scratch-aware consumers that do not depend on `sfo-search` directly
// (notably `sfo-sim`'s snapshot query batches) can name the arena type.
pub use sfo_search::SearchScratch;
