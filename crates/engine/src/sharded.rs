//! The sharded CSR topology store.
//!
//! [`ShardedCsr`] partitions a frozen [`CsrGraph`] into contiguous node-id ranges. The
//! CSR arrays stay flat — neighbor lookup is the same two array reads as on the
//! unsharded snapshot, so the sharded store costs *nothing* on the traversal hot path —
//! and each [`CsrShard`] describes one partition: its node range, the contiguous slice
//! of the `targets` array holding its rows, and a [`BoundaryTable`] listing the directed
//! adjacency entries that leave the shard. Because every shard's rows are one
//! contiguous slice ([`ShardedCsr::shard_targets`]), a shard is exactly the unit a
//! multi-process deployment would mmap or ship to a shard host, and the boundary table
//! is exactly the routing table it would need for cross-shard edges.
//!
//! The assembly implements [`GraphView`] with the frozen neighbor order of the source
//! snapshot, so *any* algorithm generic over `GraphView` — all seven search algorithms,
//! BFS, the metric sweeps — runs on a sharded store unchanged and returns byte-identical
//! results (enforced by `tests/shard_equivalence.rs` at the workspace root). The store
//! is plain owned arrays, hence `Send + Sync`: a query batch fans out over one shared
//! `ShardedCsr` from any number of worker threads.

use serde::{Deserialize, Serialize};
use sfo_graph::{CsrGraph, Graph, GraphView, NodeId};

/// One directed adjacency entry whose endpoints live in different shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryEdge {
    /// The node inside the owning shard.
    pub source: NodeId,
    /// Its neighbor in another shard.
    pub target: NodeId,
    /// The shard that owns `target`.
    pub target_shard: usize,
}

/// The cross-shard edges of one shard, in frozen adjacency order.
///
/// Every undirected cross-shard edge appears in exactly two boundary tables, once per
/// direction, so the table alone tells a shard which remote rows its traversals touch.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BoundaryTable {
    edges: Vec<BoundaryEdge>,
}

impl BoundaryTable {
    /// Returns the outgoing cross-shard entries, in frozen adjacency order.
    pub fn edges(&self) -> &[BoundaryEdge] {
        &self.edges
    }

    /// Returns the number of outgoing cross-shard entries.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the shard has no cross-shard edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns how many of the entries point into `shard`.
    pub fn edges_into(&self, shard: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| e.target_shard == shard)
            .count()
    }
}

/// One contiguous node-id range of a [`ShardedCsr`].
///
/// The shard holds partition metadata — its node range, where its rows live in the
/// store's flat `targets` array, and its boundary table; the rows themselves are served
/// by the parent store ([`ShardedCsr::shard_targets`]) so the traversal hot path stays
/// a flat-array lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrShard {
    /// First global node id of the shard.
    start: usize,
    /// One past the last global node id of the shard.
    end: usize,
    /// Range of the store's `targets` array holding this shard's rows.
    targets_start: usize,
    /// End of the shard's row block in the store's `targets` array.
    targets_end: usize,
    /// The directed adjacency entries leaving this shard.
    boundary: BoundaryTable,
}

impl CsrShard {
    /// Returns the global node-id range `[start, end)` this shard owns.
    pub fn node_range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Returns the number of nodes in the shard.
    pub fn local_count(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if `node` (global id) belongs to this shard.
    pub fn owns(&self, node: NodeId) -> bool {
        self.node_range().contains(&node.index())
    }

    /// Returns the number of directed adjacency entries stored in the shard.
    pub fn entry_count(&self) -> usize {
        self.targets_end - self.targets_start
    }

    /// Returns the shard's cross-shard edge table.
    pub fn boundary(&self) -> &BoundaryTable {
        &self.boundary
    }
}

/// A frozen CSR snapshot partitioned into contiguous node-id ranges.
///
/// Built by [`ShardedCsr::from_csr`] (or [`ShardedCsr::from_graph`]); the shard count is
/// clamped to `[1, node_count]`, and when the count does not divide the node count the
/// first `node_count % shards` shards hold one extra node, so shard sizes differ by at
/// most one. Node ids, neighbor order, and therefore every RNG-consuming traversal are
/// identical to the unsharded [`CsrGraph`].
///
/// # Example
///
/// ```
/// use sfo_engine::ShardedCsr;
/// use sfo_graph::{Graph, GraphView, NodeId};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(5);
/// g.add_edge(NodeId::new(0), NodeId::new(4))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// let sharded = ShardedCsr::from_csr(&g.freeze(), 2);
/// assert_eq!(sharded.shard_count(), 2);
/// assert_eq!(sharded.node_count(), 5);
/// assert_eq!(sharded.neighbors(NodeId::new(0)), g.neighbors(NodeId::new(0)));
/// // 0-4 crosses the shard boundary, 1-2 does not.
/// assert_eq!(sharded.cross_shard_edges(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedCsr {
    /// `offsets[v] .. offsets[v + 1]` indexes the neighbor block of node `v` in
    /// `targets`, exactly as in [`CsrGraph`]; length is `node_count + 1`.
    offsets: Vec<u32>,
    /// All adjacency lists, concatenated in node order. A shard's rows are one
    /// contiguous sub-slice (see [`ShardedCsr::shard_targets`]).
    targets: Vec<NodeId>,
    /// The partition, ordered by node range.
    shards: Vec<CsrShard>,
    edge_count: usize,
    /// Shards `0 .. big_shards` hold `base + 1` nodes; the rest hold `base`.
    base: usize,
    big_shards: usize,
}

impl ShardedCsr {
    /// Partitions a borrowed snapshot into `shards` contiguous node-id ranges.
    ///
    /// `shards` is clamped to `[1, node_count]` (an empty graph yields one empty shard),
    /// so any requested count is safe, including counts that do not divide the node
    /// count. The CSR arrays are block-copied once; use [`ShardedCsr::from_csr_owned`]
    /// to take them over without any copy.
    pub fn from_csr(csr: &CsrGraph, shards: usize) -> Self {
        ShardedCsr::from_csr_owned(csr.clone(), shards)
    }

    /// Partitions an owned snapshot into `shards` contiguous node-id ranges, taking
    /// over its flat arrays without copying them.
    ///
    /// Computing the partition metadata (shard ranges, row blocks, boundary tables) is
    /// one O(V + E) read-only pass over the arrays.
    pub fn from_csr_owned(csr: CsrGraph, shards: usize) -> Self {
        let node_count = csr.node_count();
        let edge_count = csr.edge_count();
        let (offsets, targets) = csr.into_parts();
        let shard_count = shards.clamp(1, node_count.max(1));
        let base = node_count / shard_count;
        let big_shards = node_count % shard_count;

        let mut built = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for s in 0..shard_count {
            let len = base + usize::from(s < big_shards);
            let mut boundary = Vec::new();
            for node in start..start + len {
                let row = &targets[offsets[node] as usize..offsets[node + 1] as usize];
                for &neighbor in row {
                    let target_shard = shard_of(neighbor.index(), base, big_shards);
                    if target_shard != s {
                        boundary.push(BoundaryEdge {
                            source: NodeId::new(node),
                            target: neighbor,
                            target_shard,
                        });
                    }
                }
            }
            built.push(CsrShard {
                start,
                end: start + len,
                targets_start: offsets[start] as usize,
                targets_end: offsets[start + len] as usize,
                boundary: BoundaryTable { edges: boundary },
            });
            start += len;
        }
        debug_assert_eq!(start, node_count);

        ShardedCsr {
            offsets,
            targets,
            shards: built,
            edge_count,
            base,
            big_shards,
        }
    }

    /// Freezes a mutable graph and partitions the snapshot, moving its arrays straight
    /// into the store.
    pub fn from_graph(graph: &Graph, shards: usize) -> Self {
        ShardedCsr::from_csr_owned(graph.freeze(), shards)
    }

    /// Returns the number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Returns the shards, ordered by node range.
    pub fn shards(&self) -> &[CsrShard] {
        &self.shards
    }

    /// Returns the contiguous slice of the `targets` array holding shard `s`'s rows —
    /// the byte range a shard host would own.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a shard index.
    pub fn shard_targets(&self, s: usize) -> &[NodeId] {
        let shard = &self.shards[s];
        &self.targets[shard.targets_start..shard.targets_end]
    }

    /// Returns the shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn shard_of(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.node_count(),
            "node {node} out of bounds for a {}-node sharded snapshot",
            self.node_count()
        );
        shard_of(node.index(), self.base, self.big_shards)
    }

    /// Returns the total number of directed cross-shard entries divided by two — i.e.
    /// the number of undirected edges whose endpoints live in different shards.
    pub fn cross_shard_edges(&self) -> usize {
        self.shards.iter().map(|s| s.boundary.len()).sum::<usize>() / 2
    }

    /// Returns the fraction of undirected edges that cross a shard boundary (0.0 for an
    /// edgeless graph).
    pub fn boundary_fraction(&self) -> f64 {
        if self.edge_count == 0 {
            0.0
        } else {
            self.cross_shard_edges() as f64 / self.edge_count as f64
        }
    }

    /// Reassembles the unsharded snapshot, exactly inverting [`ShardedCsr::from_csr`].
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_neighbor_lists(self.node_count(), |node| {
            self.neighbors(NodeId::new(node)).iter().copied()
        })
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns the number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns the neighbors of `node` in frozen order (same as the source snapshot).
    ///
    /// Two flat-array reads, identical to [`CsrGraph::neighbors`] — sharding does not
    /// tax the traversal hot path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Returns the degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        let i = node.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

/// O(1) shard lookup: the first `big_shards` shards hold `base + 1` nodes, the rest
/// `base`. Only used off the hot path (boundary construction, [`ShardedCsr::shard_of`]).
#[inline]
fn shard_of(index: usize, base: usize, big_shards: usize) -> usize {
    let cut = big_shards * (base + 1);
    if index < cut {
        index / (base + 1)
    } else {
        // Only reachable when base > 0: with base == 0 every node lives in a big shard.
        big_shards + (index - cut) / base
    }
}

impl GraphView for ShardedCsr {
    #[inline]
    fn node_count(&self) -> usize {
        ShardedCsr::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        ShardedCsr::edge_count(self)
    }

    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        ShardedCsr::degree(self, node)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        ShardedCsr::neighbors(self, node)
    }
}

impl From<&CsrGraph> for ShardedCsr {
    /// A single-shard view of the snapshot.
    fn from(csr: &CsrGraph) -> Self {
        ShardedCsr::from_csr(csr, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample(nodes: usize) -> Graph {
        // A ring plus a few chords, so every shard cut produces boundary edges.
        let mut g = Graph::with_nodes(nodes);
        for i in 0..nodes {
            g.add_edge(n(i), n((i + 1) % nodes)).unwrap();
        }
        for i in 0..nodes / 3 {
            let _ = g.add_edge(n(i), n((i + nodes / 2) % nodes));
        }
        g
    }

    #[test]
    fn sharding_preserves_structure_for_all_counts() {
        let g = sample(23);
        let csr = g.freeze();
        for shards in [1usize, 2, 3, 4, 7, 23, 100] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            assert_eq!(sharded.shard_count(), shards.min(23));
            assert_eq!(sharded.node_count(), csr.node_count());
            assert_eq!(sharded.edge_count(), csr.edge_count());
            for node in csr.nodes() {
                assert_eq!(
                    sharded.neighbors(node),
                    csr.neighbors(node),
                    "{shards} shards, {node}"
                );
                assert_eq!(sharded.degree(node), csr.degree(node));
            }
            assert_eq!(sharded.to_csr(), csr, "{shards} shards");
        }
    }

    #[test]
    fn ranges_are_contiguous_and_sizes_differ_by_at_most_one() {
        let g = sample(23);
        let sharded = ShardedCsr::from_graph(&g, 7);
        let mut expected_start = 0;
        let mut sizes = Vec::new();
        for shard in sharded.shards() {
            assert_eq!(shard.node_range().start, expected_start);
            expected_start = shard.node_range().end;
            sizes.push(shard.local_count());
        }
        assert_eq!(expected_start, 23);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        // 23 = 7 * 3 + 2: two shards of 4, five of 3.
        assert_eq!(sizes.iter().filter(|&&s| s == max).count(), 23 % 7);
    }

    #[test]
    fn shard_of_matches_ownership() {
        let g = sample(23);
        let sharded = ShardedCsr::from_graph(&g, 4);
        for node in (0..23).map(n) {
            let s = sharded.shard_of(node);
            assert!(sharded.shards()[s].owns(node), "{node} not in shard {s}");
            for (other, shard) in sharded.shards().iter().enumerate() {
                if other != s {
                    assert!(!shard.owns(node));
                }
            }
        }
    }

    #[test]
    fn shard_rows_are_contiguous_slices_of_the_flat_store() {
        let g = sample(30);
        let sharded = ShardedCsr::from_graph(&g, 4);
        let mut reassembled: Vec<NodeId> = Vec::new();
        for s in 0..sharded.shard_count() {
            let rows = sharded.shard_targets(s);
            assert_eq!(rows.len(), sharded.shards()[s].entry_count());
            // The shard's row block is exactly the concatenation of its nodes' rows.
            let concatenated: Vec<NodeId> = sharded.shards()[s]
                .node_range()
                .flat_map(|v| sharded.neighbors(n(v)).iter().copied())
                .collect();
            assert_eq!(rows, concatenated.as_slice(), "shard {s}");
            reassembled.extend_from_slice(rows);
        }
        // All shard blocks together cover every directed entry exactly once.
        assert_eq!(reassembled.len(), 2 * sharded.edge_count());
    }

    #[test]
    fn boundary_tables_are_symmetric_and_complete() {
        let g = sample(30);
        let csr = g.freeze();
        for shards in [2usize, 4, 7] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            // Internal + cross entries add up to all directed entries.
            let cross: usize = sharded.shards().iter().map(|s| s.boundary().len()).sum();
            let total: usize = sharded.shards().iter().map(CsrShard::entry_count).sum();
            assert_eq!(total, 2 * csr.edge_count());
            assert_eq!(cross % 2, 0, "directed cross entries pair up");
            assert_eq!(sharded.cross_shard_edges(), cross / 2);

            for (s, shard) in sharded.shards().iter().enumerate() {
                for edge in shard.boundary().edges() {
                    assert!(shard.owns(edge.source));
                    assert_eq!(sharded.shard_of(edge.target), edge.target_shard);
                    assert_ne!(edge.target_shard, s);
                    // The mirrored entry sits in the target shard's table.
                    let mirrored = sharded.shards()[edge.target_shard]
                        .boundary()
                        .edges()
                        .iter()
                        .any(|e| e.source == edge.target && e.target == edge.source);
                    assert!(mirrored, "missing mirror of {edge:?}");
                }
            }
            // edges_into is consistent with the mirrored counts.
            for (s, shard) in sharded.shards().iter().enumerate() {
                for (t, other) in sharded.shards().iter().enumerate() {
                    if s != t {
                        assert_eq!(
                            shard.boundary().edges_into(t),
                            other.boundary().edges_into(s)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = sample(20);
        let sharded = ShardedCsr::from_graph(&g, 1);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.cross_shard_edges(), 0);
        assert_eq!(sharded.boundary_fraction(), 0.0);
        assert!(sharded.shards()[0].boundary().is_empty());
    }

    #[test]
    fn boundary_fraction_grows_with_shard_count_on_a_ring() {
        // A pure ring: k shards cut exactly k edges (for 1 < k <= n).
        let mut g = Graph::with_nodes(24);
        for i in 0..24 {
            g.add_edge(n(i), n((i + 1) % 24)).unwrap();
        }
        let csr = g.freeze();
        for shards in [2usize, 3, 4, 6] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            assert_eq!(sharded.cross_shard_edges(), shards, "{shards} shards");
            assert!((sharded.boundary_fraction() - shards as f64 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_tiny_graphs_shard_safely() {
        let empty = ShardedCsr::from_graph(&Graph::new(), 4);
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.boundary_fraction(), 0.0);

        let lone = ShardedCsr::from_graph(&Graph::with_nodes(1), 8);
        assert_eq!(lone.shard_count(), 1);
        assert_eq!(lone.degree(n(0)), 0);

        let pair = ShardedCsr::from_graph(&Graph::with_nodes(2), 8);
        assert_eq!(pair.shard_count(), 2);
    }

    #[test]
    fn graph_view_provided_methods_work() {
        let g = sample(20);
        let sharded = ShardedCsr::from_graph(&g, 3);
        let view: &dyn GraphView = &sharded;
        assert_eq!(view.degrees(), g.degrees());
        assert_eq!(view.min_degree(), g.min_degree());
        assert_eq!(view.max_degree(), g.max_degree());
        assert!(view.contains_edge(n(0), n(1)));
        let edges: Vec<_> = GraphView::edges(&sharded).collect();
        let expected: Vec<_> = g.edges().collect();
        assert_eq!(edges, expected);
    }

    #[test]
    fn conversion_from_csr_reference_is_single_shard() {
        let csr = sample(9).freeze();
        let sharded = ShardedCsr::from(&csr);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.to_csr(), csr);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lookup_panics() {
        let sharded = ShardedCsr::from_graph(&sample(10), 2);
        let _ = sharded.neighbors(n(99));
    }
}
