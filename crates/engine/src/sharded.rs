//! The sharded CSR topology store.
//!
//! [`ShardedCsr`] partitions a frozen [`CsrGraph`] into contiguous node-id ranges. The
//! CSR arrays stay flat — neighbor lookup is the same two array reads as on the
//! unsharded snapshot, so the sharded store costs *nothing* on the traversal hot path —
//! and each [`CsrShard`] describes one partition: its node range, the contiguous slice
//! of the `targets` array holding its rows, and a [`BoundaryTable`] listing the directed
//! adjacency entries that leave the shard. Because every shard's rows are one
//! contiguous slice ([`ShardedCsr::shard_targets`]), a shard is exactly the unit a
//! multi-process deployment would mmap or ship to a shard host, and the boundary table
//! is exactly the routing table it would need for cross-shard edges.
//!
//! The assembly implements [`GraphView`] with the frozen neighbor order of the source
//! snapshot, so *any* algorithm generic over `GraphView` — all seven search algorithms,
//! BFS, the metric sweeps — runs on a sharded store unchanged and returns byte-identical
//! results (enforced by `tests/shard_equivalence.rs` at the workspace root). The store
//! is plain owned arrays, hence `Send + Sync`: a query batch fans out over one shared
//! `ShardedCsr` from any number of worker threads.

use serde::{Deserialize, Serialize};
use sfo_graph::snapshot::{BoundaryRecord, ShardRecord, SnapshotError, SnapshotFile};
use sfo_graph::{CsrGraph, Graph, GraphView, NodeId};
use std::path::Path;

/// One directed adjacency entry whose endpoints live in different shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryEdge {
    /// The node inside the owning shard.
    pub source: NodeId,
    /// Its neighbor in another shard.
    pub target: NodeId,
    /// The shard that owns `target`.
    pub target_shard: usize,
}

/// The cross-shard edges of one shard, in frozen adjacency order.
///
/// Every undirected cross-shard edge appears in exactly two boundary tables, once per
/// direction, so the table alone tells a shard which remote rows its traversals touch.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BoundaryTable {
    edges: Vec<BoundaryEdge>,
}

impl BoundaryTable {
    /// Returns the outgoing cross-shard entries, in frozen adjacency order.
    pub fn edges(&self) -> &[BoundaryEdge] {
        &self.edges
    }

    /// Returns the number of outgoing cross-shard entries.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the shard has no cross-shard edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns how many of the entries point into `shard`.
    pub fn edges_into(&self, shard: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| e.target_shard == shard)
            .count()
    }
}

/// One contiguous node-id range of a [`ShardedCsr`].
///
/// The shard holds partition metadata — its node range, where its rows live in the
/// store's flat `targets` array, and its boundary table; the rows themselves are served
/// by the parent store ([`ShardedCsr::shard_targets`]) so the traversal hot path stays
/// a flat-array lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrShard {
    /// First global node id of the shard.
    start: usize,
    /// One past the last global node id of the shard.
    end: usize,
    /// Range of the store's `targets` array holding this shard's rows.
    targets_start: usize,
    /// End of the shard's row block in the store's `targets` array.
    targets_end: usize,
    /// The directed adjacency entries leaving this shard.
    boundary: BoundaryTable,
}

impl CsrShard {
    /// Returns the global node-id range `[start, end)` this shard owns.
    pub fn node_range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Returns the number of nodes in the shard.
    pub fn local_count(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if `node` (global id) belongs to this shard.
    pub fn owns(&self, node: NodeId) -> bool {
        self.node_range().contains(&node.index())
    }

    /// Returns the number of directed adjacency entries stored in the shard.
    pub fn entry_count(&self) -> usize {
        self.targets_end - self.targets_start
    }

    /// Returns the shard's cross-shard edge table.
    pub fn boundary(&self) -> &BoundaryTable {
        &self.boundary
    }
}

/// A frozen CSR snapshot partitioned into contiguous node-id ranges.
///
/// Built by [`ShardedCsr::from_csr`] (or [`ShardedCsr::from_graph`]); the shard count is
/// clamped to `[1, node_count]`, and when the count does not divide the node count the
/// first `node_count % shards` shards hold one extra node, so shard sizes differ by at
/// most one. Node ids, neighbor order, and therefore every RNG-consuming traversal are
/// identical to the unsharded [`CsrGraph`].
///
/// # Example
///
/// ```
/// use sfo_engine::ShardedCsr;
/// use sfo_graph::{Graph, GraphView, NodeId};
///
/// # fn main() -> Result<(), sfo_graph::GraphError> {
/// let mut g = Graph::with_nodes(5);
/// g.add_edge(NodeId::new(0), NodeId::new(4))?;
/// g.add_edge(NodeId::new(1), NodeId::new(2))?;
/// let sharded = ShardedCsr::from_csr(&g.freeze(), 2);
/// assert_eq!(sharded.shard_count(), 2);
/// assert_eq!(sharded.node_count(), 5);
/// assert_eq!(sharded.neighbors(NodeId::new(0)), g.neighbors(NodeId::new(0)));
/// // 0-4 crosses the shard boundary, 1-2 does not.
/// assert_eq!(sharded.cross_shard_edges(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardedCsr {
    /// The flat snapshot serving every row lookup — a shard's rows are one contiguous
    /// sub-slice of its `targets` array (see [`ShardedCsr::shard_targets`]). Usually
    /// owned; after [`ShardedCsr::load_mmap`] the arrays are borrowed from a read-only
    /// file mapping, with identical values and neighbor order either way.
    csr: CsrGraph,
    /// The partition, ordered by node range.
    shards: Vec<CsrShard>,
    /// Shards `0 .. big_shards` hold `base + 1` nodes; the rest hold `base`.
    base: usize,
    big_shards: usize,
}

impl ShardedCsr {
    /// Partitions a borrowed snapshot into `shards` contiguous node-id ranges.
    ///
    /// `shards` is clamped to `[1, node_count]` (an empty graph yields one empty shard),
    /// so any requested count is safe, including counts that do not divide the node
    /// count. The CSR arrays are block-copied once; use [`ShardedCsr::from_csr_owned`]
    /// to take them over without any copy.
    pub fn from_csr(csr: &CsrGraph, shards: usize) -> Self {
        ShardedCsr::from_csr_owned(csr.clone(), shards)
    }

    /// Partitions an owned snapshot into `shards` contiguous node-id ranges, taking
    /// over its flat arrays without copying them (a memory-mapped snapshot stays
    /// mapped — the partition metadata is computed over the borrowed arrays in place).
    ///
    /// Computing the partition metadata (shard ranges, row blocks, boundary tables) is
    /// one O(V + E) read-only pass over the arrays.
    pub fn from_csr_owned(csr: CsrGraph, shards: usize) -> Self {
        let node_count = csr.node_count();
        let (offsets, targets) = csr.raw_parts();
        let shard_count = shards.clamp(1, node_count.max(1));
        let base = node_count / shard_count;
        let big_shards = node_count % shard_count;

        let mut built = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for s in 0..shard_count {
            let len = base + usize::from(s < big_shards);
            let mut boundary = Vec::new();
            for node in start..start + len {
                let row = &targets[offsets[node] as usize..offsets[node + 1] as usize];
                for &neighbor in row {
                    let target_shard = shard_of(neighbor.index(), base, big_shards);
                    if target_shard != s {
                        boundary.push(BoundaryEdge {
                            source: NodeId::new(node),
                            target: neighbor,
                            target_shard,
                        });
                    }
                }
            }
            built.push(CsrShard {
                start,
                end: start + len,
                targets_start: offsets[start] as usize,
                targets_end: offsets[start + len] as usize,
                boundary: BoundaryTable { edges: boundary },
            });
            start += len;
        }
        debug_assert_eq!(start, node_count);

        ShardedCsr {
            csr,
            shards: built,
            base,
            big_shards,
        }
    }

    /// Freezes a mutable graph and partitions the snapshot, moving its arrays straight
    /// into the store.
    pub fn from_graph(graph: &Graph, shards: usize) -> Self {
        ShardedCsr::from_csr_owned(graph.freeze(), shards)
    }

    /// Returns the number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Returns the shards, ordered by node range.
    pub fn shards(&self) -> &[CsrShard] {
        &self.shards
    }

    /// Returns the contiguous slice of the `targets` array holding shard `s`'s rows —
    /// the byte range a shard host would own.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a shard index.
    pub fn shard_targets(&self, s: usize) -> &[NodeId] {
        let shard = &self.shards[s];
        &self.csr.raw_parts().1[shard.targets_start..shard.targets_end]
    }

    /// Returns the shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn shard_of(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.node_count(),
            "node {node} out of bounds for a {}-node sharded snapshot",
            self.node_count()
        );
        shard_of(node.index(), self.base, self.big_shards)
    }

    /// Returns the total number of directed cross-shard entries divided by two — i.e.
    /// the number of undirected edges whose endpoints live in different shards.
    pub fn cross_shard_edges(&self) -> usize {
        self.shards.iter().map(|s| s.boundary.len()).sum::<usize>() / 2
    }

    /// Returns the fraction of undirected edges that cross a shard boundary (0.0 for an
    /// edgeless graph).
    pub fn boundary_fraction(&self) -> f64 {
        if self.edge_count() == 0 {
            0.0
        } else {
            self.cross_shard_edges() as f64 / self.edge_count() as f64
        }
    }

    /// Reassembles the unsharded snapshot, exactly inverting [`ShardedCsr::from_csr`].
    pub fn to_csr(&self) -> CsrGraph {
        self.csr.clone()
    }

    /// Returns `true` when the store's arrays are borrowed from a file mapping (a
    /// [`ShardedCsr::load_mmap`] store) rather than owned by the heap.
    pub fn is_mapped(&self) -> bool {
        self.csr.is_mapped()
    }

    /// Returns the number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Returns the number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }

    /// Returns the neighbors of `node` in frozen order (same as the source snapshot).
    ///
    /// Two flat-array reads, identical to [`CsrGraph::neighbors`] — sharding does not
    /// tax the traversal hot path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        self.csr.neighbors(node)
    }

    /// Returns the degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.csr.degree(node)
    }

    /// The store's partition as the snapshot codec's manifest records.
    fn manifest_records(&self) -> Vec<ShardRecord> {
        self.shards
            .iter()
            .map(|shard| ShardRecord {
                start: shard.start as u64,
                end: shard.end as u64,
                boundary: shard
                    .boundary
                    .edges()
                    .iter()
                    .map(|edge| BoundaryRecord {
                        source: edge.source.as_u32(),
                        target: edge.target.as_u32(),
                        target_shard: edge.target_shard as u32,
                    })
                    .collect(),
            })
            .collect()
    }

    /// Packs the store into a [`SnapshotFile`]: the flat CSR arrays plus a shard
    /// manifest recording every shard's node range and [`BoundaryTable`], with no
    /// provenance (callers like `sfo snapshot build` attach their own before saving).
    pub fn to_snapshot_file(&self) -> SnapshotFile {
        SnapshotFile {
            csr: self.to_csr(),
            shards: Some(self.manifest_records()),
            provenance: None,
        }
    }

    /// Writes the store to `path` in the binary `SFOS` snapshot format: the flat CSR
    /// arrays plus a shard manifest recording every shard's node range and
    /// [`BoundaryTable`].
    ///
    /// A shard host deployment ships exactly what one manifest record describes — the
    /// shard's contiguous [`ShardedCsr::shard_targets`] rows plus its boundary table as
    /// the cross-shard routing table.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        self.to_snapshot_file().save(path)
    }

    /// Reads a sharded store back from an `SFOS` snapshot file written by
    /// [`ShardedCsr::save`], reconstructing every shard from its contiguous row slice.
    ///
    /// The shards are rebuilt with [`ShardedCsr::from_csr_owned`] over the stored
    /// arrays and then checked against the file's manifest entry by entry, so a loaded
    /// store is *exactly* the saved one — same ranges, same row blocks, same boundary
    /// tables — or a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] when the file cannot be read,
    /// [`SnapshotError::MissingSection`] when it has no shard manifest (a plain
    /// [`CsrGraph::save`] file; load it with [`CsrGraph::load`] and shard it with
    /// [`ShardedCsr::from_csr_owned`] instead), [`SnapshotError::Corrupt`] when the
    /// stored manifest does not describe the stored topology, and every decoding error
    /// of [`SnapshotFile::load`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_file(SnapshotFile::load(path)?)
    }

    /// Like [`ShardedCsr::load`], but through
    /// [`SnapshotFile::load_mmap`]: the store's arrays are borrowed out of a read-only
    /// file mapping (checksum-verified once) instead of copied into the heap, with the
    /// partition metadata rebuilt and checked against the stored manifest exactly as in
    /// the read-based load. On targets without mmap support, or for files whose array
    /// sections the loader cannot borrow, the result is the identical owned store.
    ///
    /// # Errors
    ///
    /// The same errors as [`ShardedCsr::load`].
    pub fn load_mmap(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot_file(SnapshotFile::load_mmap(path)?)
    }

    /// Shared tail of the loaders: require a manifest, rebuild the partition over the
    /// decoded arrays, and accept only if it matches the stored manifest exactly.
    fn from_snapshot_file(file: SnapshotFile) -> Result<Self, SnapshotError> {
        let Some(stored) = file.shards else {
            return Err(SnapshotError::MissingSection {
                section: "shard manifest",
            });
        };
        let rebuilt = ShardedCsr::from_csr_owned(file.csr, stored.len());
        if rebuilt.manifest_records() != stored {
            return Err(SnapshotError::Corrupt {
                reason: "shard manifest does not match the partition of the stored topology"
                    .to_string(),
            });
        }
        Ok(rebuilt)
    }
}

/// O(1) shard lookup: the first `big_shards` shards hold `base + 1` nodes, the rest
/// `base`. Only used off the hot path (boundary construction, [`ShardedCsr::shard_of`]).
#[inline]
fn shard_of(index: usize, base: usize, big_shards: usize) -> usize {
    let cut = big_shards * (base + 1);
    if index < cut {
        index / (base + 1)
    } else {
        // Only reachable when base > 0: with base == 0 every node lives in a big shard.
        big_shards + (index - cut) / base
    }
}

impl GraphView for ShardedCsr {
    #[inline]
    fn node_count(&self) -> usize {
        ShardedCsr::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        ShardedCsr::edge_count(self)
    }

    #[inline]
    fn degree(&self, node: NodeId) -> usize {
        ShardedCsr::degree(self, node)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        ShardedCsr::neighbors(self, node)
    }
}

impl sfo_graph::ShardView for ShardedCsr {
    #[inline]
    fn node_count(&self) -> usize {
        ShardedCsr::node_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        ShardedCsr::edge_count(self)
    }

    /// A whole-snapshot store owns every row, so a placed traversal running against
    /// it never forwards — `placed_advance` completes any frontier in one call.
    #[inline]
    fn owns(&self, index: usize) -> bool {
        index < ShardedCsr::node_count(self)
    }

    #[inline]
    fn neighbors(&self, node: NodeId) -> &[NodeId] {
        ShardedCsr::neighbors(self, node)
    }
}

impl From<&CsrGraph> for ShardedCsr {
    /// A single-shard view of the snapshot.
    fn from(csr: &CsrGraph) -> Self {
        ShardedCsr::from_csr(csr, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample(nodes: usize) -> Graph {
        // A ring plus a few chords, so every shard cut produces boundary edges.
        let mut g = Graph::with_nodes(nodes);
        for i in 0..nodes {
            g.add_edge(n(i), n((i + 1) % nodes)).unwrap();
        }
        for i in 0..nodes / 3 {
            let _ = g.add_edge(n(i), n((i + nodes / 2) % nodes));
        }
        g
    }

    #[test]
    fn sharding_preserves_structure_for_all_counts() {
        let g = sample(23);
        let csr = g.freeze();
        for shards in [1usize, 2, 3, 4, 7, 23, 100] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            assert_eq!(sharded.shard_count(), shards.min(23));
            assert_eq!(sharded.node_count(), csr.node_count());
            assert_eq!(sharded.edge_count(), csr.edge_count());
            for node in csr.nodes() {
                assert_eq!(
                    sharded.neighbors(node),
                    csr.neighbors(node),
                    "{shards} shards, {node}"
                );
                assert_eq!(sharded.degree(node), csr.degree(node));
            }
            assert_eq!(sharded.to_csr(), csr, "{shards} shards");
        }
    }

    #[test]
    fn ranges_are_contiguous_and_sizes_differ_by_at_most_one() {
        let g = sample(23);
        let sharded = ShardedCsr::from_graph(&g, 7);
        let mut expected_start = 0;
        let mut sizes = Vec::new();
        for shard in sharded.shards() {
            assert_eq!(shard.node_range().start, expected_start);
            expected_start = shard.node_range().end;
            sizes.push(shard.local_count());
        }
        assert_eq!(expected_start, 23);
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
        // 23 = 7 * 3 + 2: two shards of 4, five of 3.
        assert_eq!(sizes.iter().filter(|&&s| s == max).count(), 23 % 7);
    }

    #[test]
    fn shard_of_matches_ownership() {
        let g = sample(23);
        let sharded = ShardedCsr::from_graph(&g, 4);
        for node in (0..23).map(n) {
            let s = sharded.shard_of(node);
            assert!(sharded.shards()[s].owns(node), "{node} not in shard {s}");
            for (other, shard) in sharded.shards().iter().enumerate() {
                if other != s {
                    assert!(!shard.owns(node));
                }
            }
        }
    }

    #[test]
    fn shard_rows_are_contiguous_slices_of_the_flat_store() {
        let g = sample(30);
        let sharded = ShardedCsr::from_graph(&g, 4);
        let mut reassembled: Vec<NodeId> = Vec::new();
        for s in 0..sharded.shard_count() {
            let rows = sharded.shard_targets(s);
            assert_eq!(rows.len(), sharded.shards()[s].entry_count());
            // The shard's row block is exactly the concatenation of its nodes' rows.
            let concatenated: Vec<NodeId> = sharded.shards()[s]
                .node_range()
                .flat_map(|v| sharded.neighbors(n(v)).iter().copied())
                .collect();
            assert_eq!(rows, concatenated.as_slice(), "shard {s}");
            reassembled.extend_from_slice(rows);
        }
        // All shard blocks together cover every directed entry exactly once.
        assert_eq!(reassembled.len(), 2 * sharded.edge_count());
    }

    #[test]
    fn boundary_tables_are_symmetric_and_complete() {
        let g = sample(30);
        let csr = g.freeze();
        for shards in [2usize, 4, 7] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            // Internal + cross entries add up to all directed entries.
            let cross: usize = sharded.shards().iter().map(|s| s.boundary().len()).sum();
            let total: usize = sharded.shards().iter().map(CsrShard::entry_count).sum();
            assert_eq!(total, 2 * csr.edge_count());
            assert_eq!(cross % 2, 0, "directed cross entries pair up");
            assert_eq!(sharded.cross_shard_edges(), cross / 2);

            for (s, shard) in sharded.shards().iter().enumerate() {
                for edge in shard.boundary().edges() {
                    assert!(shard.owns(edge.source));
                    assert_eq!(sharded.shard_of(edge.target), edge.target_shard);
                    assert_ne!(edge.target_shard, s);
                    // The mirrored entry sits in the target shard's table.
                    let mirrored = sharded.shards()[edge.target_shard]
                        .boundary()
                        .edges()
                        .iter()
                        .any(|e| e.source == edge.target && e.target == edge.source);
                    assert!(mirrored, "missing mirror of {edge:?}");
                }
            }
            // edges_into is consistent with the mirrored counts.
            for (s, shard) in sharded.shards().iter().enumerate() {
                for (t, other) in sharded.shards().iter().enumerate() {
                    if s != t {
                        assert_eq!(
                            shard.boundary().edges_into(t),
                            other.boundary().edges_into(s)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = sample(20);
        let sharded = ShardedCsr::from_graph(&g, 1);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.cross_shard_edges(), 0);
        assert_eq!(sharded.boundary_fraction(), 0.0);
        assert!(sharded.shards()[0].boundary().is_empty());
    }

    #[test]
    fn boundary_fraction_grows_with_shard_count_on_a_ring() {
        // A pure ring: k shards cut exactly k edges (for 1 < k <= n).
        let mut g = Graph::with_nodes(24);
        for i in 0..24 {
            g.add_edge(n(i), n((i + 1) % 24)).unwrap();
        }
        let csr = g.freeze();
        for shards in [2usize, 3, 4, 6] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            assert_eq!(sharded.cross_shard_edges(), shards, "{shards} shards");
            assert!((sharded.boundary_fraction() - shards as f64 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_tiny_graphs_shard_safely() {
        let empty = ShardedCsr::from_graph(&Graph::new(), 4);
        assert_eq!(empty.shard_count(), 1);
        assert_eq!(empty.node_count(), 0);
        assert_eq!(empty.boundary_fraction(), 0.0);

        let lone = ShardedCsr::from_graph(&Graph::with_nodes(1), 8);
        assert_eq!(lone.shard_count(), 1);
        assert_eq!(lone.degree(n(0)), 0);

        let pair = ShardedCsr::from_graph(&Graph::with_nodes(2), 8);
        assert_eq!(pair.shard_count(), 2);
    }

    #[test]
    fn graph_view_provided_methods_work() {
        let g = sample(20);
        let sharded = ShardedCsr::from_graph(&g, 3);
        let view: &dyn GraphView = &sharded;
        assert_eq!(view.degrees(), g.degrees());
        assert_eq!(view.min_degree(), g.min_degree());
        assert_eq!(view.max_degree(), g.max_degree());
        assert!(view.contains_edge(n(0), n(1)));
        let edges: Vec<_> = GraphView::edges(&sharded).collect();
        let expected: Vec<_> = g.edges().collect();
        assert_eq!(edges, expected);
    }

    #[test]
    fn conversion_from_csr_reference_is_single_shard() {
        let csr = sample(9).freeze();
        let sharded = ShardedCsr::from(&csr);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.to_csr(), csr);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_lookup_panics() {
        let sharded = ShardedCsr::from_graph(&sample(10), 2);
        let _ = sharded.neighbors(n(99));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sfo-engine-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn save_load_round_trips_exactly_including_boundary_tables() {
        let g = sample(23);
        for shards in [1usize, 2, 7] {
            let store = ShardedCsr::from_graph(&g, shards);
            let path = temp_path(&format!("roundtrip-{shards}.sfos"));
            store.save(&path).unwrap();
            let back = ShardedCsr::load(&path).unwrap();
            assert_eq!(back, store, "{shards} shards");
            for (a, b) in back.shards().iter().zip(store.shards()) {
                assert_eq!(a.boundary(), b.boundary());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn mmap_load_matches_the_read_load_exactly() {
        let g = sample(23);
        for shards in [1usize, 2, 7] {
            let store = ShardedCsr::from_graph(&g, shards);
            let path = temp_path(&format!("mmap-roundtrip-{shards}.sfos"));
            store.save(&path).unwrap();
            let read = ShardedCsr::load(&path).unwrap();
            let mapped = ShardedCsr::load_mmap(&path).unwrap();
            // Semantic equality across storages, plus the full per-shard surface.
            assert_eq!(mapped, read, "{shards} shards");
            assert_eq!(mapped, store, "{shards} shards");
            for s in 0..read.shard_count() {
                assert_eq!(mapped.shard_targets(s), read.shard_targets(s));
            }
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            assert!(mapped.is_mapped());
            assert!(!read.is_mapped());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn plain_snapshots_are_rejected_with_a_missing_section_error() {
        let path = temp_path("plain.sfos");
        sample(12).freeze().save(&path).unwrap();
        assert_eq!(
            ShardedCsr::load(&path),
            Err(SnapshotError::MissingSection {
                section: "shard manifest"
            })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sharded_files_load_as_plain_topologies_too() {
        // The arrays in a sharded file are the full topology; CsrGraph::load serves a
        // consumer that does not care about the partition.
        let g = sample(16);
        let store = ShardedCsr::from_graph(&g, 4);
        let path = temp_path("as-plain.sfos");
        store.save(&path).unwrap();
        assert_eq!(CsrGraph::load(&path).unwrap(), g.freeze());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn manifests_that_disagree_with_the_topology_are_rejected() {
        // Write a file whose manifest passes the codec's structural checks but lies
        // about the partition: empty boundary tables on a topology with cross-shard
        // edges. The load-time comparison against the recomputed partition catches it.
        let g = sample(20);
        let store = ShardedCsr::from_graph(&g, 4);
        let mut records = store.manifest_records();
        for record in &mut records {
            record.boundary.clear();
        }
        let file = SnapshotFile {
            csr: store.to_csr(),
            shards: Some(records),
            provenance: None,
        };
        let path = temp_path("bad-manifest.sfos");
        file.save(&path).unwrap();
        assert!(matches!(
            ShardedCsr::load(&path),
            Err(SnapshotError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
