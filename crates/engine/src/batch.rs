//! Typed query batches over a shared topology snapshot.
//!
//! A [`QueryBatch`] is a list of `(source, algorithm, ttl)` jobs to execute against one
//! frozen snapshot — the paper's evaluation unit (thousands of independent searches over
//! a fixed realization) as a first-class value. [`run_queries`] fans a batch across a
//! [`WorkerPool`]; every job derives its RNG with the workspace's single
//! [`stream_rng`] rule from `(seed, BATCH_STREAM_LABEL, job index)`, so the outcome
//! vector is byte-identical no matter how many workers run it, which worker stole what,
//! or how many shards the snapshot is split into. In particular the batched path over a
//! [`ShardedCsr`](crate::ShardedCsr) equals a serial loop over the unsharded
//! [`CsrGraph`](sfo_graph::CsrGraph) job for job (enforced by
//! `tests/shard_equivalence.rs`).
//!
//! [`batched_ttl_sweep`] and [`batched_rw_normalized_to_nf`] are the sweep-shaped
//! frontends the scenario runner uses: one job per `(ttl, search)` cell, averaged into
//! the same [`AveragedOutcome`] points as the serial harness in
//! [`sfo_search::experiment`].

use crate::scheduler::{execute_with_scratch, WorkerPool};
use serde::{Deserialize, Serialize};
use sfo_graph::{GraphView, NodeId};
use sfo_search::experiment::{label_salt, stream_rng, AveragedOutcome};
use sfo_search::normalized::NormalizedFlooding;
use sfo_search::random_walk::RandomWalk;
use sfo_search::{SearchAlgorithm, SearchOutcome, SearchScratch};
use std::sync::Arc;

/// The stream-family label of batched query jobs; its [`label_salt`] is the salt of
/// every job RNG, making batch streams a family of the workspace's single derivation
/// rule rather than an ad-hoc scheme.
pub const BATCH_STREAM_LABEL: &str = "sfo-engine/query-batch";

/// Derives the RNG of job `index` in a batch seeded with `seed`.
///
/// This is the engine's whole determinism story: `stream_rng(seed,
/// label_salt(BATCH_STREAM_LABEL), index)`, a pure function of the job index — never of
/// the worker that ran it.
pub fn job_rng(seed: u64, index: usize) -> rand::rngs::StdRng {
    stream_rng(seed, label_salt(BATCH_STREAM_LABEL), index)
}

/// One search job of a batch: a source, an algorithm (by index into the batch's
/// algorithm table), and a TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryJob {
    /// Source node of the search.
    pub source: NodeId,
    /// Index into the algorithm table passed alongside the batch.
    pub algorithm: usize,
    /// Time-to-live (interpretation is algorithm-specific, as in
    /// [`SearchAlgorithm::search`]).
    pub ttl: u32,
}

/// A batch of independent `(source, algorithm, ttl)` search jobs.
///
/// The batch itself is plain data (it serializes, and is the natural wire unit for
/// shipping work to a remote engine); the algorithms it refers to travel separately as
/// an algorithm table, resolved by index.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryBatch {
    jobs: Vec<QueryJob>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// A batch over the given jobs.
    pub fn from_jobs(jobs: Vec<QueryJob>) -> Self {
        QueryBatch { jobs }
    }

    /// Appends one job.
    pub fn push(&mut self, source: NodeId, algorithm: usize, ttl: u32) {
        self.jobs.push(QueryJob {
            source,
            algorithm,
            ttl,
        });
    }

    /// Returns the jobs in submission order.
    pub fn jobs(&self) -> &[QueryJob] {
        &self.jobs
    }

    /// Returns the number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if the batch holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// A shareable table of search algorithms a batch's jobs index into.
pub type AlgorithmTable<G> = Vec<Box<dyn SearchAlgorithm<G> + Send + Sync>>;

/// Executes a batch across the pool and returns one outcome per job, in job order.
///
/// Job `i` runs `algorithms[jobs[i].algorithm]` from `jobs[i].source` with its own RNG
/// ([`job_rng`]`(seed, i)`), so the result vector is independent of the worker count and
/// byte-identical to a serial loop over the same jobs on any [`GraphView`] backend that
/// reports the same neighbor order (in particular, sharded versus unsharded snapshots).
///
/// # Panics
///
/// Panics on the calling thread, before any job runs, if a job's algorithm index is out
/// of range for the table or a job's source is not a node of the graph.
pub fn run_queries<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    algorithms: &Arc<AlgorithmTable<G>>,
    batch: &QueryBatch,
    seed: u64,
) -> Vec<SearchOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    run_queries_offset(pool, graph, algorithms, batch, seed, 0)
}

/// [`run_queries`] for a batch slice that starts at global job index `index_offset`.
///
/// Job `i` of `batch` runs on the stream of global index `index_offset + i` —
/// [`job_rng`]`(seed, index_offset + i)` — so a batch split into contiguous slices and
/// executed piecewise (on one pool or on several remote workers) concatenates to exactly
/// the outcome vector of the unsplit batch. This is the primitive `sfo-net` workers
/// execute: the dispatcher ships each worker a slice plus its offset, and the merged
/// results are byte-identical to a local run by construction.
///
/// # Panics
///
/// Panics on the calling thread, before any job runs, if a job's algorithm index is out
/// of range for the table or a job's source is not a node of the graph.
pub fn run_queries_offset<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    algorithms: &Arc<AlgorithmTable<G>>,
    batch: &QueryBatch,
    seed: u64,
    index_offset: usize,
) -> Vec<SearchOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    for (i, job) in batch.jobs.iter().enumerate() {
        assert!(
            job.algorithm < algorithms.len(),
            "job {i}: algorithm index {} out of range for a table of {}",
            job.algorithm,
            algorithms.len()
        );
        assert!(
            graph.contains_node(job.source),
            "job {i}: source {} out of bounds for a {}-node graph",
            job.source,
            graph.node_count()
        );
    }
    let graph = Arc::clone(graph);
    let algorithms = Arc::clone(algorithms);
    let jobs: Arc<[QueryJob]> = Arc::from(batch.jobs.as_slice());
    pool.run_with_scratch(jobs.len(), move |i, scratch| {
        let job = jobs[i];
        let mut rng = job_rng(seed, index_offset + i);
        algorithms[job.algorithm].search_with_scratch(
            graph.as_ref(),
            job.source,
            job.ttl,
            &mut rng,
            scratch,
        )
    })
}

/// Serial reference implementation of [`run_queries`]: the same jobs, the same per-job
/// streams, executed one after another on the calling thread.
///
/// This is the oracle the shard-equivalence tests compare the pooled path against; it is
/// also the fastest path for tiny batches.
pub fn run_queries_serial<G>(
    graph: &G,
    algorithms: &AlgorithmTable<G>,
    batch: &QueryBatch,
    seed: u64,
) -> Vec<SearchOutcome>
where
    G: GraphView + ?Sized,
{
    batch
        .jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            let mut rng = job_rng(seed, i);
            algorithms[job.algorithm].search(graph, job.source, job.ttl, &mut rng)
        })
        .collect()
}

/// A TTL sweep executed as one batch: for every TTL in `ttls`, `searches` jobs whose
/// sources are drawn per job from the job's own stream (job `t * searches + s` covers
/// search `s` of `ttls[t]`).
///
/// Returns one [`AveragedOutcome`] per TTL, exactly the point shape of the serial
/// [`ttl_sweep`](sfo_search::experiment::ttl_sweep) — but with per-job streams, so the
/// points are independent of the pool's worker count and of the snapshot's shard count.
///
/// # Panics
///
/// Panics if `graph` has no nodes.
pub fn batched_ttl_sweep<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    algorithm: Box<dyn SearchAlgorithm<G> + Send + Sync>,
    ttls: &[u32],
    searches: usize,
    seed: u64,
) -> Vec<AveragedOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    let total = ttls.len() * searches;
    let outcomes = batched_ttl_sweep_range(pool, graph, algorithm, ttls, searches, seed, 0, total);
    average_per_ttl(ttls, searches, &outcomes)
}

/// The raw per-job outcomes of the global job range `start..end` of a batched TTL sweep.
///
/// The full sweep is a grid of `ttls.len() * searches` jobs (job `t * searches + s` is
/// search `s` of `ttls[t]`); this function executes only the contiguous slice
/// `start..end` of that grid, with every job on the stream of its *global* index. Any
/// partition of `0..total` into ranges — across calls, pools, or remote workers —
/// therefore concatenates to the identical outcome vector, which is the invariant the
/// `sfo-net` dispatcher relies on when it splits a sweep across worker processes.
///
/// # Panics
///
/// Panics if `graph` has no nodes or the range is out of bounds for the grid.
#[allow(clippy::too_many_arguments)]
pub fn batched_ttl_sweep_range<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    algorithm: Box<dyn SearchAlgorithm<G> + Send + Sync>,
    ttls: &[u32],
    searches: usize,
    seed: u64,
    start: usize,
    end: usize,
) -> Vec<SearchOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    assert!(graph.node_count() > 0, "cannot search an empty graph");
    assert!(
        start <= end && end <= ttls.len() * searches,
        "job range {start}..{end} out of bounds for a grid of {} jobs",
        ttls.len() * searches
    );
    let node_count = graph.node_count();
    let graph = Arc::clone(graph);
    let algorithm: Arc<dyn SearchAlgorithm<G> + Send + Sync> = Arc::from(algorithm);
    let ttls_owned: Arc<[u32]> = Arc::from(ttls);
    pool.run_with_scratch(end - start, move |i, scratch| {
        let global = start + i;
        let ttl = ttls_owned[global / searches];
        let mut rng = job_rng(seed, global);
        let source = NodeId::new(rand::Rng::gen_range(&mut rng, 0..node_count));
        algorithm.search_with_scratch(graph.as_ref(), source, ttl, &mut rng, scratch)
    })
}

/// The batched counterpart of
/// [`rw_normalized_to_nf`](sfo_search::experiment::rw_normalized_to_nf): each job runs
/// one NF search with fan-out `k_min`, then an RW search from the same source whose hop
/// budget is the NF message count — both on the job's own stream, in the same draw order
/// as the serial harness.
///
/// # Panics
///
/// Panics if `graph` has no nodes.
pub fn batched_rw_normalized_to_nf<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    k_min: usize,
    ttls: &[u32],
    searches: usize,
    seed: u64,
) -> Vec<AveragedOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    let total = ttls.len() * searches;
    let outcomes =
        batched_rw_normalized_to_nf_range(pool, graph, k_min, ttls, searches, seed, 0, total);
    average_per_ttl(ttls, searches, &outcomes)
}

/// The raw per-job outcomes of the global job range `start..end` of a batched
/// NF-normalized random-walk sweep — the [`batched_ttl_sweep_range`] counterpart of
/// [`batched_rw_normalized_to_nf`], with the same split-anywhere concatenation
/// invariant.
///
/// # Panics
///
/// Panics if `graph` has no nodes or the range is out of bounds for the grid.
#[allow(clippy::too_many_arguments)]
pub fn batched_rw_normalized_to_nf_range<G>(
    pool: &WorkerPool,
    graph: &Arc<G>,
    k_min: usize,
    ttls: &[u32],
    searches: usize,
    seed: u64,
    start: usize,
    end: usize,
) -> Vec<SearchOutcome>
where
    G: GraphView + Send + Sync + 'static,
{
    assert!(graph.node_count() > 0, "cannot search an empty graph");
    assert!(
        start <= end && end <= ttls.len() * searches,
        "job range {start}..{end} out of bounds for a grid of {} jobs",
        ttls.len() * searches
    );
    let node_count = graph.node_count();
    let graph = Arc::clone(graph);
    let ttls_owned: Arc<[u32]> = Arc::from(ttls);
    pool.run_with_scratch(end - start, move |i, scratch| {
        let global = start + i;
        let ttl = ttls_owned[global / searches];
        let mut rng = job_rng(seed, global);
        let source = NodeId::new(rand::Rng::gen_range(&mut rng, 0..node_count));
        let nf = NormalizedFlooding::new(k_min);
        let nf_outcome = nf.search_with_scratch(graph.as_ref(), source, ttl, &mut rng, scratch);
        let budget = u32::try_from(nf_outcome.messages).unwrap_or(u32::MAX);
        RandomWalk::new().search_with_scratch(graph.as_ref(), source, budget, &mut rng, scratch)
    })
}

/// Folds per-job outcomes (grouped as `searches` consecutive jobs per TTL) into one
/// averaged point per TTL, through the workspace's single averaging rule.
///
/// Public because it is the one folding every sweep frontend — local, snapshot-backed,
/// or remote-dispatched — must share for their points to be byte-comparable.
///
/// # Panics
///
/// Panics if `outcomes` is not exactly `ttls.len() * searches` entries.
pub fn average_per_ttl(
    ttls: &[u32],
    searches: usize,
    outcomes: &[SearchOutcome],
) -> Vec<AveragedOutcome> {
    assert_eq!(outcomes.len(), ttls.len() * searches);
    ttls.iter()
        .enumerate()
        .map(|(t, &ttl)| {
            AveragedOutcome::from_outcomes(ttl, &outcomes[t * searches..(t + 1) * searches])
        })
        .collect()
}

/// Scoped, borrow-friendly batch execution: runs `jobs` closures with per-job streams on
/// `workers` scoped threads (0 = all cores) and returns the results in job order.
///
/// This is the frontend for callers whose job state cannot be `'static` — the churn
/// simulator's query batches borrow the live overlay. The closure receives
/// `(job index, job rng)` and the same determinism contract applies: results depend only
/// on the job index, never on the worker count.
pub fn run_batch_scoped<T, F>(workers: usize, jobs: usize, seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut rand::rngs::StdRng) -> T + Sync,
{
    run_batch_scoped_with_scratch(workers, jobs, seed, |i, rng, _| job(i, rng))
}

/// [`run_batch_scoped`] with a per-worker [`SearchScratch`] arena.
///
/// The closure receives `(job index, job rng, worker scratch)`; each scoped worker owns
/// one arena reused across all jobs it claims. The arena must stay invisible to the RNG
/// draws, so results are still a pure function of the job index.
pub fn run_batch_scoped_with_scratch<T, F>(workers: usize, jobs: usize, seed: u64, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut rand::rngs::StdRng, &mut SearchScratch) -> T + Sync,
{
    execute_with_scratch(workers, jobs, |i, scratch| {
        let mut rng = job_rng(seed, i);
        job(i, &mut rng, scratch)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::EngineConfig;
    use crate::ShardedCsr;
    use sfo_graph::generators::ring_graph;
    use sfo_search::flooding::Flooding;

    fn pool(workers: usize) -> WorkerPool {
        WorkerPool::new(EngineConfig::with_workers(workers))
    }

    fn table() -> AlgorithmTable<ShardedCsr> {
        vec![Box::new(Flooding::new()), Box::new(RandomWalk::new())]
    }

    fn sharded(shards: usize) -> Arc<ShardedCsr> {
        let g = ring_graph(60, 2).unwrap();
        Arc::new(ShardedCsr::from_graph(&g, shards))
    }

    fn mixed_batch(n: usize) -> QueryBatch {
        let mut batch = QueryBatch::new();
        for i in 0..n {
            batch.push(NodeId::new((i * 7) % 60), i % 2, 2 + (i % 3) as u32);
        }
        batch
    }

    #[test]
    fn batch_builder_round_trips_jobs() {
        let batch = mixed_batch(5);
        assert_eq!(batch.len(), 5);
        assert!(!batch.is_empty());
        assert_eq!(batch.jobs()[0].source, NodeId::new(0));
        assert_eq!(QueryBatch::from_jobs(batch.jobs().to_vec()), batch);
        assert!(QueryBatch::new().is_empty());
    }

    #[test]
    fn pooled_results_match_the_serial_reference() {
        let graph = sharded(4);
        let algorithms = Arc::new(table());
        let batch = mixed_batch(40);
        let serial = run_queries_serial(graph.as_ref(), &algorithms, &batch, 9);
        for workers in [1usize, 2, 5] {
            let pooled = run_queries(&pool(workers), &graph, &algorithms, &batch, 9);
            assert_eq!(pooled, serial, "{workers} workers");
        }
    }

    #[test]
    fn results_are_shard_count_independent() {
        let algorithms = Arc::new(table());
        let batch = mixed_batch(30);
        let reference = run_queries(&pool(2), &sharded(1), &algorithms, &batch, 4);
        for shards in [2usize, 4, 7] {
            let got = run_queries(&pool(3), &sharded(shards), &algorithms, &batch, 4);
            assert_eq!(got, reference, "{shards} shards");
        }
    }

    #[test]
    fn batched_sweep_matches_across_worker_counts() {
        let graph = sharded(3);
        let reference = batched_ttl_sweep(
            &pool(1),
            &graph,
            Box::new(Flooding::new()),
            &[1, 2, 4],
            11,
            7,
        );
        assert_eq!(reference.len(), 3);
        assert_eq!(reference[0].searches, 11);
        for workers in [2usize, 4] {
            let got = batched_ttl_sweep(
                &pool(workers),
                &graph,
                Box::new(Flooding::new()),
                &[1, 2, 4],
                11,
                7,
            );
            assert_eq!(got, reference, "{workers} workers");
        }
        // Flooding hits grow with TTL on a ring.
        assert!(reference[2].mean_hits > reference[0].mean_hits);
    }

    #[test]
    fn batched_rw_normalization_respects_the_nf_budget() {
        let graph = sharded(2);
        let points = batched_rw_normalized_to_nf(&pool(2), &graph, 2, &[2, 4], 15, 3);
        assert_eq!(points.len(), 2);
        for (point, ttl) in points.iter().zip([2u32, 4]) {
            assert_eq!(point.ttl, ttl);
            assert_eq!(point.searches, 15);
            // NF with fan-out 2 sends at most 2 + 4 + ... messages; the walk spends at
            // most that budget.
            let budget_upper: f64 = (1..=ttl).map(|t| 2f64.powi(t as i32)).sum();
            assert!(point.mean_messages <= budget_upper + 1e-9);
            assert!(point.mean_hits > 0.0);
        }
        let again = batched_rw_normalized_to_nf(&pool(4), &graph, 2, &[2, 4], 15, 3);
        assert_eq!(again, points);
    }

    #[test]
    fn sweep_ranges_concatenate_to_the_full_sweep() {
        // The distributed-execution invariant: any contiguous partition of the job grid
        // concatenates to the unsplit outcome vector, byte for byte.
        let graph = sharded(3);
        let ttls = [1u32, 2, 4];
        let (searches, seed) = (10usize, 21u64);
        let total = ttls.len() * searches;
        let full = batched_ttl_sweep_range(
            &pool(2),
            &graph,
            Box::new(Flooding::new()),
            &ttls,
            searches,
            seed,
            0,
            total,
        );
        assert_eq!(full.len(), total);
        for cuts in [vec![0, total], vec![0, 7, total], vec![0, 1, 13, 29, total]] {
            let mut merged = Vec::new();
            for pair in cuts.windows(2) {
                merged.extend(batched_ttl_sweep_range(
                    &pool(3),
                    &graph,
                    Box::new(Flooding::new()),
                    &ttls,
                    searches,
                    seed,
                    pair[0],
                    pair[1],
                ));
            }
            assert_eq!(merged, full, "split at {cuts:?}");
        }
        // The averaged frontend is exactly the folded range run.
        let averaged = batched_ttl_sweep(
            &pool(2),
            &graph,
            Box::new(Flooding::new()),
            &ttls,
            searches,
            seed,
        );
        assert_eq!(averaged, average_per_ttl(&ttls, searches, &full));
    }

    #[test]
    fn rw_normalized_ranges_concatenate_to_the_full_sweep() {
        let graph = sharded(2);
        let ttls = [2u32, 3];
        let total = ttls.len() * 8;
        let full = batched_rw_normalized_to_nf_range(&pool(2), &graph, 2, &ttls, 8, 9, 0, total);
        let mut merged = Vec::new();
        for pair in [(0usize, 5usize), (5, 11), (11, total)] {
            merged.extend(batched_rw_normalized_to_nf_range(
                &pool(4),
                &graph,
                2,
                &ttls,
                8,
                9,
                pair.0,
                pair.1,
            ));
        }
        assert_eq!(merged, full);
    }

    #[test]
    fn offset_queries_concatenate_to_the_unsplit_batch() {
        let graph = sharded(2);
        let algorithms = Arc::new(table());
        let batch = mixed_batch(24);
        let serial = run_queries_serial(graph.as_ref(), &algorithms, &batch, 13);
        let split = 10usize;
        let head = QueryBatch::from_jobs(batch.jobs()[..split].to_vec());
        let tail = QueryBatch::from_jobs(batch.jobs()[split..].to_vec());
        let mut merged = run_queries_offset(&pool(2), &graph, &algorithms, &head, 13, 0);
        merged.extend(run_queries_offset(
            &pool(3),
            &graph,
            &algorithms,
            &tail,
            13,
            split,
        ));
        assert_eq!(merged, serial);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sweep_ranges_reject_out_of_bounds_ends() {
        let graph = sharded(1);
        let _ = batched_ttl_sweep_range(
            &pool(1),
            &graph,
            Box::new(Flooding::new()),
            &[1],
            2,
            1,
            0,
            3,
        );
    }

    #[test]
    fn scoped_batches_share_the_stream_rule() {
        let outs = run_batch_scoped(3, 20, 5, |i, rng| {
            (i, rand::Rng::gen_range(rng, 0..1000u32))
        });
        for (i, (index, value)) in outs.iter().enumerate() {
            assert_eq!(*index, i);
            let mut rng = job_rng(5, i);
            assert_eq!(*value, rand::Rng::gen_range(&mut rng, 0..1000u32));
        }
    }

    #[test]
    fn job_streams_are_decorrelated() {
        use rand::RngCore;
        let a = job_rng(1, 0).next_u64();
        let b = job_rng(1, 1).next_u64();
        let c = job_rng(2, 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, job_rng(1, 0).next_u64());
        // The salt really is the workspace derivation of the documented label.
        let mut direct = stream_rng(1, label_salt(BATCH_STREAM_LABEL), 0);
        assert_eq!(a, direct.next_u64());
    }

    #[test]
    #[should_panic(expected = "algorithm index")]
    fn out_of_range_algorithm_indices_are_rejected() {
        let graph = sharded(2);
        let algorithms: Arc<AlgorithmTable<ShardedCsr>> = Arc::new(vec![Box::new(Flooding::new())]);
        let batch = QueryBatch::from_jobs(vec![QueryJob {
            source: NodeId::new(0),
            algorithm: 3,
            ttl: 1,
        }]);
        let _ = run_queries(&pool(2), &graph, &algorithms, &batch, 1);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn batched_sweep_rejects_empty_graphs() {
        let empty = Arc::new(ShardedCsr::from_graph(&sfo_graph::Graph::new(), 2));
        let _ = batched_ttl_sweep(&pool(2), &empty, Box::new(Flooding::new()), &[1], 1, 1);
    }
}
