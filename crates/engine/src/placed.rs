//! Placed (cross-host) traversal execution.
//!
//! Under placed execution every host owns one contiguous shard slice of the snapshot
//! (a [`CsrSlice`](sfo_graph::CsrSlice)) and a traversal *moves to its data*: a job
//! starts on the host owning its source node and, whenever the next node to expand
//! lives elsewhere, the whole suspended search — visited-bitset delta, frontier queue,
//! walker position, and raw RNG state — is exported as a [`PlacedState`] and resumed
//! on the owner. Exactly one host works on a job at any moment, so the placed run is
//! a pure partition of the serial oracle's work: the same expansions in the same
//! order consuming the same RNG stream, and therefore a byte-identical
//! [`SearchOutcome`].
//!
//! The state machine here is transport-agnostic; `sfo-net` wraps [`PlacedState`] in
//! `ForwardFrontier`/`FrontierResult` frames and routes by [`PlacedState::cursor`].
//!
//! Two invariants the implementation leans on:
//!
//! * A frontier entry whose TTL is spent is popped *without* reading its neighbor
//!   row, so expired entries never force a hop — only a genuine expansion does.
//! * Walk algorithms draw from the RNG only inside `next_hop`, and flood algorithms
//!   only at fan-out selection, mirroring `sfo-search` line for line; the RNG state
//!   words travel with the frontier, so a hop is invisible to the stream.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use sfo_graph::{NodeId, ShardView};
use sfo_search::{SearchOutcome, SearchScratch};

/// Sentinel for "no node" in the wire-width node fields of [`PlacedState`]
/// (`previous`, and the `from` column of queue entries).
pub const NO_NODE: u32 = u32::MAX;

/// The search algorithms placed execution supports: every shape whose per-step data
/// need is one neighbor row. Expanding-ring restarts whole floods (its rings would
/// re-hop the entire prefix) and the degree-biased walk reads *neighbor degrees*
/// (rows a shard host does not own), so both stay single-host and are refused by the
/// placed dispatcher with a typed error.
///
/// `k_min`/`walkers` are already resolved (no `None` = "match m" here); the
/// dispatcher resolves them from the spec before any frame is cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacedAlgorithm {
    /// Flooding (FL).
    Flooding,
    /// Normalized flooding (NF) with resolved fan-out `k_min`.
    NormalizedFlooding {
        /// Fan-out bound, at least 1.
        k_min: usize,
    },
    /// Gossip-style probabilistic flooding with forwarding probability `p`.
    ProbabilisticFlooding {
        /// Per-neighbor forwarding probability.
        p: f64,
    },
    /// A single random walk (RW).
    RandomWalk,
    /// `walkers` sequential walks sharing one TTL budget and one visited set.
    MultipleRandomWalk {
        /// Number of walkers, at least 1.
        walkers: usize,
    },
    /// NF to completion, then an RW whose hop budget is the NF message count (the
    /// paper's Figs. 11-12 methodology). The outcome is the walk's alone.
    RwNormalizedToNf {
        /// NF fan-out whose message count sets the walk budget.
        k_min: usize,
    },
}

impl PlacedAlgorithm {
    /// Whether the algorithm starts in the walk phase (no frontier queue at all).
    fn starts_walking(self) -> bool {
        matches!(
            self,
            PlacedAlgorithm::RandomWalk | PlacedAlgorithm::MultipleRandomWalk { .. }
        )
    }
}

/// A suspended placed search: everything needed to resume it bit-exactly on another
/// host. All fields are wire-width; `sfo-net` serializes this struct verbatim.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedState {
    /// The algorithm being executed.
    pub algorithm: PlacedAlgorithm,
    /// `false`: draining the frontier queue (flood family). `true`: stepping a walk
    /// (RW/MRW from the start; RW/NF after its flood phase completes).
    pub walk_phase: bool,
    /// The job's source node.
    pub source: u32,
    /// Flood TTL, or the remaining-walk *budget* in the walk phase.
    pub ttl: u32,
    /// Hits accumulated so far.
    pub hits: u64,
    /// Messages accumulated so far.
    pub messages: u64,
    /// Walk phase: the walker's position.
    pub current: u32,
    /// Walk phase: the previous hop ([`NO_NODE`] = none yet).
    pub previous: u32,
    /// Walk phase: index of the walker being stepped (always 0 for RW).
    pub walker: u32,
    /// Walk phase: steps the current walker has taken.
    pub steps_done: u32,
    /// Raw xoshiro256++ state of the job's RNG stream.
    pub rng: [u64; 4],
    /// Sparse visited-bitset delta: ascending `(word index, word)` pairs.
    pub visited: Vec<(u32, u64)>,
    /// Frontier queue, front first: `(node, from, depth)` with [`NO_NODE`] for a
    /// missing `from`.
    pub queue: Vec<(u32, u32, u32)>,
}

impl PlacedState {
    /// The node whose neighbor row the search needs next — the routing key: the
    /// dispatcher sends the frontier to the shard owning this node. `None` only for
    /// a flood whose queue is empty (a state [`placed_advance`] would immediately
    /// finish on any host).
    pub fn cursor(&self) -> Option<u32> {
        if self.walk_phase {
            Some(self.current)
        } else {
            self.queue.first().map(|&(node, _, _)| node)
        }
    }
}

/// Result of advancing a placed search on one host.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacedStep {
    /// The search completed here; this is the job's final outcome.
    Done(SearchOutcome),
    /// The next expansion needs a row this host does not own; resume the state on
    /// the shard owning [`PlacedState::cursor`].
    Forward(PlacedState),
}

/// Row-scan tallies of one [`placed_advance`] call, powering the
/// forwarded-frontier telemetry: on a full flood the cross/scanned ratio equals the
/// store's `boundary_fraction()` exactly (every owned row is scanned once, and each
/// cross entry is one end of a cross-shard edge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Adjacency entries read from owned rows.
    pub entries_scanned: u64,
    /// Of those, entries pointing at nodes this view does not own.
    pub entries_cross: u64,
}

impl StepStats {
    /// Tallies one owned row: its full length, and how many of its entries leave
    /// the view.
    fn scan<V: ShardView + ?Sized>(&mut self, view: &V, row: &[NodeId]) {
        self.entries_scanned += row.len() as u64;
        self.entries_cross += row.iter().filter(|next| !view.owns(next.index())).count() as u64;
    }
}

/// Builds the initial [`PlacedState`] of one job, mirroring the serial preludes of
/// `sfo-search`: the source is marked visited (never counted as a hit), floods seed
/// their queue with `(source, none, 0)`, walks stand at the source. `rng` is the
/// job's stream *after* the source draw ([`crate::job_rng`] plus one `gen_range`).
pub fn placed_start(
    algorithm: PlacedAlgorithm,
    source: NodeId,
    ttl: u32,
    rng: [u64; 4],
) -> PlacedState {
    let source = source.as_u32();
    let walk_phase = algorithm.starts_walking();
    PlacedState {
        algorithm,
        walk_phase,
        source,
        ttl,
        hits: 0,
        messages: 0,
        current: source,
        previous: NO_NODE,
        walker: 0,
        steps_done: 0,
        rng,
        visited: vec![(source / 64, 1u64 << (source % 64))],
        queue: if walk_phase {
            Vec::new()
        } else {
            vec![(source, NO_NODE, 0)]
        },
    }
}

/// Advances a placed search as far as this host's rows allow.
///
/// Runs the exact expansion loop of the serial algorithm over `view`, pausing the
/// moment it needs a row the view does not own. Returns [`PlacedStep::Done`] with
/// the final outcome, or [`PlacedStep::Forward`] with the suspended state to resume
/// on the owner of its [`PlacedState::cursor`]. `stats` accumulates row-scan
/// tallies across calls.
///
/// # Panics
///
/// Panics if the state references nodes or visited words outside `view`'s global id
/// space, or if its phase contradicts its algorithm — callers resuming *decoded*
/// states must validate them first (`sfo-net` does, frame-side).
pub fn placed_advance<V: ShardView + ?Sized>(
    view: &V,
    mut state: PlacedState,
    scratch: &mut SearchScratch,
    stats: &mut StepStats,
) -> PlacedStep {
    let node_count = view.node_count();
    scratch.visited.import_sparse(node_count, &state.visited);
    let mut rng = StdRng::from_state_words(state.rng);
    let mut hits = state.hits;
    let mut messages = state.messages;

    if !state.walk_phase {
        scratch.queue.clear();
        scratch.queue.extend(
            state
                .queue
                .iter()
                .map(|&(node, from, depth)| (NodeId::new(node as usize), decode_from(from), depth)),
        );
        let ttl = state.ttl;
        while let Some((node, from, depth)) = scratch.queue.pop_front() {
            if depth >= ttl {
                // Spent entries pop anywhere: no row read, no RNG, no hop.
                continue;
            }
            if !view.owns(node.index()) {
                scratch.queue.push_front((node, from, depth));
                state.hits = hits;
                state.messages = messages;
                state.rng = rng.state_words();
                state.visited = scratch.visited.export_sparse();
                state.queue = scratch
                    .queue
                    .iter()
                    .map(|&(n, f, d)| (n.as_u32(), encode_from(f), d))
                    .collect();
                return PlacedStep::Forward(state);
            }
            let row = view.neighbors(node);
            stats.scan(view, row);
            match state.algorithm {
                PlacedAlgorithm::Flooding => {
                    for &next in row {
                        if Some(next) == from {
                            continue;
                        }
                        messages += 1;
                        if scratch.visited.insert(next.index()) {
                            hits += 1;
                            scratch.queue.push_back((next, Some(node), depth + 1));
                        }
                    }
                }
                PlacedAlgorithm::NormalizedFlooding { k_min }
                | PlacedAlgorithm::RwNormalizedToNf { k_min } => {
                    scratch.candidates.clear();
                    scratch
                        .candidates
                        .extend(row.iter().copied().filter(|&n| Some(n) != from));
                    let targets: &[NodeId] = if scratch.candidates.len() > k_min {
                        scratch.candidates.partial_shuffle(&mut rng, k_min).0
                    } else {
                        &scratch.candidates
                    };
                    for &next in targets {
                        messages += 1;
                        if scratch.visited.insert(next.index()) {
                            hits += 1;
                            scratch.queue.push_back((next, Some(node), depth + 1));
                        }
                    }
                }
                PlacedAlgorithm::ProbabilisticFlooding { p } => {
                    for &next in row {
                        if Some(next) == from {
                            continue;
                        }
                        if depth > 0 && rng.gen::<f64>() >= p {
                            continue;
                        }
                        messages += 1;
                        if scratch.visited.insert(next.index()) {
                            hits += 1;
                            scratch.queue.push_back((next, Some(node), depth + 1));
                        }
                    }
                }
                PlacedAlgorithm::RandomWalk | PlacedAlgorithm::MultipleRandomWalk { .. } => {
                    panic!("walk algorithms never enter the flood phase")
                }
            }
        }
        // The flood drained. For RW/NF its message count becomes the walk budget and
        // the walk restarts from the source with a fresh visited set (the outcome is
        // the walk's alone), exactly as the serial two-phase job does.
        if let PlacedAlgorithm::RwNormalizedToNf { .. } = state.algorithm {
            state.ttl = u32::try_from(messages).unwrap_or(u32::MAX);
            hits = 0;
            messages = 0;
            scratch.visited.reset(node_count);
            scratch.visited.insert(state.source as usize);
            state.walk_phase = true;
            state.current = state.source;
            state.previous = NO_NODE;
            state.walker = 0;
            state.steps_done = 0;
        } else {
            return PlacedStep::Done(SearchOutcome::new(hits as usize, messages as usize));
        }
    }

    // Walk phase. The budget is split across walkers exactly as MultipleRandomWalk
    // splits it (RW and the RW/NF walk are the one-walker case).
    let walkers = match state.algorithm {
        PlacedAlgorithm::MultipleRandomWalk { walkers } => walkers as u64,
        _ => 1,
    };
    let budget = u64::from(state.ttl);
    let base = budget / walkers;
    let remainder = budget % walkers;
    loop {
        if u64::from(state.walker) >= walkers {
            return PlacedStep::Done(SearchOutcome::new(hits as usize, messages as usize));
        }
        let steps = base + u64::from(u64::from(state.walker) < remainder);
        if u64::from(state.steps_done) >= steps {
            state.walker += 1;
            state.current = state.source;
            state.previous = NO_NODE;
            state.steps_done = 0;
            continue;
        }
        if !view.owns(state.current as usize) {
            state.hits = hits;
            state.messages = messages;
            state.rng = rng.state_words();
            state.visited = scratch.visited.export_sparse();
            state.queue = Vec::new();
            return PlacedStep::Forward(state);
        }
        let row = view.neighbors(NodeId::new(state.current as usize));
        stats.scan(view, row);
        let previous = decode_from(state.previous);
        // next_hop, line for line: degree 0 ends the walker, degree 1 bounces back
        // RNG-free, otherwise rejection-sample a neighbor that is not the previous
        // hop.
        let next = match row.len() {
            0 => None,
            1 => Some(row[0]),
            _ => loop {
                let candidate = row[rng.gen_range(0..row.len())];
                if Some(candidate) != previous {
                    break Some(candidate);
                }
            },
        };
        let Some(next) = next else {
            state.walker += 1;
            state.current = state.source;
            state.previous = NO_NODE;
            state.steps_done = 0;
            continue;
        };
        messages += 1;
        if scratch.visited.insert(next.index()) {
            hits += 1;
        }
        state.previous = state.current;
        state.current = next.as_u32();
        state.steps_done += 1;
    }
}

#[inline]
fn decode_from(from: u32) -> Option<NodeId> {
    (from != NO_NODE).then(|| NodeId::new(from as usize))
}

#[inline]
fn encode_from(from: Option<NodeId>) -> u32 {
    from.map_or(NO_NODE, |n| n.as_u32())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedCsr;
    use rand::SeedableRng;
    use sfo_graph::generators::ring_graph;
    use sfo_graph::{CsrGraph, CsrSlice, Graph};
    use sfo_search::flooding::Flooding;
    use sfo_search::normalized::NormalizedFlooding;
    use sfo_search::probabilistic::ProbabilisticFlooding;
    use sfo_search::random_walk::{MultipleRandomWalk, RandomWalk};
    use sfo_search::SearchAlgorithm;

    /// A small irregular graph: a ring with chords, so degrees differ.
    fn fixture() -> CsrGraph {
        let mut g = ring_graph(60, 2).unwrap();
        for i in 0..12 {
            let a = NodeId::new(i * 5);
            let b = NodeId::new((i * 7 + 13) % 60);
            if a != b {
                let _ = g.add_edge(a, b);
            }
        }
        g.freeze()
    }

    /// The serial oracle for `algorithm` from `source` at `ttl`, on a seeded stream.
    fn oracle(
        csr: &CsrGraph,
        algorithm: PlacedAlgorithm,
        source: NodeId,
        ttl: u32,
        seed: u64,
    ) -> SearchOutcome {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match algorithm {
            PlacedAlgorithm::Flooding => Flooding::new().search(csr, source, ttl, &mut rng),
            PlacedAlgorithm::NormalizedFlooding { k_min } => {
                NormalizedFlooding::new(k_min).search(csr, source, ttl, &mut rng)
            }
            PlacedAlgorithm::ProbabilisticFlooding { p } => {
                ProbabilisticFlooding::new(p).search(csr, source, ttl, &mut rng)
            }
            PlacedAlgorithm::RandomWalk => RandomWalk::new().search(csr, source, ttl, &mut rng),
            PlacedAlgorithm::MultipleRandomWalk { walkers } => {
                MultipleRandomWalk::new(walkers).search(csr, source, ttl, &mut rng)
            }
            PlacedAlgorithm::RwNormalizedToNf { k_min } => {
                let nf = NormalizedFlooding::new(k_min).search(csr, source, ttl, &mut rng);
                let budget = u32::try_from(nf.messages).unwrap_or(u32::MAX);
                RandomWalk::new().search(csr, source, budget, &mut rng)
            }
        }
    }

    /// Runs the state machine over shard slices, routing by cursor like the real
    /// dispatcher; returns the outcome and the number of hops.
    fn run_over_slices(
        csr: &CsrGraph,
        shards: usize,
        algorithm: PlacedAlgorithm,
        source: NodeId,
        ttl: u32,
        seed: u64,
    ) -> (SearchOutcome, usize, StepStats) {
        let sharded = ShardedCsr::from_csr(csr, shards);
        let slices: Vec<CsrSlice> = sharded
            .shards()
            .iter()
            .map(|s| csr.extract_slice(s.node_range()))
            .collect();
        let rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = placed_start(algorithm, source, ttl, rng.state_words());
        let mut scratch = SearchScratch::new();
        let mut stats = StepStats::default();
        let mut hops = 0usize;
        loop {
            let cursor = state.cursor().expect("live state has a cursor");
            let owner = sharded.shard_of(NodeId::new(cursor as usize));
            match placed_advance(&slices[owner], state, &mut scratch, &mut stats) {
                PlacedStep::Done(outcome) => return (outcome, hops, stats),
                PlacedStep::Forward(next) => {
                    hops += 1;
                    assert!(
                        !slices[owner].owns(next.cursor().unwrap() as usize),
                        "forwarded a frontier the host could have served"
                    );
                    state = next;
                }
            }
        }
    }

    fn all_algorithms() -> Vec<PlacedAlgorithm> {
        vec![
            PlacedAlgorithm::Flooding,
            PlacedAlgorithm::NormalizedFlooding { k_min: 2 },
            PlacedAlgorithm::ProbabilisticFlooding { p: 0.6 },
            PlacedAlgorithm::RandomWalk,
            PlacedAlgorithm::MultipleRandomWalk { walkers: 3 },
            PlacedAlgorithm::RwNormalizedToNf { k_min: 2 },
        ]
    }

    #[test]
    fn whole_graph_advance_equals_the_serial_algorithms() {
        let csr = fixture();
        for algorithm in all_algorithms() {
            for (seed, source, ttl) in [(1u64, 0usize, 3u32), (2, 17, 5), (3, 59, 0), (4, 30, 2)] {
                let serial = oracle(&csr, algorithm, NodeId::new(source), ttl, seed);
                let rng = rand::rngs::StdRng::seed_from_u64(seed);
                let state = placed_start(algorithm, NodeId::new(source), ttl, rng.state_words());
                let mut scratch = SearchScratch::new();
                let mut stats = StepStats::default();
                let step = placed_advance(&csr, state, &mut scratch, &mut stats);
                assert_eq!(
                    step,
                    PlacedStep::Done(serial),
                    "{algorithm:?} seed {seed} source {source} ttl {ttl}"
                );
                assert_eq!(stats.entries_cross, 0, "a whole graph owns every row");
            }
        }
    }

    #[test]
    fn sliced_execution_is_byte_identical_for_every_shard_count() {
        let csr = fixture();
        for algorithm in all_algorithms() {
            for shards in [1usize, 2, 3, 5, 7] {
                for (seed, source, ttl) in [(11u64, 3usize, 4u32), (12, 42, 6), (13, 58, 1)] {
                    let serial = oracle(&csr, algorithm, NodeId::new(source), ttl, seed);
                    let (placed, hops, _) =
                        run_over_slices(&csr, shards, algorithm, NodeId::new(source), ttl, seed);
                    assert_eq!(
                        placed, serial,
                        "{algorithm:?} diverged at {shards} shards (seed {seed})"
                    );
                    if shards == 1 {
                        assert_eq!(hops, 0, "a single shard never hops");
                    }
                }
            }
        }
    }

    #[test]
    fn full_flood_scan_stats_reproduce_the_boundary_fraction() {
        let csr = fixture();
        for shards in [2usize, 3, 4] {
            let sharded = ShardedCsr::from_csr(&csr, shards);
            let (_, _, stats) = run_over_slices(
                &csr,
                shards,
                PlacedAlgorithm::Flooding,
                NodeId::new(0),
                csr.node_count() as u32,
                99,
            );
            // A full flood on a connected graph expands every node exactly once, so
            // scanned == 2E and cross == 2 * cross_shard_edges: the observed traffic
            // fraction IS boundary_fraction(), as an exact integer identity.
            assert_eq!(stats.entries_scanned, 2 * csr.edge_count() as u64);
            assert_eq!(
                stats.entries_cross,
                2 * sharded.cross_shard_edges() as u64,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn spent_frontier_entries_never_force_a_hop() {
        // ttl 0: the only queue entry pops as spent; any host finishes it, even one
        // owning nothing near the source.
        let csr = fixture();
        let slice = csr.extract_slice(30..40);
        let rng = rand::rngs::StdRng::seed_from_u64(7);
        let state = placed_start(
            PlacedAlgorithm::Flooding,
            NodeId::new(0),
            0,
            rng.state_words(),
        );
        let mut scratch = SearchScratch::new();
        let mut stats = StepStats::default();
        assert_eq!(
            placed_advance(&slice, state, &mut scratch, &mut stats),
            PlacedStep::Done(SearchOutcome::new(0, 0))
        );
    }

    #[test]
    fn walks_on_a_degree_zero_source_finish_empty() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        let csr = g.freeze();
        for algorithm in [
            PlacedAlgorithm::RandomWalk,
            PlacedAlgorithm::MultipleRandomWalk { walkers: 4 },
        ] {
            let rng = rand::rngs::StdRng::seed_from_u64(5);
            let state = placed_start(algorithm, NodeId::new(0), 9, rng.state_words());
            let mut scratch = SearchScratch::new();
            let step = placed_advance(&csr, state, &mut scratch, &mut StepStats::default());
            assert_eq!(step, PlacedStep::Done(SearchOutcome::new(0, 0)));
        }
    }

    #[test]
    fn forwarded_states_carry_a_cursor_their_sender_does_not_own() {
        let csr = fixture();
        let slice = csr.extract_slice(0..30);
        let rng = rand::rngs::StdRng::seed_from_u64(21);
        let state = placed_start(
            PlacedAlgorithm::Flooding,
            NodeId::new(0),
            csr.node_count() as u32,
            rng.state_words(),
        );
        let mut scratch = SearchScratch::new();
        match placed_advance(&slice, state, &mut scratch, &mut StepStats::default()) {
            PlacedStep::Forward(next) => {
                let cursor = next.cursor().unwrap() as usize;
                assert!(!slice.owns(cursor));
                assert!(cursor < csr.node_count());
                assert!(!next.visited.is_empty());
            }
            PlacedStep::Done(_) => panic!("a 30-node slice cannot finish a full flood"),
        }
    }
}
