//! # sfoverlay
//!
//! Umbrella crate for the reproduction of *"Scale-Free Overlay Topologies with Hard Cutoffs
//! for Unstructured Peer-to-Peer Networks"* (Guclu & Yuksel, ICDCS 2007).
//!
//! It re-exports the workspace crates under stable module names so applications can depend
//! on a single crate:
//!
//! * [`graph`] — graph substrate and substrate-network generators ([`sfo_graph`]),
//!   including the binary `SFOS` snapshot codec ([`sfo_graph::snapshot`]) behind
//!   `CsrGraph::save`/`load`, `ShardedCsr::save`/`load`, and the `sfo snapshot`
//!   subcommands (byte layout documented in `docs/FORMATS.md`).
//! * [`topology`] — PA, CM, HAPA, and DAPA overlay generators with hard cutoffs, plus the
//!   modified preferential-attachment family (nonlinear PA, fitness, local events, initial
//!   attractiveness, uncorrelated CM) ([`sfo_core`]).
//! * [`search`] — flooding, normalized flooding, and random-walk search ([`sfo_search`]).
//! * [`engine`] — the sharded CSR topology store and batched query scheduler
//!   ([`sfo_engine`]): [`ShardedCsr`](sfo_engine::ShardedCsr) partitions a frozen
//!   snapshot into `Send + Sync` node-range shards with cross-shard boundary tables,
//!   and [`WorkerPool`](sfo_engine::WorkerPool) fans
//!   [`QueryBatch`](sfo_engine::QueryBatch)es across a persistent work-stealing pool
//!   with per-job RNG streams (results independent of worker and shard counts).
//! * [`analysis`] — histograms, power-law fits, and result series ([`sfo_analysis`]).
//! * [`sim`] — the live-overlay churn simulator ([`sfo_sim`]).
//! * [`overlay`] — the live membership protocol ([`sfo_overlay`]): a HyParView-style
//!   peer state machine whose capped attachment walks grow the paper's scale-free
//!   topologies *by protocol execution*, over a deterministic simulated transport
//!   ([`sfo_overlay::sim::grow`]) or real sockets (`sfo overlay`, via [`sfo_net`]).
//! * [`scenario`] — the declarative scenario layer ([`sfo_scenario`]): serializable
//!   [`ScenarioSpec`](sfo_scenario::ScenarioSpec)s covering topologies × searches ×
//!   dynamics × sweeps, executed by one
//!   [`ScenarioRunner`](sfo_scenario::ScenarioRunner) into reports that embed their
//!   spec. The `sfo` binary (`sfo scenario run <file.json>`) runs spec files directly;
//!   examples ship under `examples/*.json`.
//! * [`net`] — the distributed execution layer ([`sfo_net`]): a framed wire protocol
//!   over TCP or Unix sockets, the [`WorkerServer`](sfo_net::WorkerServer) daemon
//!   behind `sfo serve` (a loaded `.sfos` snapshot served to many clients through one
//!   engine pool, with a bounded per-connection queue that sheds overload as typed
//!   frames), the [`RemoteDispatcher`](sfo_net::RemoteDispatcher) that splits a
//!   spec's job grid across workers with byte-identical results, and the open-loop
//!   load driver behind `sfo loadtest` ([`sfo_net::loadtest`]).
//! * [`obs`] — the workspace telemetry layer ([`sfo_obs`]): lock-free counters,
//!   log-bucketed latency histograms, phase timers, and the named-metric
//!   [`Registry`](sfo_obs::Registry) instrumenting the engine, the wire protocol, the
//!   overlay, and the scenario runner — surfaced by `sfo stats <addr>` and
//!   `--metrics-out`, and never allowed to perturb a result byte (see
//!   `docs/ARCHITECTURE.md`).
//! * [`experiments`] — reproductions of every figure and table of the paper
//!   ([`sfo_experiments`]), built on the scenario layer.
//!
//! The [`prelude`] collects the types needed for the common "generate a topology, run a
//! search on it" workflow, plus the scenario and churn-simulation entry points.
//!
//! # Example
//!
//! ```
//! use sfoverlay::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let overlay = PreferentialAttachment::new(2_000, 2)?
//!     .with_cutoff(DegreeCutoff::hard(20))
//!     .generate(&mut rng)?;
//! let outcome = NormalizedFlooding::new(2).search(&overlay, NodeId::new(0), 5, &mut rng);
//! assert!(outcome.hits > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sfo_analysis as analysis;
pub use sfo_core as topology;
pub use sfo_engine as engine;
pub use sfo_experiments as experiments;
pub use sfo_graph as graph;
pub use sfo_net as net;
pub use sfo_obs as obs;
pub use sfo_overlay as overlay;
pub use sfo_scenario as scenario;
pub use sfo_search as search;
pub use sfo_sim as sim;

/// The most commonly used types, re-exported for convenient glob imports.
pub mod prelude {
    pub use sfo_analysis::{DataPoint, DataSeries, FigureData, Summary};
    pub use sfo_core::attractiveness::InitialAttractiveness;
    pub use sfo_core::cm::ConfigurationModel;
    pub use sfo_core::dapa::{DapaOverGrn, DiscoverAndAttempt};
    pub use sfo_core::fitness::{FitnessDistribution, FitnessModel};
    pub use sfo_core::hapa::HopAndAttempt;
    pub use sfo_core::local_events::LocalEventsModel;
    pub use sfo_core::nonlinear::NonlinearPreferentialAttachment;
    pub use sfo_core::pa::PreferentialAttachment;
    pub use sfo_core::ucm::UncorrelatedConfigurationModel;
    pub use sfo_core::{
        DegreeCutoff, DynTopologyGenerator, Locality, StubCount, TopologyError, TopologyGenerator,
    };
    pub use sfo_engine::{
        batched_rw_normalized_to_nf, batched_ttl_sweep, placed_advance, placed_start,
        BoundaryTable, CsrShard, EngineConfig, PlacedAlgorithm, PlacedState, PlacedStep,
        QueryBatch, QueryJob, ShardedCsr, StepStats, WorkerPool,
    };
    pub use sfo_graph::snapshot::{
        section_layout, Provenance, SectionLayout, SnapshotError, SnapshotFile, SnapshotHeader,
        SnapshotOrigin, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
    };
    pub use sfo_graph::{
        CsrGraph, CsrSlice, Graph, GraphError, GraphView, MultiGraph, NodeId, ShardView,
    };
    pub use sfo_net::placed::{shard_of, shard_range};
    pub use sfo_net::{
        remote_runner, remote_runner_with_metrics, run_loadtest, LoadtestConfig, LoadtestReport,
        NetError, OverlayNode, OverlayNodeConfig, OverlayNodeHandle, RemoteDispatcher, ServeConfig,
        WorkerClient, WorkerServer, DEFAULT_QUEUE_BOUND,
    };
    pub use sfo_obs::{
        Counter, Histogram, HistogramSnapshot, MetricsSnapshot, PhaseTimer, Registry,
    };
    pub use sfo_overlay::protocol::{
        OverlayMessage, OverlayMetrics, Peer, PeerRef, ProtocolConfig,
    };
    pub use sfo_overlay::sim::{grow, grow_metered, LiveConfig, LiveOutcome, LiveStats};
    pub use sfo_scenario::{
        build_snapshot, ArrivalSpec, DegreeCurve, DynamicsSpec, LiveRealization, MeasureSpec,
        RemoteSweepExecutor, RemoteSweepRequest, ScenarioError, ScenarioReport, ScenarioRunner,
        ScenarioSpec, SearchSpec, SweepMetric, SweepSpec, TopologySpec, WorkloadSpec,
    };
    pub use sfo_search::biased_walk::DegreeBiasedWalk;
    pub use sfo_search::expanding_ring::ExpandingRing;
    pub use sfo_search::flooding::Flooding;
    pub use sfo_search::normalized::NormalizedFlooding;
    pub use sfo_search::probabilistic::ProbabilisticFlooding;
    pub use sfo_search::random_walk::{MultipleRandomWalk, RandomWalk};
    pub use sfo_search::{SearchAlgorithm, SearchOutcome, SearchScratch, VisitedSet};
    pub use sfo_sim::churn::{generate_trace, ChurnTrace, ChurnTraceConfig, SessionModel};
    pub use sfo_sim::overlay::{JoinStrategy, OverlayConfig, OverlayNetwork};
    pub use sfo_sim::query::QueryMethod;
    pub use sfo_sim::replication::ReplicationStrategy;
    pub use sfo_sim::simulation::{Simulation, SimulationConfig};
    pub use sfo_sim::trace_runner::{run_trace, TraceRunConfig};
    pub use sfo_sim::workload::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        // Type-level smoke test: constructing configurations must work through the prelude.
        let _ = PreferentialAttachment::new(10, 1).unwrap();
        let _ = ConfigurationModel::new(10, 2.5, 1).unwrap();
        let _ = HopAndAttempt::new(10, 1).unwrap();
        let _ = DapaOverGrn::new(10, 1, 2).unwrap();
        let _ = Flooding::new();
        let _ = NormalizedFlooding::new(2);
        let _ = RandomWalk::new();
        let _ = DegreeCutoff::hard(5);
        // The simulation and scenario layers are reachable without naming internal crates.
        let _ = Workload::Stationary;
        let _ = QueryMethod::NormalizedFlooding { k_min: 3 };
        let _ = ChurnTraceConfig {
            duration: 10,
            arrival_rate: 0.5,
            sessions: SessionModel::Fixed { length: 5.0 },
            crash_fraction: 0.0,
        };
        let _ = TraceRunConfig::small();
        let _ = ScenarioRunner::new();
        // The live membership protocol is reachable through the prelude.
        let live = LiveConfig::small();
        assert!(live.validate().is_ok());
        assert!(ProtocolConfig::small().validate().is_ok());
        let _ = PeerRef::new(0, "127.0.0.1:9200");
        // The engine layer is reachable through the prelude too.
        let sharded = ShardedCsr::from_graph(&Graph::with_nodes(4), 2);
        assert_eq!(sharded.shard_count(), 2);
        let _ = QueryBatch::new();
        let _ = EngineConfig::with_workers(2);
        // The telemetry layer is reachable through the prelude.
        let registry = Registry::new();
        registry.counter("prelude.smoke").inc();
        assert_eq!(registry.snapshot().counter("prelude.smoke"), Some(1));
        let _ = MeasureSpec::DegreeDistribution { bins_per_decade: 8 };
        // The load-testing layer is reachable through the prelude: workload specs,
        // the open-loop driver's config, and the server's default queue bound.
        let default_bound = DEFAULT_QUEUE_BOUND;
        assert!(default_bound > 0);
        let workload = WorkloadSpec {
            name: "prelude".to_string(),
            arrivals: ArrivalSpec::Poisson { rate_hz: 10.0 },
            duration_secs: 1.0,
            connections: 1,
            jobs_per_request: 1,
            search: SearchSpec::Flooding,
            ttl: 2,
            seed: 1,
        };
        assert!(workload.validate().is_ok());
        let _ = LoadtestConfig {
            spec: workload,
            workers: vec![],
            record_outcomes: false,
        };
        let spec = ScenarioSpec::sweep(
            "prelude",
            TopologySpec::Pa {
                nodes: 50,
                m: 1,
                cutoff: Some(5),
            },
            SearchSpec::Flooding,
            SweepSpec::single(vec![1], 1),
            1,
            1,
        );
        assert!(spec.validate().is_ok());
    }
}
